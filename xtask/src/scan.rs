//! Source loading and lexical masking for the analyze passes.
//!
//! The passes are textual, not syntactic (the build environment is offline,
//! so a real parser like `syn` is not available). To keep textual scanning
//! honest, every file is paired with a **masked** twin: the same bytes with
//! the contents of comments, string literals, and char literals replaced by
//! spaces. Newlines and byte offsets are preserved, so positions computed
//! on the masked text map 1:1 onto the original. A pass that searches the
//! masked text can never be fooled by `"std::sync"` inside a string or a
//! `// .lock().unwrap()` in a comment; a pass that needs literal contents
//! (the docs-sync catalogue labels) reads the raw text at offsets it
//! located via the mask.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// One loaded Rust source file.
#[derive(Debug, Clone)]
pub(crate) struct SourceFile {
    /// Repo-relative path with `/` separators (stable across platforms).
    pub(crate) rel: String,
    /// The file's bytes as read.
    pub(crate) raw: String,
    /// The raw text with comment/string/char contents blanked to spaces.
    pub(crate) masked: String,
}

impl SourceFile {
    /// Builds a file from in-memory text (used by fixtures and self-test).
    pub(crate) fn from_text(rel: &str, raw: &str) -> Self {
        Self {
            rel: rel.to_owned(),
            raw: raw.to_owned(),
            masked: mask(raw),
        }
    }

    /// 1-based line number of a byte offset into this file.
    pub(crate) fn line_of(&self, offset: usize) -> usize {
        line_of(&self.raw, offset)
    }
}

/// 1-based line number of `offset` in `text`.
pub(crate) fn line_of(text: &str, offset: usize) -> usize {
    text.as_bytes()[..offset.min(text.len())]
        .iter()
        .filter(|&&b| b == b'\n')
        .count()
        + 1
}

/// Everything the passes look at, loaded once.
#[derive(Debug)]
pub(crate) struct Workspace {
    /// All first-party `.rs` files (vendored stand-ins excluded — they
    /// mirror external crates' APIs, not this project's discipline).
    pub(crate) files: Vec<SourceFile>,
    /// `docs/observability.md`, if present: `(rel, contents)`.
    pub(crate) observability_doc: Option<(String, String)>,
    /// `docs/kernels.md`, if present: `(rel, contents)`. The docs-sync
    /// pass additionally requires every `intersect.*` catalogue label to
    /// appear here — the kernel-dispatch counters are the document's
    /// subject matter.
    pub(crate) kernels_doc: Option<(String, String)>,
    /// Allowlist entries: `(pass, path-substring)` pairs a finding may
    /// match to be suppressed.
    pub(crate) allowlist: Vec<(String, String)>,
}

impl Workspace {
    /// Loads the workspace rooted at `root`.
    pub(crate) fn load(root: &Path) -> io::Result<Self> {
        let mut rs_paths = Vec::new();
        collect_rs(root, root, &mut rs_paths)?;
        rs_paths.sort();
        let mut files = Vec::with_capacity(rs_paths.len());
        for path in rs_paths {
            let raw = fs::read_to_string(root.join(&path))?;
            files.push(SourceFile {
                masked: mask(&raw),
                rel: path,
                raw,
            });
        }
        let load_doc = |rel: &str| {
            fs::read_to_string(root.join(rel))
                .ok()
                .map(|text| (rel.to_owned(), text))
        };
        let observability_doc = load_doc("docs/observability.md");
        let kernels_doc = load_doc("docs/kernels.md");
        let allowlist = fs::read_to_string(root.join("xtask/analyze_allow.txt"))
            .map(|text| parse_allowlist(&text))
            .unwrap_or_default();
        Ok(Self {
            files,
            observability_doc,
            kernels_doc,
            allowlist,
        })
    }

    /// The file with exactly this repo-relative path, if loaded.
    pub(crate) fn file(&self, rel: &str) -> Option<&SourceFile> {
        self.files.iter().find(|f| f.rel == rel)
    }

    /// Whether a `(pass, file)` finding is suppressed by the allowlist.
    pub(crate) fn allowed(&self, pass: &str, file: &str) -> bool {
        self.allowlist
            .iter()
            .any(|(p, substr)| p == pass && file.contains(substr.as_str()))
    }
}

/// Parses `analyze_allow.txt`: one `pass path-substring` pair per line,
/// `#` comments and blank lines ignored.
pub(crate) fn parse_allowlist(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(|line| line.split('#').next().unwrap_or("").trim())
        .filter(|line| !line.is_empty())
        .filter_map(|line| {
            let mut parts = line.split_whitespace();
            Some((parts.next()?.to_owned(), parts.next()?.to_owned()))
        })
        .collect()
}

/// Directories never scanned: build output, VCS state, and the vendored
/// API stand-ins (external style, exempt from first-party discipline).
const SKIP_DIRS: &[&str] = &["target", ".git", "vendor", ".claude"];

fn collect_rs(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if SKIP_DIRS.contains(&name.as_ref()) || name.starts_with('.') {
                continue;
            }
            collect_rs(root, &path, out)?;
        } else if name.ends_with(".rs") {
            out.push(rel_of(root, &path));
        }
    }
    Ok(())
}

fn rel_of(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.components()
        .map(|c| c.as_os_str().to_string_lossy().into_owned())
        .collect::<Vec<_>>()
        .join("/")
}

/// Blanks the contents of comments, string literals, and char literals to
/// spaces, preserving length and newlines. Handles line and (nested) block
/// comments, escapes, raw strings with any number of `#`s, byte strings,
/// and the char-literal/lifetime ambiguity.
pub(crate) fn mask(src: &str) -> String {
    let bytes = src.as_bytes();
    let mut out = bytes.to_vec();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'/' if bytes.get(i + 1) == Some(&b'/') => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    out[i] = b' ';
                    i += 1;
                }
            }
            b'/' if bytes.get(i + 1) == Some(&b'*') => {
                let mut depth = 0usize;
                while i < bytes.len() {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        out[i] = b' ';
                        out[i + 1] = b' ';
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        if bytes[i] != b'\n' {
                            out[i] = b' ';
                        }
                        i += 1;
                    }
                }
            }
            b'r' | b'b' if is_raw_string_start(bytes, i) => {
                // r"..." / r#"..."# / br"..." — skip prefix, count hashes.
                let mut j = i + 1;
                if bytes.get(j) == Some(&b'r') {
                    j += 1;
                }
                let hash_start = j;
                while bytes.get(j) == Some(&b'#') {
                    j += 1;
                }
                let hashes = j - hash_start;
                j += 1; // opening quote
                while j < bytes.len() {
                    if bytes[j] == b'"' && bytes[j + 1..].iter().take(hashes).all(|&b| b == b'#') {
                        j += 1 + hashes;
                        break;
                    }
                    if bytes[j] != b'\n' {
                        out[j] = b' ';
                    }
                    j += 1;
                }
                i = j;
            }
            b'"' => {
                i += 1;
                while i < bytes.len() {
                    match bytes[i] {
                        b'\\' => {
                            out[i] = b' ';
                            if i + 1 < bytes.len() && bytes[i + 1] != b'\n' {
                                out[i + 1] = b' ';
                            }
                            i += 2;
                        }
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => i += 1,
                        _ => {
                            out[i] = b' ';
                            i += 1;
                        }
                    }
                }
            }
            b'\'' => {
                if let Some(end) = char_literal_end(bytes, i) {
                    for k in i + 1..end {
                        if bytes[k] != b'\n' {
                            out[k] = b' ';
                        }
                    }
                    i = end + 1;
                } else {
                    // A lifetime: leave it, skip the quote.
                    i += 1;
                }
            }
            _ => i += 1,
        }
    }
    // Masking only writes ASCII spaces over existing bytes; multi-byte
    // UTF-8 sequences are either fully overwritten or untouched, so the
    // result is valid UTF-8.
    String::from_utf8(out).unwrap_or_else(|e| String::from_utf8_lossy(e.as_bytes()).into_owned())
}

fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    // `r"`, `r#`, or `br"`, `br#` — and not part of an identifier like `for`.
    if i > 0 && (bytes[i - 1].is_ascii_alphanumeric() || bytes[i - 1] == b'_') {
        return false;
    }
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) != Some(&b'r') {
        return false;
    }
    j += 1;
    while bytes.get(j) == Some(&b'#') {
        j += 1;
    }
    bytes.get(j) == Some(&b'"')
}

/// Index of the closing quote of a char literal starting at `i`, or `None`
/// when `'` introduces a lifetime instead.
fn char_literal_end(bytes: &[u8], i: usize) -> Option<usize> {
    let next = *bytes.get(i + 1)?;
    if next == b'\\' {
        // Escaped: the byte after the backslash is always part of the
        // escape (covers `'\\'` and `'\''`); then scan to the closing
        // quote (covers multi-byte escapes like `'\u{41}'`).
        let mut j = i + 3;
        while j < bytes.len() {
            if bytes[j] == b'\'' {
                return Some(j);
            }
            j += 1;
        }
        return None;
    }
    // One complete UTF-8 char then a quote ⇒ char literal; else lifetime.
    let char_len = match next {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    };
    (bytes.get(i + 1 + char_len) == Some(&b'\'')).then_some(i + 1 + char_len)
}

/// Index of the `}` (or `)`) matching the opener at `open` in `masked`,
/// which must index an opening delimiter. Operates on masked text so
/// delimiters inside literals cannot unbalance the walk.
pub(crate) fn matching_close(masked: &str, open: usize) -> Option<usize> {
    let bytes = masked.as_bytes();
    let (op, cl) = match bytes.get(open)? {
        b'{' => (b'{', b'}'),
        b'(' => (b'(', b')'),
        b'[' => (b'[', b']'),
        _ => return None,
    };
    let mut depth = 0usize;
    for (j, &b) in bytes.iter().enumerate().skip(open) {
        if b == op {
            depth += 1;
        } else if b == cl {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn masking_blanks_comments_and_strings_but_keeps_offsets() {
        let src = "let a = \"std::sync\"; // .lock().unwrap()\nlet b = 1;";
        let masked = mask(src);
        assert_eq!(masked.len(), src.len());
        assert!(!masked.contains("std::sync"));
        assert!(!masked.contains("unwrap"));
        assert!(masked.contains("let b = 1;"));
        assert_eq!(line_of(src, src.find("let b").unwrap()), 2);
    }

    #[test]
    fn masking_handles_raw_strings_and_char_literals() {
        let src =
            r##"let r = r#"has "quotes" and std::sync"#; let c = '"'; let l: &'static str = "x";"##;
        let masked = mask(src);
        assert!(!masked.contains("std::sync"));
        assert!(!masked.contains("quotes"));
        assert!(masked.contains("&'static str"), "lifetimes survive");
    }

    #[test]
    fn masking_handles_nested_block_comments() {
        let src = "/* outer /* inner */ std::sync */ let x = 1;";
        let masked = mask(src);
        assert!(!masked.contains("std::sync"));
        assert!(masked.contains("let x = 1;"));
    }

    #[test]
    fn matching_close_balances_on_masked_text() {
        let src = "fn f() { let s = \"}\"; }";
        let masked = mask(src);
        let open = masked.find('{').unwrap();
        let close = matching_close(&masked, open).unwrap();
        assert_eq!(&src[close..=close], "}");
        assert_eq!(close, src.len() - 1);
    }

    #[test]
    fn allowlist_parses_pairs_and_ignores_comments() {
        let entries =
            parse_allowlist("# comment\nzst-disarmed crates/foo.rs # why\n\nlock-unwrap bar\n");
        assert_eq!(
            entries,
            vec![
                ("zst-disarmed".to_owned(), "crates/foo.rs".to_owned()),
                ("lock-unwrap".to_owned(), "bar".to_owned()),
            ]
        );
    }
}
