//! The analyze passes: each encodes one project-specific invariant that
//! `rustc`/`clippy` cannot check, and each reports findings as
//! `(pass, file, line, message)` rows.
//!
//! | pass | invariant |
//! |------|-----------|
//! | `docs-sync` | telemetry catalogue ↔ `docs/observability.md`, both directions; `intersect.*` kernel counters additionally documented in `docs/kernels.md` |
//! | `fault-coverage` | every named fault point exercised by ≥1 chaos scenario |
//! | `sync-facade` | no direct `std::sync` / `std::thread::sleep` / `std::time::Instant` in serve/telemetry outside the `sync` facades |
//! | `lock-unwrap` | no `.unwrap()` / `.expect()` on lock results (use `Unpoison`) |
//! | `allow-reason` | every `#[allow(...)]` carries a `reason = "..."` |
//! | `zst-disarmed` | feature-disarmed types are zero-sized (unit structs or all-fields-gated) |

use crate::scan::{line_of, matching_close, SourceFile, Workspace};

/// One reported violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Finding {
    /// The pass that produced it (stable kebab-case name).
    pub(crate) pass: &'static str,
    /// Repo-relative file.
    pub(crate) file: String,
    /// 1-based line.
    pub(crate) line: usize,
    /// What is wrong and how to fix it.
    pub(crate) message: String,
}

/// Stable pass names, in execution order.
pub(crate) const PASS_NAMES: &[&str] = &[
    "docs-sync",
    "fault-coverage",
    "sync-facade",
    "lock-unwrap",
    "allow-reason",
    "zst-disarmed",
];

/// Runs every pass over `ws`, dropping allowlisted findings.
pub(crate) fn run_all(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    findings.extend(docs_sync(ws));
    findings.extend(fault_coverage(ws));
    findings.extend(sync_facade(ws));
    findings.extend(lock_unwrap(ws));
    findings.extend(allow_reason(ws));
    findings.extend(zst_disarmed(ws));
    findings.retain(|f| !ws.allowed(f.pass, &f.file));
    findings.sort_by(|a, b| (a.pass, &a.file, a.line).cmp(&(b.pass, &b.file, b.line)));
    findings
}

const TELEMETRY_LIB: &str = "crates/telemetry/src/lib.rs";
const FAULTS_FILE: &str = "crates/serve/src/faults.rs";

/// Extracts the `=> "label"` entries of every `catalogue!` invocation,
/// with the byte offset of each label.
fn catalogue_labels(file: &SourceFile) -> Vec<(String, usize)> {
    let mut labels = Vec::new();
    let mut search = 0;
    while let Some(found) = file.masked[search..].find("catalogue!") {
        let at = search + found;
        let Some(open_rel) = file.masked[at..].find('{') else {
            break;
        };
        let open = at + open_rel;
        let close = matching_close(&file.masked, open).unwrap_or(file.masked.len() - 1);
        // Labels are string literals, blanked in the mask — locate the
        // `=> "` anchors on the mask, read the contents from the raw text.
        let mut pos = open;
        while let Some(arrow_rel) = file.masked[pos..close].find("=> \"") {
            let quote = pos + arrow_rel + 3;
            let Some(end_rel) = file.raw[quote + 1..].find('"') else {
                break;
            };
            labels.push((file.raw[quote + 1..quote + 1 + end_rel].to_owned(), quote));
            pos = quote + 1 + end_rel;
        }
        search = close;
    }
    labels
}

/// First-column backticked dotted tokens of the doc's tables, with their
/// byte offsets: `| \`graph.csr\` | ... |` rows.
fn doc_tokens(doc: &str) -> Vec<(String, usize)> {
    let mut tokens = Vec::new();
    let mut offset = 0;
    for line in doc.lines() {
        if let Some(rest) = line.trim_start().strip_prefix('|') {
            let cell = rest.split('|').next().unwrap_or("").trim();
            if let Some(token) = cell
                .strip_prefix('`')
                .and_then(|c| c.strip_suffix('`'))
                .filter(|t| {
                    t.contains('.')
                        && t.chars().all(|c| {
                            c.is_ascii_lowercase() || c.is_ascii_digit() || "._".contains(c)
                        })
                })
            {
                tokens.push((token.to_owned(), offset));
            }
        }
        offset += line.len() + 1;
    }
    tokens
}

/// `docs-sync`: the Stage/Metric catalogue and `docs/observability.md`
/// must agree in both directions.
pub(crate) fn docs_sync(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(lib) = ws.file(TELEMETRY_LIB) else {
        return findings; // fixture workspaces without telemetry skip this
    };
    let Some((doc_rel, doc)) = &ws.observability_doc else {
        findings.push(Finding {
            pass: "docs-sync",
            file: TELEMETRY_LIB.to_owned(),
            line: 1,
            message: "docs/observability.md is missing but the telemetry catalogue exists"
                .to_owned(),
        });
        return findings;
    };
    let labels = catalogue_labels(lib);
    for (label, offset) in &labels {
        if !doc.contains(&format!("`{label}`")) {
            findings.push(Finding {
                pass: "docs-sync",
                file: lib.rel.clone(),
                line: lib.line_of(*offset),
                message: format!("catalogue entry \"{label}\" is not documented in {doc_rel}"),
            });
        }
    }
    for (token, offset) in doc_tokens(doc) {
        if !labels.iter().any(|(l, _)| *l == token) {
            findings.push(Finding {
                pass: "docs-sync",
                file: doc_rel.clone(),
                line: line_of(doc, offset),
                message: format!(
                    "documented name \"{token}\" has no Stage/Metric catalogue entry in {TELEMETRY_LIB}"
                ),
            });
        }
    }
    // The kernel-dispatch counters are docs/kernels.md's subject matter:
    // every `intersect.*` catalogue label must additionally appear there,
    // so the kernel taxonomy can never silently drift from the telemetry.
    let kernel_labels: Vec<_> = labels
        .iter()
        .filter(|(l, _)| l.starts_with("intersect."))
        .collect();
    if !kernel_labels.is_empty() {
        match &ws.kernels_doc {
            Some((kernels_rel, kernels)) => {
                for (label, offset) in kernel_labels {
                    if !kernels.contains(&format!("`{label}`")) {
                        findings.push(Finding {
                            pass: "docs-sync",
                            file: lib.rel.clone(),
                            line: lib.line_of(*offset),
                            message: format!(
                                "kernel counter \"{label}\" is not documented in {kernels_rel}"
                            ),
                        });
                    }
                }
            }
            None => findings.push(Finding {
                pass: "docs-sync",
                file: lib.rel.clone(),
                line: lib.line_of(kernel_labels[0].1),
                message: "docs/kernels.md is missing but the catalogue declares intersect.* \
                          kernel counters"
                    .to_owned(),
            }),
        }
    }
    findings
}

/// The variant identifiers of `pub enum FaultPoint`, with offsets.
fn fault_point_variants(file: &SourceFile) -> Vec<(String, usize)> {
    let Some(at) = file.masked.find("enum FaultPoint") else {
        return Vec::new();
    };
    let Some(open) = file.masked[at..].find('{').map(|r| at + r) else {
        return Vec::new();
    };
    let close = matching_close(&file.masked, open).unwrap_or(file.masked.len() - 1);
    let body = &file.masked[open + 1..close];
    let mut variants = Vec::new();
    for (idx, line) in body.lines().enumerate() {
        let trimmed = line.trim();
        if let Some(ident) = trimmed.strip_suffix(',') {
            if !ident.is_empty()
                && ident.chars().next().is_some_and(|c| c.is_ascii_uppercase())
                && ident.chars().all(|c| c.is_ascii_alphanumeric())
            {
                // Offset of this line within the file.
                let line_offset =
                    open + 1 + body.lines().take(idx).map(|l| l.len() + 1).sum::<usize>();
                variants.push((ident.to_owned(), line_offset));
            }
        }
    }
    variants
}

/// `fault-coverage`: every `FaultPoint` variant must be referenced by at
/// least one chaos scenario (a root `tests/*chaos*.rs` file).
pub(crate) fn fault_coverage(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    let Some(faults) = ws.file(FAULTS_FILE) else {
        return findings;
    };
    let variants = fault_point_variants(faults);
    let chaos_files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.rel.starts_with("tests/") && f.rel.contains("chaos"))
        .collect();
    if chaos_files.is_empty() {
        findings.push(Finding {
            pass: "fault-coverage",
            file: faults.rel.clone(),
            line: 1,
            message:
                "no chaos scenario file (tests/*chaos*.rs) exists to exercise the fault points"
                    .to_owned(),
        });
        return findings;
    }
    for (variant, offset) in variants {
        let needle = format!("FaultPoint::{variant}");
        if !chaos_files.iter().any(|f| f.masked.contains(&needle)) {
            findings.push(Finding {
                pass: "fault-coverage",
                file: faults.rel.clone(),
                line: faults.line_of(offset),
                message: format!(
                    "fault point {needle} is not referenced by any chaos scenario in tests/"
                ),
            });
        }
    }
    findings
}

/// Files the facade discipline applies to: serve, telemetry, and
/// durability sources, minus the facades themselves (they are the one
/// sanctioned doorway).
fn facade_scoped(file: &SourceFile) -> bool {
    (file.rel.starts_with("crates/serve/src/")
        || file.rel.starts_with("crates/telemetry/src/")
        || file.rel.starts_with("crates/durability/src/"))
        && !file.rel.ends_with("/sync.rs")
}

/// `sync-facade`: inside serve/telemetry, synchronisation primitives come
/// from the crate's `sync` facade, never from `std` directly — otherwise
/// loom model checking silently loses coverage of that site.
pub(crate) fn sync_facade(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.files.iter().filter(|f| facade_scoped(f)) {
        for (idx, line) in file.masked.lines().enumerate() {
            let hit = if line.contains("std::sync") {
                Some("std::sync")
            } else if line.contains("std::thread::sleep") {
                Some("std::thread::sleep")
            } else if line.contains("std::time::") && line.contains("Instant") {
                Some("std::time::Instant")
            } else {
                None
            };
            if let Some(what) = hit {
                findings.push(Finding {
                    pass: "sync-facade",
                    file: file.rel.clone(),
                    line: idx + 1,
                    message: format!(
                        "direct use of {what}; import it from the crate's `sync` facade so \
                         loom model checking covers this site"
                    ),
                });
            }
        }
    }
    findings
}

/// `lock-unwrap`: `.unwrap()`/`.expect()` on a lock result either panics
/// on poison (crashing the service for a contained fault) or hides a
/// poisoning-policy decision; the facades' `Unpoison` makes the policy
/// explicit.
pub(crate) fn lock_unwrap(ws: &Workspace) -> Vec<Finding> {
    const LOCK_CALLS: &[&str] = &[
        ".lock()",
        ".read()",
        ".write()",
        ".try_lock()",
        ".try_read()",
        ".try_write()",
    ];
    let mut findings = Vec::new();
    for file in &ws.files {
        for call in LOCK_CALLS {
            let mut search = 0;
            while let Some(found) = file.masked[search..].find(call) {
                let at = search + found;
                search = at + call.len();
                let rest = file.masked[search..].trim_start();
                if rest.starts_with(".unwrap(") || rest.starts_with(".expect(") {
                    findings.push(Finding {
                        pass: "lock-unwrap",
                        file: file.rel.clone(),
                        line: file.line_of(at),
                        message: format!(
                            "`{}` followed by unwrap/expect on the lock result; use the sync \
                             facade's `.unpoison()` instead",
                            &call[1..call.len() - 2]
                        ),
                    });
                }
            }
        }
    }
    findings
}

/// `allow-reason`: every `#[allow(...)]` / `#![allow(...)]` must carry a
/// `reason = "..."` so suppressions stay auditable.
pub(crate) fn allow_reason(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in &ws.files {
        for anchor in ["#[allow(", "#![allow("] {
            let mut search = 0;
            while let Some(found) = file.masked[search..].find(anchor) {
                let at = search + found;
                let open = at + anchor.len() - 1;
                let close = matching_close(&file.masked, open).unwrap_or(file.masked.len() - 1);
                if !file.raw[open..=close].contains("reason") {
                    findings.push(Finding {
                        pass: "allow-reason",
                        file: file.rel.clone(),
                        line: file.line_of(at),
                        message: "#[allow(...)] without a `reason = \"...\"`; justify the \
                                  suppression or remove it"
                            .to_owned(),
                    });
                }
                search = close;
            }
        }
    }
    findings
}

/// `zst-disarmed`: a struct compiled only when a feature is *off* is the
/// disarmed stand-in for an armed subsystem and must be zero-sized — a
/// unit struct, an empty braces struct, or a struct whose every field is
/// itself feature-gated. Exceptions go in `xtask/analyze_allow.txt`.
pub(crate) fn zst_disarmed(ws: &Workspace) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in ws.files.iter().filter(|f| {
        f.rel.starts_with("crates/serve/src/")
            || f.rel.starts_with("crates/telemetry/src/")
            || f.rel.starts_with("crates/durability/src/")
    }) {
        findings.extend(zst_disarmed_in(file));
        findings.extend(gated_fields_consistent(file));
    }
    findings
}

/// Structs directly under `#[cfg(not(feature = ...))]` must be fieldless.
fn zst_disarmed_in(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut search = 0;
    while let Some(found) = file.masked[search..].find("#[cfg(not(feature") {
        let at = search + found;
        let open = at + "#[cfg".len();
        let close = matching_close(&file.masked, open).unwrap_or(file.masked.len() - 1);
        search = close;
        // Skip trailing `]`, whitespace, and any further attributes or
        // (masked) doc comments, then see what item follows.
        let mut pos = close + 1;
        let bytes = file.masked.as_bytes();
        loop {
            while pos < bytes.len() && (bytes[pos] as char).is_whitespace()
                || pos < bytes.len() && bytes[pos] == b']'
            {
                pos += 1;
            }
            if file.masked[pos..].starts_with("#[") || file.masked[pos..].starts_with("#![") {
                let attr_open = pos + file.masked[pos..].find('[').unwrap_or(0);
                pos = matching_close(&file.masked, attr_open).unwrap_or(pos) + 1;
            } else {
                break;
            }
        }
        let item = &file.masked[pos..];
        let after_vis = item
            .strip_prefix("pub")
            .map(|r| {
                let r = r.trim_start_matches(|c: char| c == '(' || c == ')' || c.is_alphanumeric());
                r.trim_start()
            })
            .unwrap_or(item);
        let Some(rest) = after_vis.strip_prefix("struct ") else {
            continue; // only structs are pattern-checked
        };
        // Unit struct (`struct X;`) or empty braces are zero-sized.
        let body_start = pos + (item.len() - rest.len());
        let Some(delim_rel) = file.masked[body_start..].find(['{', ';', '(']) else {
            continue;
        };
        let delim = body_start + delim_rel;
        match file.masked.as_bytes()[delim] {
            b';' => {}
            b'{' | b'(' => {
                let body_close = matching_close(&file.masked, delim).unwrap_or(delim);
                let body = &file.masked[delim + 1..body_close];
                let has_field = body.lines().any(|l| field_like(l));
                if has_field {
                    findings.push(Finding {
                        pass: "zst-disarmed",
                        file: file.rel.clone(),
                        line: file.line_of(at),
                        message: "struct under #[cfg(not(feature = ...))] carries fields; the \
                                  disarmed stand-in must be a ZST (or be allowlisted in \
                                  xtask/analyze_allow.txt)"
                            .to_owned(),
                    });
                }
            }
            _ => {}
        }
    }
    findings
}

/// A masked line that declares a named struct field.
fn field_like(line: &str) -> bool {
    let t = line.trim();
    let t = t.strip_prefix("pub").map_or(t, |r| {
        r.trim_start_matches(|c: char| c == '(' || c == ')' || c.is_alphanumeric())
            .trim_start()
    });
    let mut chars = t.chars();
    matches!(chars.next(), Some(c) if c.is_ascii_lowercase() || c == '_')
        && t.contains(':')
        && !t.contains("::")
        && !t.starts_with("fn ")
}

/// Structs mixing `#[cfg(feature = ...)]`-gated and ungated fields are not
/// ZSTs when the feature is off — every field must be gated (the
/// `SpanGuard` pattern) or none.
fn gated_fields_consistent(file: &SourceFile) -> Vec<Finding> {
    let mut findings = Vec::new();
    let mut search = 0;
    while let Some(found) = file.masked[search..].find("struct ") {
        let at = search + found;
        search = at + "struct ".len();
        // Require a word boundary before `struct`.
        if at > 0 {
            let prev = file.masked.as_bytes()[at - 1];
            if prev.is_ascii_alphanumeric() || prev == b'_' {
                continue;
            }
        }
        let Some(open_rel) = file.masked[at..].find(['{', ';']) else {
            continue;
        };
        let open = at + open_rel;
        if file.masked.as_bytes()[open] != b'{' {
            continue;
        }
        let close = matching_close(&file.masked, open).unwrap_or(open);
        let body = &file.masked[open + 1..close];
        let mut gated = 0usize;
        let mut ungated = 0usize;
        let mut pending_cfg = false;
        for line in body.lines() {
            let t = line.trim();
            if t.starts_with("#[cfg(feature") {
                pending_cfg = true;
            } else if field_like(t) {
                if pending_cfg {
                    gated += 1;
                } else {
                    ungated += 1;
                }
                pending_cfg = false;
            } else if t.starts_with("#[") {
                // derives etc. — keep any pending cfg for the next field
            } else if !t.is_empty() {
                pending_cfg = false;
            }
        }
        if gated > 0 && ungated > 0 {
            findings.push(Finding {
                pass: "zst-disarmed",
                file: file.rel.clone(),
                line: file.line_of(at),
                message: format!(
                    "struct mixes {gated} feature-gated field(s) with {ungated} ungated \
                     field(s); disarmed builds would not be zero-sized"
                ),
            });
        }
        search = close;
    }
    findings
}
