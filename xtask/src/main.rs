//! `cargo xtask analyze` — the workspace's custom static-analysis gate.
//!
//! Runs six project-specific passes (see [`passes`]) over the first-party
//! sources and exits non-zero when any invariant is violated. The passes
//! are textual with lexical masking ([`scan`]) — the offline build
//! environment has no `syn` — which is exact enough for the narrow,
//! project-shaped properties they check.
//!
//! ```text
//! cargo xtask analyze              # human-readable findings, exit 1 if any
//! cargo xtask analyze --json       # esd-analyze/v1 JSON on stdout
//! cargo xtask analyze --self-test  # each pass must catch a seeded violation
//! cargo xtask analyze --root PATH  # analyze a different checkout
//! ```

mod passes;
mod scan;
mod selftest;

use esd_telemetry::json::Json;
use passes::{run_all, Finding, PASS_NAMES};
use scan::Workspace;
use std::path::PathBuf;
use std::process::ExitCode;

/// Schema identifier stamped into `--json` output.
const SCHEMA: &str = "esd-analyze/v1";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = None;
    let mut json = false;
    let mut self_test = false;
    let mut root = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--self-test" => self_test = true,
            "--root" => match it.next() {
                Some(path) => root = Some(PathBuf::from(path)),
                None => return usage("--root needs a path"),
            },
            flag if flag.starts_with('-') => return usage(&format!("unknown flag {flag}")),
            cmd if command.is_none() => command = Some(cmd.to_owned()),
            extra => return usage(&format!("unexpected argument {extra}")),
        }
    }
    match command.as_deref() {
        Some("analyze") => {}
        Some(other) => return usage(&format!("unknown command {other}")),
        None => return usage("missing command"),
    }

    if self_test {
        return if selftest::run(json) {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let root = root.unwrap_or_else(default_root);
    let ws = match Workspace::load(&root) {
        Ok(ws) => ws,
        Err(e) => {
            eprintln!("analyze: cannot load workspace at {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let findings = run_all(&ws);
    report(&findings, ws.files.len(), json);
    if findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The workspace root: the parent of the `xtask` crate directory.
fn default_root() -> PathBuf {
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().map_or(manifest.clone(), PathBuf::from)
}

fn usage(problem: &str) -> ExitCode {
    eprintln!("xtask: {problem}");
    eprintln!("usage: cargo xtask analyze [--json] [--self-test] [--root PATH]");
    ExitCode::from(2)
}

/// Prints findings (human or `esd-analyze/v1` JSON) to stdout.
fn report(findings: &[Finding], files_scanned: usize, json: bool) {
    if json {
        println!("{}", to_json(findings).render_compact());
        return;
    }
    for f in findings {
        println!("{}: {}:{}: {}", f.pass, f.file, f.line, f.message);
    }
    if findings.is_empty() {
        println!(
            "analyze: all {} passes clean over {files_scanned} files",
            PASS_NAMES.len()
        );
    } else {
        println!(
            "analyze: {} finding(s) across {} files — see lines above",
            findings.len(),
            files_scanned
        );
    }
}

/// Renders findings as the `esd-analyze/v1` object.
fn to_json(findings: &[Finding]) -> Json {
    Json::obj(vec![
        ("schema", Json::str(SCHEMA)),
        ("clean", Json::Bool(findings.is_empty())),
        (
            "findings",
            Json::Arr(
                findings
                    .iter()
                    .map(|f| {
                        Json::obj(vec![
                            ("pass", Json::str(f.pass)),
                            ("file", Json::str(f.file.clone())),
                            ("line", Json::num_u64(f.line as u64)),
                            ("message", Json::str(f.message.clone())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_stable() {
        let findings = vec![Finding {
            pass: "lock-unwrap",
            file: "crates/x.rs".to_owned(),
            line: 7,
            message: "m".to_owned(),
        }];
        let text = to_json(&findings).render_compact();
        let parsed = Json::parse(&text).expect("valid JSON");
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(parsed.get("clean").and_then(Json::as_bool), Some(false));
        let rows = parsed.get("findings").and_then(Json::as_arr).expect("arr");
        assert_eq!(rows[0].get("line").and_then(Json::as_u64), Some(7));
        assert_eq!(
            rows[0].get("pass").and_then(Json::as_str),
            Some("lock-unwrap")
        );
    }

    #[test]
    fn empty_findings_render_clean() {
        let parsed = Json::parse(&to_json(&[]).render_compact()).expect("valid");
        assert_eq!(parsed.get("clean").and_then(Json::as_bool), Some(true));
    }

    #[test]
    fn self_test_catches_every_seeded_violation() {
        assert!(crate::selftest::run(false));
    }
}
