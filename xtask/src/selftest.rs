//! `--self-test`: proves each pass can actually catch its violation.
//!
//! A static-analysis gate that silently stops matching anything is worse
//! than no gate. For every pass this module builds a tiny in-memory
//! workspace seeded with exactly one violation, runs the pass, and
//! requires (a) the violation is reported with the right pass name and
//! location, and (b) a clean twin workspace produces no findings.

use crate::passes::{self, Finding};
use crate::scan::{SourceFile, Workspace};

/// One seeded scenario: a violating workspace, its clean twin, and where
/// the seeded violation lives.
struct Scenario {
    pass: &'static str,
    violating: Workspace,
    clean: Workspace,
    expect_file: &'static str,
    run: fn(&Workspace) -> Vec<Finding>,
}

fn ws(files: Vec<SourceFile>, doc: Option<&str>) -> Workspace {
    ws_with_kernels(files, doc, None)
}

fn ws_with_kernels(files: Vec<SourceFile>, doc: Option<&str>, kernels: Option<&str>) -> Workspace {
    Workspace {
        files,
        observability_doc: doc.map(|d| ("docs/observability.md".to_owned(), d.to_owned())),
        kernels_doc: kernels.map(|d| ("docs/kernels.md".to_owned(), d.to_owned())),
        allowlist: Vec::new(),
    }
}

fn scenarios() -> Vec<Scenario> {
    let telemetry_lib = "crates/telemetry/src/lib.rs";
    let faults = "crates/serve/src/faults.rs";

    let catalogue = |entries: &str| {
        format!("macro_rules! catalogue {{ () => {{}}; }}\ncatalogue! {{\n    Stage {{\n{entries}    }}\n}}\n")
    };
    let doc_ok = "| Stage | Where |\n|---|---|\n| `alpha.one` | here |\n| `beta.two` | there |\n";
    let doc_bad =
        "| Stage | Where |\n|---|---|\n| `alpha.one` | here |\n| `gamma.three` | nowhere |\n";

    vec![
        Scenario {
            pass: "docs-sync",
            violating: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        A => \"alpha.one\",\n        B => \"beta.two\",\n"),
                )],
                Some(doc_bad),
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        A => \"alpha.one\",\n        B => \"beta.two\",\n"),
                )],
                Some(doc_ok),
            ),
            expect_file: telemetry_lib,
            run: passes::docs_sync,
        },
        // The kernel-counter arm of docs-sync: an `intersect.*` label that
        // docs/observability.md documents must STILL be flagged when
        // docs/kernels.md omits it.
        Scenario {
            pass: "docs-sync",
            violating: ws_with_kernels(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        M => \"intersect.merge\",\n"),
                )],
                Some("| Counter | Where |\n|---|---|\n| `intersect.merge` | dispatcher |\n"),
                Some("# Kernels\n\nNo counter table here.\n"),
            ),
            clean: ws_with_kernels(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        M => \"intersect.merge\",\n"),
                )],
                Some("| Counter | Where |\n|---|---|\n| `intersect.merge` | dispatcher |\n"),
                Some("# Kernels\n\nDispatch is counted by `intersect.merge`.\n"),
            ),
            expect_file: telemetry_lib,
            run: passes::docs_sync,
        },
        Scenario {
            pass: "fault-coverage",
            violating: ws(
                vec![
                    SourceFile::from_text(
                        faults,
                        "pub enum FaultPoint {\n    SnapshotPublish,\n    WriterApply,\n    \
                         WalAppend,\n    WalFsync,\n    CheckpointWrite,\n}\n",
                    ),
                    // Every durability point but WalFsync is exercised —
                    // the pass must flag exactly the uncovered one.
                    SourceFile::from_text(
                        "tests/chaos_serve.rs",
                        "fn scenario() { let _ = (FaultPoint::SnapshotPublish, \
                         FaultPoint::WriterApply, FaultPoint::WalAppend, \
                         FaultPoint::CheckpointWrite); }\n",
                    ),
                ],
                None,
            ),
            clean: ws(
                vec![
                    SourceFile::from_text(
                        faults,
                        "pub enum FaultPoint {\n    SnapshotPublish,\n    WriterApply,\n    \
                         WalAppend,\n    WalFsync,\n    CheckpointWrite,\n}\n",
                    ),
                    SourceFile::from_text(
                        "tests/chaos_serve.rs",
                        "fn scenario() { let _ = (FaultPoint::SnapshotPublish, \
                         FaultPoint::WriterApply, FaultPoint::WalAppend, \
                         FaultPoint::WalFsync, FaultPoint::CheckpointWrite); }\n",
                    ),
                ],
                None,
            ),
            expect_file: faults,
            run: passes::fault_coverage,
        },
        // The shard extension of docs-sync: the `shard.*` merge telemetry
        // is part of the catalogue like any other label, so dropping its
        // documentation row must be flagged.
        Scenario {
            pass: "docs-sync",
            violating: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        G => \"shard.gather\",\n        R => \"shard.route\",\n"),
                )],
                Some("| Stage | Where |\n|---|---|\n| `shard.route` | fan_out |\n"),
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue("        G => \"shard.gather\",\n        R => \"shard.route\",\n"),
                )],
                Some(
                    "| Stage | Where |\n|---|---|\n| `shard.gather` | scatter_gather |\n\
                     | `shard.route` | fan_out |\n",
                ),
            ),
            expect_file: telemetry_lib,
            run: passes::docs_sync,
        },
        // The query-family extension of docs-sync: the `family.*` suite
        // telemetry is part of the catalogue like any other label, so a
        // missing documentation row must be flagged.
        Scenario {
            pass: "docs-sync",
            violating: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue(
                        "        A => \"family.apply\",\n        Q => \"family.queries\",\n",
                    ),
                )],
                Some("| Stage | Where |\n|---|---|\n| `family.apply` | FamilySuite |\n"),
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    telemetry_lib,
                    &catalogue(
                        "        A => \"family.apply\",\n        Q => \"family.queries\",\n",
                    ),
                )],
                Some(
                    "| Stage | Where |\n|---|---|\n| `family.apply` | FamilySuite |\n\
                     | `family.queries` | FamilySuite::query |\n",
                ),
            ),
            expect_file: telemetry_lib,
            run: passes::docs_sync,
        },
        // The shard extension of fault-coverage: a fault point whose only
        // chaos coverage lives in tests/chaos_shard.rs counts as covered
        // (any tests/*chaos*.rs file does), and losing that file brings
        // the flag back.
        Scenario {
            pass: "fault-coverage",
            violating: ws(
                vec![
                    SourceFile::from_text(
                        faults,
                        "pub enum FaultPoint {\n    WriterApply,\n    WalFsync,\n}\n",
                    ),
                    SourceFile::from_text(
                        "tests/chaos_serve.rs",
                        "fn scenario() { let _ = FaultPoint::WriterApply; }\n",
                    ),
                ],
                None,
            ),
            clean: ws(
                vec![
                    SourceFile::from_text(
                        faults,
                        "pub enum FaultPoint {\n    WriterApply,\n    WalFsync,\n}\n",
                    ),
                    SourceFile::from_text(
                        "tests/chaos_serve.rs",
                        "fn scenario() { let _ = FaultPoint::WriterApply; }\n",
                    ),
                    SourceFile::from_text(
                        "tests/chaos_shard.rs",
                        "fn scenario() { let _ = FaultPoint::WalFsync; }\n",
                    ),
                ],
                None,
            ),
            expect_file: faults,
            run: passes::fault_coverage,
        },
        Scenario {
            pass: "sync-facade",
            violating: ws(
                vec![SourceFile::from_text(
                    "crates/serve/src/bad.rs",
                    "use std::sync::Mutex;\n",
                )],
                None,
            ),
            clean: ws(
                vec![
                    SourceFile::from_text(
                        "crates/serve/src/good.rs",
                        "use crate::sync::Mutex;\n// std::sync in a comment is fine\n",
                    ),
                    SourceFile::from_text(
                        "crates/serve/src/sync.rs",
                        "pub(crate) use std::sync::Mutex;\n",
                    ),
                ],
                None,
            ),
            expect_file: "crates/serve/src/bad.rs",
            run: passes::sync_facade,
        },
        Scenario {
            pass: "lock-unwrap",
            violating: ws(
                vec![SourceFile::from_text(
                    "crates/core/src/bad.rs",
                    "fn f() { let _g = M.lock()\n        .unwrap(); }\n",
                )],
                None,
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    "crates/core/src/good.rs",
                    "fn f(buf: &mut [u8]) { let _g = M.lock().unpoison(); file.read(buf).unwrap(); }\n",
                )],
                None,
            ),
            expect_file: "crates/core/src/bad.rs",
            run: passes::lock_unwrap,
        },
        Scenario {
            pass: "allow-reason",
            violating: ws(
                vec![SourceFile::from_text(
                    "crates/core/src/bad.rs",
                    "#[allow(dead_code)]\nfn f() {}\n",
                )],
                None,
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    "crates/core/src/good.rs",
                    "#[allow(dead_code, reason = \"exercised only by the slow suite\")]\nfn f() {}\n",
                )],
                None,
            ),
            expect_file: "crates/core/src/bad.rs",
            run: passes::allow_reason,
        },
        Scenario {
            pass: "zst-disarmed",
            violating: ws(
                vec![SourceFile::from_text(
                    "crates/serve/src/bad.rs",
                    "#[cfg(not(feature = \"x\"))]\n#[derive(Debug)]\npub struct Disarmed {\n    leftover: u64,\n}\n",
                )],
                None,
            ),
            clean: ws(
                vec![SourceFile::from_text(
                    "crates/serve/src/good.rs",
                    "#[cfg(not(feature = \"x\"))]\npub struct Disarmed;\npub struct Guard {\n    #[cfg(feature = \"x\")]\n    state: u64,\n    #[cfg(feature = \"x\")]\n    start: u64,\n}\n",
                )],
                None,
            ),
            expect_file: "crates/serve/src/bad.rs",
            run: passes::zst_disarmed,
        },
    ]
}

/// Runs every scenario; prints one line per pass; `true` when all hold.
pub(crate) fn run(json: bool) -> bool {
    let mut all_ok = true;
    let mut rows = Vec::new();
    for s in scenarios() {
        let caught = (s.run)(&s.violating);
        let hit = caught
            .iter()
            .find(|f| f.pass == s.pass && f.file == s.expect_file);
        let false_alarms = (s.run)(&s.clean);
        let ok = hit.is_some() && false_alarms.is_empty();
        all_ok &= ok;
        let detail = match (hit, false_alarms.is_empty()) {
            (Some(f), true) => format!("caught seeded violation at {}:{}", f.file, f.line),
            (None, _) => "MISSED the seeded violation".to_owned(),
            (_, false) => format!("false alarm on clean fixture: {:?}", false_alarms[0]),
        };
        rows.push((s.pass, ok, detail));
    }
    if json {
        use esd_telemetry::json::Json;
        let obj = Json::obj(vec![
            ("schema", Json::str(crate::SCHEMA)),
            ("self_test", Json::Bool(true)),
            ("ok", Json::Bool(all_ok)),
            (
                "passes",
                Json::Arr(
                    rows.iter()
                        .map(|(pass, ok, detail)| {
                            Json::obj(vec![
                                ("pass", Json::str(*pass)),
                                ("ok", Json::Bool(*ok)),
                                ("detail", Json::str(detail.clone())),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", obj.render_compact());
    } else {
        for (pass, ok, detail) in &rows {
            println!(
                "self-test {pass}: {} — {detail}",
                if *ok { "ok" } else { "FAIL" }
            );
        }
    }
    all_ok
}
