//! The Fig 13 case study: polysemy discovery in a word-association network.
//!
//! The edge with the highest structural diversity connects two words whose
//! shared associations split into several contexts — distinct senses of the
//! pair. Compare with the CN baseline, which surfaces strongly-associated
//! pairs with a single shared context.
//!
//! Run with: `cargo run --release --example word_association`

use esd::core::baselines;
use esd::core::score::{component_sizes, naive_topk};
use esd::datasets::words::word_association;
use esd::graph::traversal;

fn main() {
    let net = word_association(1_000, 7);
    let g = &net.graph;
    println!(
        "word association network: {} words, {} associations",
        g.num_vertices(),
        g.num_edges()
    );

    let top = naive_topk(g, 2, 2);
    println!("\ntop-2 edges by structural diversity (τ = 2):");
    for s in &top {
        println!(
            "\n  (\"{}\", \"{}\")  — {} contexts of size ≥ 2",
            net.word(s.edge.u),
            net.word(s.edge.v),
            s.score
        );
        // Print each ego-network component as a context.
        let members = g.common_neighbors(s.edge.u, s.edge.v);
        for context in traversal::induced_components(g, &members) {
            let words: Vec<&str> = context.iter().map(|&w| net.word(w)).collect();
            println!("      context: {}", words.join(", "));
        }
        let sizes = component_sizes(g, s.edge.u, s.edge.v);
        println!("      component sizes: {sizes:?}");
    }

    // Contrast with the CN baseline.
    println!("\ntop-3 edges by common neighbours (CN baseline):");
    for s in baselines::topk_common_neighbors(g, 3) {
        let comps = traversal::induced_components(g, &g.common_neighbors(s.edge.u, s.edge.v));
        println!(
            "  (\"{}\", \"{}\")  — {} shared words in {} component(s)",
            net.word(s.edge.u),
            net.word(s.edge.v),
            s.score,
            comps.len()
        );
    }
    println!("\nCN finds strong single-context ties; ESD finds polysemy.");
}
