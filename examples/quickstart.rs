//! Quickstart: find the top-k structurally diverse edges of a graph three
//! ways — online search, static index, maintained (dynamic) index.
//!
//! Run with: `cargo run --release --example quickstart`

use esd::core::online::{online_topk, UpperBound};
use esd::core::score::component_sizes;
use esd::core::{EsdIndex, MaintainedIndex};
use esd::graph::generators;

fn main() {
    // A collaboration-style graph: 2,000 authors, ~1,500 "papers" that each
    // link their author group into a clique.
    let g = generators::clique_overlap(2_000, 1_500, 6, 42);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let (k, tau) = (5, 2);

    // 1. Online search — no preprocessing. `CommonNeighbor` is OnlineBFS+.
    let online = online_topk(&g, k, tau, UpperBound::CommonNeighbor);
    println!("\ntop-{k} by online search (τ = {tau}):");
    for s in &online {
        let sizes = component_sizes(&g, s.edge.u, s.edge.v);
        println!("  {s}   component sizes: {sizes:?}");
    }

    // 2. Index-based search — build once, query any (k, τ) in microseconds.
    let index = EsdIndex::build_fast(&g);
    println!(
        "\nESDIndex: {} lists (C = {:?}…), {} entries, ~{} bytes",
        index.num_lists(),
        &index.component_sizes()[..index.num_lists().min(8)],
        index.total_entries(),
        index.byte_size()
    );
    let fast = index.query(k, tau);
    assert_eq!(online, fast, "both algorithms agree");
    for tau in 1..=4 {
        let top = index.query(1, tau);
        match top.first() {
            Some(s) => println!("  τ = {tau}: best edge {s}"),
            None => println!("  τ = {tau}: no edge has a component that large"),
        }
    }

    // 3. Dynamic maintenance — keep the index fresh under updates.
    let mut live = MaintainedIndex::new(&g);
    let top = live.query(1, tau)[0];
    // Deleting the top edge dethrones it.
    live.remove_edge(top.edge.u, top.edge.v);
    let new_top = live.query(1, tau)[0];
    println!("\nafter deleting {}: new best is {}", top.edge, new_top);
    assert_ne!(top.edge, new_top.edge);
    // Re-inserting restores it.
    live.insert_edge(top.edge.u, top.edge.v);
    assert_eq!(live.query(1, tau)[0], top);
    println!("re-inserting {} restores the ranking", top.edge);
}
