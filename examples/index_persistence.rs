//! Build once, ship the index: the ESDX persistence workflow.
//!
//! A production deployment builds the ESDIndex offline, freezes it to the
//! flat read-only form, writes it next to the graph, and serves queries
//! from the loaded artifact — with checksummed loading that refuses
//! corrupted files.
//!
//! Run with: `cargo run --release --example index_persistence`

use esd::core::index::FrozenEsdIndex;
use esd::core::EsdIndex;
use esd::graph::generators;
use std::time::Instant;

fn main() {
    let g = generators::clique_overlap(5_000, 4_000, 6, 7);
    println!(
        "graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    // Offline: build + freeze + save.
    let start = Instant::now();
    let index = EsdIndex::build_fast(&g);
    println!(
        "built ESDIndex in {:?} ({} entries)",
        start.elapsed(),
        index.total_entries()
    );
    let frozen = index.freeze();
    println!(
        "frozen: {} bytes vs {} bytes treap form ({:.1}x smaller)",
        frozen.byte_size(),
        index.byte_size(),
        index.byte_size() as f64 / frozen.byte_size() as f64
    );
    let path = std::env::temp_dir().join("esd_example.esdx");
    frozen.save(&path).expect("save index");
    println!(
        "saved to {} ({} bytes on disk)",
        path.display(),
        std::fs::metadata(&path).unwrap().len()
    );

    // Online: load + serve.
    let start = Instant::now();
    let served = FrozenEsdIndex::load(&path).expect("load index");
    println!("loaded in {:?}", start.elapsed());
    let start = Instant::now();
    let reps = 10_000;
    let mut checksum = 0u64;
    for i in 0..reps {
        let tau = 1 + (i % 4) as u32;
        for s in served.query_slice(10, tau) {
            checksum = checksum.wrapping_add(s.edge.key());
        }
    }
    let elapsed = start.elapsed();
    println!(
        "{reps} queries in {:?} ({:.2} µs/query, checksum {checksum:x})",
        elapsed,
        elapsed.as_secs_f64() * 1e6 / f64::from(reps)
    );
    assert_eq!(served.query(10, 2), index.query(10, 2), "loaded == built");

    // Corruption is rejected, never silently misread.
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x01;
    let corrupted = std::env::temp_dir().join("esd_example_corrupt.esdx");
    std::fs::write(&corrupted, &bytes).unwrap();
    match FrozenEsdIndex::load(&corrupted) {
        Err(e) => println!("corrupted copy rejected: {e}"),
        Ok(_) => unreachable!("checksum must catch the flip"),
    }
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&corrupted).ok();
}
