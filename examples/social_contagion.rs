//! Social-contagion seeding — the application motivating the paper's
//! introduction.
//!
//! Ugander et al. showed contagion probability tracks the number of distinct
//! social contexts, not the raw neighbour count. This example seeds a
//! context-threshold cascade from (a) the top structurally diverse edges and
//! (b) the top common-neighbour edges — each edge seeds its endpoints plus
//! their shared circle — and measures how many users and how many
//! communities the cascade reaches. ESD edges hand the cascade footholds in
//! several communities at once; CN edges concentrate the same budget in one.
//!
//! Run with: `cargo run --release --example social_contagion`

use esd::core::baselines;
use esd::core::online::{online_topk, UpperBound};
use esd::datasets::dblp_case::dblp_case;
use esd::graph::{Graph, VertexId};
use std::collections::{HashSet, VecDeque};

/// A threshold cascade where a vertex activates when its *active structural
/// contexts* (components of its neighbourhood induced on active vertices)
/// reach `theta` — the contagion model the structural-diversity literature
/// argues for.
fn cascade(g: &Graph, seeds: &[VertexId], theta: usize) -> HashSet<VertexId> {
    let mut active: HashSet<VertexId> = seeds.iter().copied().collect();
    let mut queue: VecDeque<VertexId> = seeds.iter().copied().collect();
    while let Some(v) = queue.pop_front() {
        for &w in g.neighbors(v) {
            if active.contains(&w) {
                continue;
            }
            let active_nbrs: Vec<VertexId> = g
                .neighbors(w)
                .iter()
                .copied()
                .filter(|x| active.contains(x))
                .collect();
            let contexts = esd::graph::traversal::induced_component_sizes(g, &active_nbrs).len();
            if contexts >= theta {
                active.insert(w);
                queue.push_back(w);
            }
        }
    }
    active
}

/// A campaign seeds a whole collaboration: an edge's endpoints plus their
/// shared circle (the people who already talk to both).
fn seed_set(g: &Graph, edges: &[esd::graph::Edge]) -> Vec<VertexId> {
    let mut seeds = Vec::new();
    for e in edges {
        seeds.push(e.u);
        seeds.push(e.v);
        seeds.extend(g.common_neighbors(e.u, e.v));
    }
    seeds.sort_unstable();
    seeds.dedup();
    seeds
}

fn main() {
    // A community-structured collaboration network with organic bridges.
    let case = dblp_case(8, 50, 5);
    let g = &case.graph;
    println!(
        "social network: {} users, {} ties, 8 communities",
        g.num_vertices(),
        g.num_edges()
    );

    let budget = 2; // campaign budget: 2 edges and their shared circles
    let theta = 2; // activation needs 2 distinct active contexts

    let esd_edges: Vec<_> = online_topk(g, budget, 2, UpperBound::CommonNeighbor)
        .iter()
        .map(|s| s.edge)
        .collect();
    let cn_edges: Vec<_> = baselines::topk_common_neighbors(g, budget)
        .iter()
        .map(|s| s.edge)
        .collect();
    let esd_seeds = seed_set(g, &esd_edges);
    let cn_seeds = seed_set(g, &cn_edges);
    // Equalise budgets: trim the larger seed set to the smaller one's size.
    let budget_users = esd_seeds.len().min(cn_seeds.len());
    let esd_seeds = &esd_seeds[..budget_users];
    let cn_seeds = &cn_seeds[..budget_users];

    let areas_of = |active: &HashSet<VertexId>| {
        let mut areas: Vec<usize> = active
            .iter()
            .map(|&v| case.area_of[v as usize])
            .filter(|&a| a != usize::MAX)
            .collect();
        areas.sort_unstable();
        areas.dedup();
        areas.len()
    };

    let esd_active = cascade(g, esd_seeds, theta);
    let cn_active = cascade(g, cn_seeds, theta);

    println!(
        "\nseeding {budget_users} users around {budget} edges, activation \
         threshold θ = {theta}:"
    );
    println!(
        "  structural-diversity seeds reach {:>4} users across {} communities",
        esd_active.len(),
        areas_of(&esd_active)
    );
    println!(
        "  common-neighbour seeds reach     {:>4} users across {} communities",
        cn_active.len(),
        areas_of(&cn_active)
    );
    println!(
        "\nESD seed edges span multiple communities, giving the cascade \
         several independent contexts to build on; CN seeds concentrate in \
         one dense circle."
    );
}
