//! The Fig 12 case study: what kind of edge does each ranking surface in a
//! collaboration network?
//!
//! * **ESD** — strong cross-community collaborations: many shared
//!   co-authors, split across several research areas.
//! * **CN** — strong single-community ties: many shared co-authors, all in
//!   one area.
//! * **BT** — weak barbell bridges: few shared co-authors, but on many
//!   shortest paths.
//!
//! Run with: `cargo run --release --example collaboration_bridges`

use esd::core::baselines;
use esd::core::score::{component_sizes, naive_topk};
use esd::datasets::dblp_case::dblp_case;

fn main() {
    let case = dblp_case(6, 40, 3);
    let g = &case.graph;
    println!(
        "collaboration network: {} authors, {} co-author edges, 6 areas",
        g.num_vertices(),
        g.num_edges()
    );

    let describe = |u: u32, v: u32| {
        let members = g.common_neighbors(u, v);
        let sizes = component_sizes(g, u, v);
        let mut areas: Vec<usize> = members
            .iter()
            .map(|&w| case.area_of[w as usize])
            .filter(|&a| a != usize::MAX)
            .collect();
        areas.sort_unstable();
        areas.dedup();
        format!(
            "{} shared co-authors, {} context(s) {:?}, spanning {} area(s)",
            members.len(),
            sizes.len(),
            sizes,
            areas.len()
        )
    };

    println!("\ntop-3 by edge structural diversity (τ = 2):");
    for s in naive_topk(g, 3, 2) {
        let planted = if case.bridges.contains(&s.edge) {
            "  [planted bridge]"
        } else {
            ""
        };
        println!("  {}: score {}{planted}", s.edge, s.score);
        println!("      {}", describe(s.edge.u, s.edge.v));
    }

    println!("\ntop-3 by common neighbours (CN):");
    for s in baselines::topk_common_neighbors(g, 3) {
        println!("  {}: {} common neighbours", s.edge, s.score);
        println!("      {}", describe(s.edge.u, s.edge.v));
    }

    println!("\ntop-3 by edge betweenness (BT):");
    for s in baselines::topk_betweenness_sampled(g, 3, 200, 11) {
        let planted = if s.edge == case.barbell {
            "  [planted barbell]"
        } else {
            ""
        };
        println!("  {}: betweenness {:.0}{planted}", s.edge, s.weight);
        println!("      {}", describe(s.edge.u, s.edge.v));
    }

    println!(
        "\nESD edges are strong ties spanning several communities; CN edges \
         sit inside one community; BT edges are weak links between \
         communities (few or no shared co-authors)."
    );
}
