//! Streaming maintenance: keep top-k answers fresh while the graph changes.
//!
//! Replays a stream of edge insertions and deletions against a
//! [`MaintainedIndex`] (Algorithms 4–5) and contrasts the per-update cost
//! with rebuilding the index from scratch after every change.
//!
//! Run with: `cargo run --release --example dynamic_stream`

use esd::core::{EsdIndex, MaintainedIndex};
use esd::graph::generators;
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Instant;

fn main() {
    let g = generators::clique_overlap(1_200, 900, 6, 99);
    println!(
        "start: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );

    let mut live = MaintainedIndex::new(&g);
    let mut rng = StdRng::seed_from_u64(0xD1CE);
    let n = g.num_vertices() as u32;

    let updates = 300;
    let mut inserted = 0;
    let mut deleted = 0;
    let start = Instant::now();
    for step in 0..updates {
        if rng.gen_bool(0.5) {
            let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
            if a != b {
                inserted += usize::from(live.insert_edge(a, b));
            }
        } else {
            // Delete a real edge: pick a random vertex's random neighbour.
            let a = rng.gen_range(0..n);
            let pick = live.graph().neighbors(a).choose(&mut rng).copied();
            if let Some(b) = pick {
                deleted += usize::from(live.remove_edge(a, b));
            }
        }
        if step % 100 == 99 {
            let top = live.query(3, 2);
            println!(
                "  after {:>3} updates: top-3 at τ=2 = {}",
                step + 1,
                top.iter()
                    .map(std::string::ToString::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            );
        }
    }
    let maintain_time = start.elapsed();

    // Cost of the naive alternative: one full rebuild per update.
    let snapshot = live.graph().to_graph();
    let start = Instant::now();
    let rebuilt = EsdIndex::build_fast(&snapshot);
    let one_rebuild = start.elapsed();

    println!(
        "\n{updates} updates ({inserted} inserts, {deleted} deletes) maintained in {maintain_time:?}"
    );
    println!(
        "one full rebuild takes {:?} → rebuilding per update would cost ~{:?}",
        one_rebuild,
        one_rebuild * updates as u32
    );

    // The maintained index answers exactly like a fresh build.
    assert_eq!(live.query(10, 2), rebuilt.query(10, 2));
    assert_eq!(live.query(10, 3), rebuilt.query(10, 3));
    println!("maintained index matches a from-scratch rebuild — consistent.");
}
