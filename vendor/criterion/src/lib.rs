//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the criterion 0.5 API the `esd-bench`
//! benches use: [`Criterion::benchmark_group`], `bench_function`,
//! `bench_with_input`, `sample_size`, [`BenchmarkId`], [`black_box`], and
//! the [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Instead of criterion's statistical sampling it runs each benchmark a
//! small fixed number of iterations and prints the mean wall time — enough
//! to eyeball regressions and, more importantly, to keep `cargo test
//! --benches` compiling and running the bench bodies.

use std::fmt::Display;
use std::time::Instant;

/// Prevents the optimiser from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives the timed iterations of one benchmark.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    mean_nanos: f64,
}

impl Bencher {
    /// Times `f` over the configured iteration count.
    pub fn iter<T>(&mut self, mut f: impl FnMut() -> T) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.mean_nanos = start.elapsed().as_nanos() as f64 / self.iters as f64;
    }
}

/// A named collection of benchmarks sharing configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the stub ignores time limits.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs benchmark `id` in this group.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), f);
        self
    }

    /// Runs benchmark `id` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        run_one(&self.name, &id.into(), |b| f(b, input));
        self
    }

    /// Ends the group (printing nothing extra in the stub).
    pub fn finish(self) {}
}

fn run_one(group: &str, id: &BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
    let mut bencher = Bencher {
        iters: 3,
        mean_nanos: 0.0,
    };
    f(&mut bencher);
    let mean = bencher.mean_nanos;
    let pretty = if mean >= 1e9 {
        format!("{:.3} s", mean / 1e9)
    } else if mean >= 1e6 {
        format!("{:.3} ms", mean / 1e6)
    } else if mean >= 1e3 {
        format!("{:.3} µs", mean / 1e3)
    } else {
        format!("{mean:.0} ns")
    };
    println!("bench {group}/{id}: {pretty}", id = id.id);
}

/// The benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _parent: self,
        }
    }

    /// Runs a stand-alone benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        run_one("", &id.into(), f);
        self
    }

    /// Accepted for API compatibility; the stub ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }
}

/// Declares a group function invoking the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u64;
        group.sample_size(10).bench_function("count", |b| {
            b.iter(|| {
                runs += 1;
            });
        });
        group.bench_with_input(BenchmarkId::new("with", 5), &5u64, |b, &x| {
            b.iter(|| black_box(x * 2));
        });
        group.finish();
        assert!(runs >= 3, "bench body ran {runs} times");
    }
}
