//! Instrumented `std::thread` mirror: spawn/join edges are preemption
//! opportunities for the schedule explorer.

use crate::sched;

/// Mirror of `std::thread::JoinHandle` whose `join` is a yield point.
#[derive(Debug)]
pub struct JoinHandle<T>(std::thread::JoinHandle<T>);

impl<T> JoinHandle<T> {
    /// See `std::thread::JoinHandle::join`.
    pub fn join(self) -> std::thread::Result<T> {
        sched::yield_point();
        self.0.join()
    }
}

/// Mirror of `std::thread::spawn`: the child re-seeds its schedule stream
/// and both sides pass a yield point.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    sched::yield_point();
    JoinHandle(std::thread::spawn(move || {
        sched::yield_point();
        f()
    }))
}

/// Mirror of `std::thread::yield_now`.
pub fn yield_now() {
    std::thread::yield_now();
}
