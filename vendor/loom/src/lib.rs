//! Offline in-workspace stand-in for the `loom` model checker.
//!
//! The build environment has no crates.io access, so — like the `rand`,
//! `proptest`, and `criterion` stand-ins next to it — this crate
//! implements exactly the API subset the repository uses:
//! [`model()`](model::model), `thread::{spawn, yield_now}`,
//! `sync::{Arc, Mutex, RwLock, Condvar}`, and `sync::atomic::*`.
//!
//! ## Documented deviations from the real crate
//!
//! * **Bounded randomized exploration, not exhaustive DPOR.** Real loom
//!   runs model threads under a cooperative scheduler and enumerates every
//!   distinguishable interleaving. This stand-in runs the model closure
//!   [`model::iterations`] times on *real* OS threads, injecting seeded
//!   pseudo-random `yield_now` calls at every synchronization operation
//!   (lock acquisition, atomic access, spawn/join edges). That is the
//!   PCT-style "randomized scheduling" family: probabilistically thorough
//!   rather than exhaustive. A model that fails under this crate is
//!   genuinely broken; a model that passes has survived a few thousand
//!   perturbed schedules, not a proof.
//! * **No causality tracking.** `sync::Arc` is `std::sync::Arc`, and the
//!   atomics permit every `Ordering` without modelling weak memory: on the
//!   x86_64 CI hosts the hardware provides TSO, so reorderings that only a
//!   weaker architecture could exhibit are not explored. The nightly
//!   ThreadSanitizer CI job covers the data-race half of that gap.
//! * **Const-friendly.** Unlike real loom, every wrapper type here has a
//!   `const fn new`, so const-initialised registries (the esd-telemetry
//!   pattern) model-check without restructuring.
//!
//! Schedules are seeded per iteration: `LOOM_SEED` pins the base seed and
//! `LOOM_ITERS` the iteration count, so a failing schedule can be re-run.

pub mod hint;
pub mod model;
pub mod sync;
pub mod thread;

pub use model::model;

pub(crate) mod sched {
    use std::cell::Cell;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Bumped once per model iteration; folded into every thread's seed so
    /// each iteration explores a different schedule.
    pub(crate) static ITERATION: AtomicU64 = AtomicU64::new(0);

    pub(crate) fn splitmix64(x: u64) -> u64 {
        let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    thread_local! {
        static RNG: Cell<u64> = const { Cell::new(0) };
    }

    /// A preemption opportunity. Called before every modelled
    /// synchronization operation; yields the OS scheduler with a seeded
    /// pseudo-random decision so successive iterations interleave the
    /// model threads differently.
    pub(crate) fn yield_point() {
        let draw = RNG.with(|c| {
            let mut s = c.get();
            if s == 0 {
                // Lazily seed from the iteration counter and this thread's
                // identity so every (iteration, thread) pair gets its own
                // deterministic-ish stream.
                let tid = {
                    use std::hash::{Hash, Hasher};
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    std::thread::current().id().hash(&mut h);
                    h.finish()
                };
                s = splitmix64(ITERATION.load(Ordering::Relaxed) ^ tid | 1);
            }
            s = splitmix64(s);
            c.set(s);
            s
        });
        // ~3/8 of sync operations yield; a sliver of them back off harder
        // so sleeping-reader interleavings (condvar waits) get explored.
        match draw % 16 {
            0..=4 => std::thread::yield_now(),
            5 => std::thread::sleep(std::time::Duration::from_nanos(1)),
            _ => {}
        }
    }

    /// Re-seeds the calling thread for a fresh iteration.
    pub(crate) fn reseed(seed: u64) {
        RNG.with(|c| c.set(seed | 1));
    }
}
