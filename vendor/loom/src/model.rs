//! The model runner: repeated execution under perturbed schedules.

use crate::sched;
use std::sync::atomic::Ordering;

/// Default number of schedules explored per [`model`] call. Kept modest —
/// the models run under `cargo test` on every CI push; `LOOM_ITERS`
/// raises it for soak runs.
const DEFAULT_ITERS: u64 = 96;

fn env_u64(key: &str, default: u64) -> u64 {
    std::env::var(key)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// Number of iterations a [`model`] call will run (`LOOM_ITERS` override).
pub fn iterations() -> u64 {
    env_u64("LOOM_ITERS", DEFAULT_ITERS).max(1)
}

/// Runs `f` under the exploration harness: `iterations()` times, each with
/// a fresh schedule seed (base seed from `LOOM_SEED`, default 0). An
/// assertion failure inside the model aborts the run on its first failing
/// schedule, reporting the iteration so `LOOM_SEED`/`LOOM_ITERS` can
/// reproduce it.
///
/// Real loom requires `f: Fn() + Sync + Send + 'static`; this stand-in
/// relaxes nothing there so call sites stay source-compatible.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let base = env_u64("LOOM_SEED", 0);
    let iters = iterations();
    for i in 0..iters {
        let seed = sched::splitmix64(base ^ i);
        sched::ITERATION.store(seed, Ordering::Relaxed);
        sched::reseed(seed);
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(&f));
        if let Err(panic) = outcome {
            eprintln!(
                "loom (stand-in): model failed on iteration {i}/{iters} \
                 (LOOM_SEED={base}); re-run with LOOM_SEED={base} LOOM_ITERS={iters}",
            );
            std::panic::resume_unwind(panic);
        }
    }
}
