//! Mirror of `loom::hint`.

/// Spin-loop hint that is also a preemption opportunity.
pub fn spin_loop() {
    crate::sched::yield_point();
    std::hint::spin_loop();
}
