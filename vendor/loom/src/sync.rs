//! Instrumented `std::sync` mirror: every acquisition and atomic access
//! passes a yield point so the explorer can perturb the interleaving.
//!
//! Guard types are re-exported from `std` (the wrappers return real std
//! guards), so poisoning semantics are byte-for-byte std's.

use crate::sched::yield_point;

pub use std::sync::{
    Arc, LockResult, MutexGuard, PoisonError, RwLockReadGuard, RwLockWriteGuard, TryLockError,
    TryLockResult, WaitTimeoutResult, Weak,
};

/// Mirror of `std::sync::Mutex` with yield points around acquisition.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// See `std::sync::Mutex::new` (const, unlike real loom's).
    pub const fn new(t: T) -> Self {
        Self(std::sync::Mutex::new(t))
    }

    /// See `std::sync::Mutex::lock`.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        yield_point();
        let guard = self.0.lock();
        yield_point();
        guard
    }

    /// See `std::sync::Mutex::try_lock`.
    pub fn try_lock(&self) -> TryLockResult<MutexGuard<'_, T>> {
        yield_point();
        self.0.try_lock()
    }

    /// See `std::sync::Mutex::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }

    /// See `std::sync::Mutex::get_mut`.
    pub fn get_mut(&mut self) -> LockResult<&mut T> {
        self.0.get_mut()
    }
}

/// Mirror of `std::sync::RwLock` with yield points around acquisition.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// See `std::sync::RwLock::new` (const, unlike real loom's).
    pub const fn new(t: T) -> Self {
        Self(std::sync::RwLock::new(t))
    }

    /// See `std::sync::RwLock::read`.
    pub fn read(&self) -> LockResult<RwLockReadGuard<'_, T>> {
        yield_point();
        let guard = self.0.read();
        yield_point();
        guard
    }

    /// See `std::sync::RwLock::write`.
    pub fn write(&self) -> LockResult<RwLockWriteGuard<'_, T>> {
        yield_point();
        let guard = self.0.write();
        yield_point();
        guard
    }

    /// See `std::sync::RwLock::into_inner`.
    pub fn into_inner(self) -> LockResult<T> {
        self.0.into_inner()
    }
}

/// Mirror of `std::sync::Condvar`; waits and wakes are yield points.
#[derive(Debug, Default)]
pub struct Condvar(std::sync::Condvar);

impl Condvar {
    /// See `std::sync::Condvar::new` (const).
    pub const fn new() -> Self {
        Self(std::sync::Condvar::new())
    }

    /// See `std::sync::Condvar::wait`.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        yield_point();
        self.0.wait(guard)
    }

    /// See `std::sync::Condvar::wait_timeout`.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: std::time::Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        yield_point();
        self.0.wait_timeout(guard, dur)
    }

    /// See `std::sync::Condvar::notify_one`.
    pub fn notify_one(&self) {
        yield_point();
        self.0.notify_one();
    }

    /// See `std::sync::Condvar::notify_all`.
    pub fn notify_all(&self) {
        yield_point();
        self.0.notify_all();
    }
}

pub mod atomic {
    //! Instrumented `std::sync::atomic` mirror.

    use crate::sched::yield_point;

    pub use std::sync::atomic::{fence, Ordering};

    macro_rules! atomic_mirror {
        ($(#[$meta:meta])* $name:ident, $std:ty, $prim:ty) => {
            $(#[$meta])*
            #[derive(Debug, Default)]
            pub struct $name($std);

            impl $name {
                /// See the `std::sync::atomic` equivalent (const new).
                pub const fn new(v: $prim) -> Self {
                    Self(<$std>::new(v))
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn load(&self, order: Ordering) -> $prim {
                    yield_point();
                    self.0.load(order)
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn store(&self, val: $prim, order: Ordering) {
                    yield_point();
                    self.0.store(val, order);
                    yield_point();
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn swap(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.0.swap(val, order)
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.0.compare_exchange(current, new, success, failure)
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    yield_point();
                    self.0.compare_exchange_weak(current, new, success, failure)
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $prim:ty) => {
            impl $name {
                /// See the `std::sync::atomic` equivalent.
                pub fn fetch_add(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    let prev = self.0.fetch_add(val, order);
                    yield_point();
                    prev
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn fetch_sub(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.0.fetch_sub(val, order)
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn fetch_max(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    let prev = self.0.fetch_max(val, order);
                    yield_point();
                    prev
                }

                /// See the `std::sync::atomic` equivalent.
                pub fn fetch_min(&self, val: $prim, order: Ordering) -> $prim {
                    yield_point();
                    self.0.fetch_min(val, order)
                }
            }
        };
    }

    atomic_mirror!(AtomicBool, std::sync::atomic::AtomicBool, bool);
    atomic_mirror!(AtomicU32, std::sync::atomic::AtomicU32, u32);
    atomic_mirror!(AtomicU64, std::sync::atomic::AtomicU64, u64);
    atomic_mirror!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);
    atomic_int_ops!(AtomicU32, u32);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicUsize, usize);

    impl AtomicBool {
        /// See the `std::sync::atomic` equivalent.
        pub fn fetch_or(&self, val: bool, order: Ordering) -> bool {
            yield_point();
            self.0.fetch_or(val, order)
        }

        /// See the `std::sync::atomic` equivalent.
        pub fn fetch_and(&self, val: bool, order: Ordering) -> bool {
            yield_point();
            self.0.fetch_and(val, order)
        }
    }
}

#[cfg(test)]
mod tests {
    // The stand-in's own sanity checks run in ordinary (non-`--cfg loom`)
    // builds so `cargo test --workspace` exercises them.
    use super::atomic::{AtomicU64, Ordering};
    use super::{Arc, Condvar, Mutex, RwLock};

    #[test]
    fn model_runs_and_counters_sum() {
        crate::model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let n = Arc::clone(&n);
                    crate::thread::spawn(move || {
                        for _ in 0..10 {
                            n.fetch_add(1, Ordering::Relaxed);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(n.load(Ordering::Relaxed), 20);
        });
    }

    #[test]
    fn mutex_rwlock_condvar_mirror_std() {
        let m = Mutex::new(1);
        *m.lock().unwrap() += 1;
        assert_eq!(*m.lock().unwrap(), 2);
        let rw = RwLock::new(3);
        assert_eq!(*rw.read().unwrap(), 3);
        *rw.write().unwrap() = 4;
        assert_eq!(rw.into_inner().unwrap(), 4);
        let cv = Condvar::new();
        let g = m.lock().unwrap();
        let (g, timeout) = cv
            .wait_timeout(g, std::time::Duration::from_millis(1))
            .unwrap();
        assert!(timeout.timed_out());
        drop(g);
        cv.notify_all();
    }

    #[test]
    fn const_init_statics_work() {
        static N: AtomicU64 = AtomicU64::new(7);
        static M: Mutex<u64> = Mutex::new(9);
        assert_eq!(N.load(Ordering::Relaxed), 7);
        assert_eq!(*M.lock().unwrap(), 9);
    }
}
