//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the small slice of the rand 0.8 API the repository
//! actually uses: [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen_bool`],
//! [`Rng::gen`], and [`prelude::SliceRandom::shuffle`].
//!
//! The generator is a deterministic splitmix64 stream: statistically solid
//! for test-data generation and fully reproducible from the seed, which is
//! the only property the callers (graph generators, surrogate datasets,
//! randomized tests) rely on. It is **not** the same stream as the real
//! `StdRng`, so regenerated datasets differ byte-for-byte from ones made
//! with upstream rand — acceptable because nothing in the repo persists or
//! compares generated data across library versions.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Rngs constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from `seed`; equal seeds give equal streams.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generator types.
pub mod rngs {
    /// The standard deterministic generator (splitmix64 stream).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            Self { state: seed }
        }
    }

    impl super::RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

/// Types producible by [`Rng::gen`] (the rand `Standard` distribution).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

/// Types with a uniform sampler over a bounded interval (rand's
/// `SampleUniform`).
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)` when `inclusive` is false, `[lo, hi]`
    /// when true. The range is known non-empty.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

// `$via` widens to 64 bits with the correct extension (zero for unsigned,
// sign for signed) so span arithmetic is exact modulo 2^64.
macro_rules! impl_uniform_int {
    ($($t:ty => $via:ty),* $(,)?) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as $via as u64)
                    .wrapping_sub(lo as $via as u64)
                    .wrapping_add(inclusive as u64);
                if span == 0 {
                    // Full 64-bit domain.
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64,
);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _incl: bool) -> Self {
        let unit = f64::sample_standard(rng);
        lo + unit * (hi - lo)
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

// Blanket impls over `SampleUniform`, matching upstream rand's shape: a
// single generic impl per range kind lets integer-literal ranges unify with
// the caller's expected type instead of falling back to `i32`.
impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// The user-facing convenience methods (rand's `Rng` trait).
pub trait Rng: RngCore {
    /// A uniform value from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be a probability");
        f64::sample_standard(self) < p
    }

    /// A value from the type's standard distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Random helpers on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Uniform random permutation in place (Fisher–Yates).
    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

    /// A uniformly chosen element, or `None` if empty.
    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (rng.next_u64() % (i as u64 + 1)) as usize;
            self.swap(i, j);
        }
    }

    fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(rng.next_u64() % self.len() as u64) as usize])
        }
    }
}

/// The conventional glob import, mirroring `rand::prelude`.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SampleRange, SeedableRng, SliceRandom};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, (0..8).map(|_| c.next_u64()).collect::<Vec<_>>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: u32 = rng.gen_range(3..17);
            assert!((3..17).contains(&x));
            let y: usize = rng.gen_range(2..=5);
            assert!((2..=5).contains(&y));
            let s: i32 = rng.gen_range(-10..10);
            assert!((-10..10).contains(&s));
            let t: i64 = rng.gen_range(-3..=3);
            assert!((-3..=3).contains(&t));
            let f: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit: f64 = rng.gen();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        assert!(Vec::<u32>::new().choose(&mut rng).is_none());
    }
}
