//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the subset of the proptest API the repository uses:
//! the [`proptest!`] macro (with optional `#![proptest_config(..)]`),
//! [`prop_assert!`] / [`prop_assert_eq!`], [`any`], integer and float range
//! strategies, tuple strategies, `prop::collection::{vec, btree_set}`, and
//! [`Strategy::prop_map`].
//!
//! Semantics differ from upstream in two deliberate ways:
//!
//! * **Deterministic generation** — cases are derived from a fixed per-test
//!   seed (FNV of the test name), so every run explores the same inputs.
//!   There is no persistence file; `proptest-regressions` files are ignored.
//! * **No shrinking** — a failing case panics with the case number and the
//!   assertion message. Re-running reproduces it exactly, which replaces
//!   shrinking well enough for CI purposes.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Deterministic per-test random stream (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// A stream for case number `case` of the test named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self {
            state: h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
        }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A failed `prop_assert*` inside a proptest body.
#[derive(Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Wraps an assertion message.
    pub fn fail(msg: impl Into<String>) -> Self {
        Self(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-test configuration (`#![proptest_config(..)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of test-case values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start + rng.below(span) as $t
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return lo.wrapping_add(rng.next_u64() as $t);
                }
                lo + rng.below(span) as $t
            }
        }
    )*};
}

impl_int_strategy!(u8, u16, u32, u64, usize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

/// Types with a default "anything goes" strategy, used by [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy for any value of `T` (`any::<u8>()` etc.).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+);)*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A 0, B 1);
    (A 0, B 1, C 2);
    (A 0, B 1, C 2, D 3);
}

/// Collection strategies (`prop::collection::{vec, btree_set}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy for `Vec`s with lengths drawn from `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `Vec` of `size` elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet`s with up to `size` insertion attempts.
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// A `BTreeSet` built from `size` draws of `element` (duplicates
    /// collapse, so the set may be smaller).
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        assert!(size.start < size.end, "empty size range");
        BTreeSetStrategy { element, size }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let attempts = self.size.start + rng.below(span) as usize;
            (0..attempts).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The conventional glob import, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };

    /// Mirrors `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Defines deterministic property tests.
///
/// Supports the common upstream forms:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(16))]
///     /// Doc comments and attributes pass through.
///     #[test]
///     fn my_property(x in 0u32..100, v in prop::collection::vec(any::<u8>(), 0..32)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr) $($(#[$meta:meta])* fn $name:ident ($($arg:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                for case in 0..config.cases {
                    let mut __proptest_rng =
                        $crate::TestRng::for_case(concat!(module_path!(), "::", stringify!($name)), case);
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut __proptest_rng);)+
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("proptest {} case {}/{} failed: {}", stringify!($name), case, config.cases, e);
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l == r, $($fmt)+);
            }
        }
    };
}

/// `assert_ne!` that reports through proptest's error channel.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(l != r, "assertion failed: {:?} == {:?}", l, r);
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn generation_is_deterministic() {
        let strat = prop::collection::vec(0u32..100, 1..20);
        let a = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 3));
        let b = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 3));
        let c = Strategy::generate(&strat, &mut crate::TestRng::for_case("t", 4));
        assert_eq!(a, b);
        assert!(a != c || a.is_empty());
    }

    proptest! {
        #[test]
        fn ranges_and_tuples(x in 3u32..17, (a, b) in (0u8..4, 10usize..=12), f in 0.25f64..0.75) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(a < 4);
            prop_assert!((10..=12).contains(&b));
            prop_assert!((0.25..0.75).contains(&f));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn collections_respect_bounds(
            v in prop::collection::vec(any::<bool>(), 2..6),
            s in prop::collection::btree_set(0u32..1000, 0..50),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(s.len() < 50);
        }
    }

    proptest! {
        #[test]
        fn prop_map_applies(doubled in (0u32..10).prop_map(|x| x * 2)) {
            prop_assert!(doubled % 2 == 0);
            prop_assert!(doubled < 20);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails case 0")]
    fn failures_panic_with_case_number() {
        proptest! {
            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
