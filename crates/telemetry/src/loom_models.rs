//! Loom models for the wait-free registry.
//!
//! Compiled only under `RUSTFLAGS="--cfg loom"` with the `enabled`
//! feature (the registry statics do not otherwise exist). The registry is
//! process-global and loom re-runs each model body many times, so every
//! assertion is windowed through [`Snapshot::delta_since`] rather than
//! absolute counter values.

use crate::{add, snapshot, span, Metric, Stage};

#[test]
fn counter_deltas_from_concurrent_writers_sum_exactly() {
    loom::model(|| {
        let before = snapshot();
        let t1 = loom::thread::spawn(|| {
            for _ in 0..3 {
                add(Metric::OnlineHeapPops, 2);
            }
        });
        let t2 = loom::thread::spawn(|| {
            for _ in 0..3 {
                add(Metric::OnlineHeapPops, 5);
            }
        });
        t1.join().expect("writer 1");
        t2.join().expect("writer 2");
        let delta = snapshot().delta_since(&before);
        // 3×2 + 3×5: no add may be lost or double-counted under any
        // interleaving of the two writers.
        assert_eq!(delta.counter("online.heap_pops"), 21);
    });
}

#[test]
fn span_records_from_concurrent_threads_all_land() {
    loom::model(|| {
        let before = snapshot();
        let threads: Vec<_> = (0..2)
            .map(|_| {
                loom::thread::spawn(|| {
                    drop(span(Stage::ParEnumerate));
                    drop(span(Stage::ParEnumerate));
                })
            })
            .collect();
        for t in threads {
            t.join().expect("span thread");
        }
        let delta = snapshot().delta_since(&before);
        assert_eq!(
            delta
                .stage("pbuild.enumerate")
                .expect("stage recorded")
                .count,
            4
        );
    });
}
