//! The crate's only doorway to `std::sync` — swap-in point for `loom`.
//!
//! Mirrors `esd-serve`'s `sync` facade: every atomic, lock, and clock the
//! registry touches is imported from here, never from `std` directly (the
//! `sync-facade` pass of `cargo xtask analyze` enforces this). Normal
//! builds re-export `std`; under `RUSTFLAGS="--cfg loom"` the same paths
//! resolve to the vendored `loom` stand-in, whose scheduler injects yields
//! around every synchronisation operation so the model suites in
//! `loom_models.rs` can explore adversarial interleavings.
//!
//! ## Lock results
//!
//! [`Unpoison`] is the crate's sanctioned way to consume a `LockResult`:
//! poisoning is recovered, not propagated, because no code path in this
//! workspace panics while holding a lock (panics are contained at thread
//! boundaries by `esd-serve`). The `lock-unwrap` analyze pass bans
//! `.unwrap()` / `.expect()` on lock results in favour of this.

#![allow(
    dead_code,
    unused_imports,
    reason = "the facade mirrors one std surface for all build shapes; \
              disarmed feature sets use only a slice of it"
)]

#[cfg(loom)]
pub(crate) use loom::sync::Mutex;
#[cfg(not(loom))]
pub(crate) use std::sync::Mutex;

/// Atomics, from `std` or `loom` depending on the build.
pub(crate) mod atomic {
    #[cfg(loom)]
    pub(crate) use loom::sync::atomic::{AtomicU64, Ordering};
    #[cfg(not(loom))]
    pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
}

/// Thread utilities whose timing matters to the model checker.
pub(crate) mod thread {
    /// Like `std::thread::sleep`; under loom it is a yield point instead
    /// (the model clock is logical, not wall time).
    #[cfg(not(loom))]
    pub(crate) use std::thread::sleep;

    #[cfg(loom)]
    pub(crate) fn sleep(_d: std::time::Duration) {
        loom::thread::yield_now();
    }
}

/// Clock sources. `Instant` stays the std type even under loom: spans
/// measure wall time, which the model checker does not virtualise.
pub(crate) mod time {
    pub(crate) use std::time::Instant;
}

/// Recovers the guard from a `LockResult`, treating poisoning as benign.
pub(crate) trait Unpoison {
    /// The guard type inside the `LockResult`.
    type Inner;
    /// Returns the guard, poisoned or not.
    fn unpoison(self) -> Self::Inner;
}

impl<G> Unpoison for Result<G, std::sync::PoisonError<G>> {
    type Inner = G;

    fn unpoison(self) -> G {
        self.unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
