//! Scoped stage spans and monotonic kernel counters for the esd workspace.
//!
//! The paper's evaluation is entirely about *where time goes* — 4-clique
//! enumeration vs union–find vs treap maintenance, sequential vs parallel
//! scaling. This crate gives every hot path a way to report that breakdown
//! without perturbing it:
//!
//! * [`span`] opens a scoped timer for a [`Stage`]; the returned guard
//!   records wall time into the process-global registry when dropped.
//! * [`add`] bumps a monotonic [`Metric`] counter. Hot loops count into a
//!   local and call `add` once per region, so the kernel itself never
//!   touches an atomic per event.
//! * [`snapshot`] reads the registry without stopping writers;
//!   [`Snapshot::delta_since`] turns two snapshots into a window.
//!
//! Both catalogues are **fixed enums**: every stage and counter in the
//! workspace is declared here, indexed into const-initialised static atomic
//! arrays. Recording is a handful of relaxed atomic adds — the same
//! wait-free design as `esd-serve`'s metrics registry — so instrumentation
//! is safe on paths that are themselves being measured.
//!
//! ## Feature gating
//!
//! Everything is behind the `enabled` cargo feature. Without it (the
//! default for every library crate) [`SpanGuard`] is a zero-sized type with
//! an empty `Drop`, [`add`] is an empty inline function, and the registry
//! statics are not even compiled — instrumented code optimises to exactly
//! what it was before instrumentation. The `cfg` is resolved *inside this
//! crate's functions*, never in caller-side macros, so consumers cannot
//! accidentally evaluate the feature test against their own feature set.
//!
//! The [`json`] module is a dependency-free JSON model (emit + parse) used
//! by the bench report and the `telemetry` protocol command; the build
//! environment is offline, so serde is not an option.

pub mod json;
#[cfg(all(loom, test, feature = "enabled"))]
mod loom_models;
pub(crate) mod sync;

use json::Json;

#[cfg(feature = "enabled")]
use crate::sync::atomic::Ordering;
#[cfg(feature = "enabled")]
use crate::sync::time::Instant;

/// Schema identifier stamped into [`Snapshot::to_json`] output.
pub const SCHEMA: &str = "esd-telemetry/v1";

macro_rules! catalogue {
    (
        $(#[$meta:meta])*
        $name:ident {
            $($(#[$vmeta:meta])* $variant:ident => $label:literal,)+
        }
    ) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum $name {
            $($(#[$vmeta])* $variant,)+
        }

        impl $name {
            /// Every member of the catalogue, in declaration order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of catalogue entries (the registry array length).
            pub const COUNT: usize = Self::ALL.len();

            /// The stable dotted name used in reports and JSON output.
            #[must_use]
            pub const fn name(self) -> &'static str {
                match self { $($name::$variant => $label,)+ }
            }

            /// Looks up a catalogue member by its stable dotted name —
            /// the inverse of [`Self::name`]. `None` for unknown names.
            #[must_use]
            pub fn from_name(name: &str) -> Option<$name> {
                Self::ALL.iter().copied().find(|m| m.name() == name)
            }

            #[cfg(feature = "enabled")]
            const fn index(self) -> usize {
                self as usize
            }
        }
    };
}

catalogue! {
    /// The span taxonomy: one entry per instrumented stage.
    ///
    /// Names are dotted `area.stage` strings and are part of the
    /// `esd-bench/v1` schema — renaming one is a schema change. The full
    /// taxonomy, with the paper figure each stage speaks to, is catalogued
    /// in `docs/observability.md`.
    Stage {
        /// CSR construction inside `GraphBuilder::build`.
        GraphCsr => "graph.csr",
        /// Ordering + DAG orientation (`OrientedGraph::by_degree` /
        /// `by_degeneracy`).
        GraphOrient => "graph.orient",
        /// Per-edge BFS over ego-networks (`EsdIndex::build_basic`).
        BuildBfs => "build.bfs",
        /// Common-neighbourhood materialisation (sequential build).
        BuildNeighborhoods => "build.neighborhoods",
        /// 4-clique enumeration + union–find (sequential build).
        BuildEnumerate => "build.enumerate",
        /// Component extraction from the DSU arena (sequential build).
        BuildExtract => "build.extract",
        /// `H(c)` list filling (sequential build).
        BuildFill => "build.fill",
        /// Phase A of the parallel build: sharded neighbourhoods.
        ParNeighborhoods => "pbuild.neighborhoods",
        /// Phase B enumerate side: workers binning DSU ops by shard.
        ParEnumerate => "pbuild.enumerate",
        /// Phase B apply side: per-shard DSU op application.
        ParApply => "pbuild.apply",
        /// Phase C: per-shard component extraction.
        ParExtract => "pbuild.extract",
        /// Phase D: parallel `H(c)` list filling.
        ParFill => "pbuild.fill",
        /// One `MaintainedIndex::insert_edge` call, end to end.
        MaintainInsert => "maintain.insert",
        /// One `MaintainedIndex::remove_edge` call, end to end.
        MaintainRemove => "maintain.remove",
        /// One `MaintainedIndex::apply_batch` call, end to end.
        MaintainBatch => "maintain.batch",
        /// Pipeline phase 1: sequential planning (blast radii + conflict
        /// groups) inside `apply_batch_parallel`.
        PbatchPlan => "pbatch.plan",
        /// Pipeline phase 2: parallel per-edge forest recomputation.
        PbatchRecompute => "pbatch.recompute",
        /// Pipeline phase 3: sequential retract/install/restore commit.
        PbatchCommit => "pbatch.commit",
        /// One dequeue-twice online top-k search.
        OnlineTopk => "online.topk",
        /// One index top-k query (`EsdIndex` or `MaintainedIndex`).
        QueryTopk => "query.topk",
        /// Serve engine: one query executed against a snapshot.
        ServeQuery => "serve.query",
        /// Serve engine: one snapshot publication (epoch advance).
        ServePublish => "serve.publish",
        /// Sharded serve: one scatter-gather query, fan-out through final
        /// k-way merge (S > 1 only; single-engine queries never open it).
        ShardGather => "shard.gather",
        /// Durability: one WAL record appended (the durable commit path).
        WalAppend => "wal.append",
        /// Durability: one WAL fsync (a group commit covering every record
        /// appended since the previous one).
        WalFsync => "wal.fsync",
        /// Durability: one recovery replay (checkpoint load + WAL replay).
        WalReplay => "wal.replay",
        /// Durability: one checkpoint written (full or delta).
        CkptWrite => "ckpt.write",
        /// Query-family layer: one `FamilySuite::apply` window (blast-radius
        /// planning plus per-edge profile recompute for every family).
        FamilyApply => "family.apply",
        /// Query-family layer: one `FamilySuite::query` top-k scan.
        FamilyQuery => "family.query",
    }
}

catalogue! {
    /// The counter catalogue: monotonic event counts from the kernels.
    ///
    /// Each counter has exactly one owning call site (listed per entry), so
    /// totals are never double-counted; tests in `tests/telemetry_counters.rs`
    /// pin every counter to independently recomputed ground truth.
    Metric {
        /// Adaptive intersections resolved to the two-pointer merge kernel
        /// (recorded by the `esd-graph::intersect` dispatcher only; the
        /// three `intersect.*` counters sum to the total dispatch count).
        IntersectMerge => "intersect.merge",
        /// Adaptive intersections resolved to the galloping kernel
        /// (skewed length ratios — low-degree vertex against a hub).
        IntersectGallop => "intersect.gallop",
        /// Adaptive intersections resolved to the blocked-bitset SWAR
        /// kernel (dense, clustered neighbourhoods).
        IntersectBitset => "intersect.bitset",
        /// 4-cliques emitted by `FourCliqueEnumerator` (counted in
        /// `esd-graph::cliques` only, so sequential and parallel builds —
        /// and `count_four_cliques` itself — share one definition).
        CliquesEnumerated => "cliques.enumerated",
        /// Union–find operations performed by the sequential index build
        /// (6 per 4-clique).
        BuildUnionOps => "build.union_ops",
        /// Σ|N(u) ∩ N(v)| over all edges, as materialised by the build.
        BuildNbrTotal => "build.nbr_total",
        /// Union ops applied by parallel-build shard workers (phase B).
        ParOpsApplied => "pbuild.ops_applied",
        /// Union ops performed by dynamic maintenance (ego-net rebuilds
        /// and incremental insert paths).
        MaintainUnionOps => "maintain.union_ops",
        /// `ScoreTreap` insertions performed while restoring entries.
        TreapInserts => "maintain.treap_inserts",
        /// `ScoreTreap` removals performed while retracting entries.
        TreapRemoves => "maintain.treap_removes",
        /// Edges whose scores were recomputed by maintenance updates.
        MaintainAffected => "maintain.affected_edges",
        /// Conflict-free groups formed by the pipeline planner.
        PbatchGroups => "pbatch.groups",
        /// Distinct edges whose forests the pipeline recomputed (phase 2).
        PbatchRecomputedEdges => "pbatch.recomputed_edges",
        /// Union ops performed by pipeline recompute workers (phase 2).
        PbatchUnionOps => "pbatch.union_ops",
        /// Exact ego-net evaluations by the online search (paper Fig 5's
        /// cost driver).
        OnlineExactEvals => "online.exact_evals",
        /// Priority-queue pops by the online search.
        OnlineHeapPops => "online.heap_pops",
        /// Edges enqueued by the online search (bound-order seeding).
        OnlineEnqueued => "online.enqueued",
        /// Faults injected by the `esd-serve` fault layer (non-zero only
        /// in `fault-injection` builds running an armed plan).
        ServeFaultsInjected => "serve.faults_injected",
        /// Panics caught and contained by the serve worker pool / writer
        /// (the thread keeps serving instead of poisoning the engine).
        ServeWorkerRestarts => "serve.worker_restarts",
        /// Client-side retries performed by the serve `RetryPolicy`
        /// wrappers (`execute_with_retry` / `submit_with_retry`).
        ServeRetries => "serve.retries",
        /// Queries answered from a retained cached result under overload
        /// shedding instead of being rejected with `QueueFull`.
        ServeShed => "serve.shed",
        /// Per-shard batch submissions routed by the sharded write fan-out
        /// (S per accepted batch; 0 while serving a single engine).
        ShardRoute => "shard.route",
        /// Per-shard queries dispatched by scatter-gather top-k (the round-1
        /// fan-out plus any adaptive refetches).
        ShardFanout => "shard.fanout",
        /// Candidate results entering the scatter-gather k-way merge (the
        /// sum of per-shard list lengths at the final merge).
        ShardMerge => "shard.merge",
        /// WAL records appended by the durable commit path.
        WalRecords => "wal.records",
        /// WAL bytes appended (frame bytes, including headers).
        WalBytes => "wal.bytes",
        /// WAL group-commit fsyncs performed.
        WalFsyncs => "wal.fsyncs",
        /// WAL transactional truncations (a failed window's speculative
        /// record physically removed so it can never be replayed).
        WalTruncations => "wal.truncations",
        /// WAL records replayed during crash recovery.
        WalReplayedRecords => "wal.replayed_records",
        /// Full checkpoints written.
        CkptFull => "ckpt.full",
        /// Delta checkpoints written.
        CkptDelta => "ckpt.delta",
        /// Checkpoint attempts that failed (counted and retried at the
        /// next interval; never surfaced to the acked client).
        CkptFailures => "ckpt.failures",
        /// Edges whose per-family score profiles `FamilySuite::apply`
        /// recomputed (owned, still-present edges in the blast radius).
        FamilyRecomputedEdges => "family.recomputed_edges",
        /// Top-k scans served by `FamilySuite::query` (non-component
        /// families only; component queries are counted by `query.topk`).
        FamilyQueries => "family.queries",
    }
}

#[cfg(feature = "enabled")]
mod reg {
    use super::{Metric, Stage};
    use crate::sync::atomic::{AtomicU64, Ordering};

    pub(crate) struct StageCell {
        pub(crate) total_ns: AtomicU64,
        pub(crate) count: AtomicU64,
        pub(crate) max_ns: AtomicU64,
    }

    impl StageCell {
        const fn new() -> Self {
            Self {
                total_ns: AtomicU64::new(0),
                count: AtomicU64::new(0),
                max_ns: AtomicU64::new(0),
            }
        }

        pub(crate) fn record(&self, ns: u64) {
            self.total_ns.fetch_add(ns, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.max_ns.fetch_max(ns, Ordering::Relaxed);
        }

        pub(crate) fn reset(&self) {
            self.total_ns.store(0, Ordering::Relaxed);
            self.count.store(0, Ordering::Relaxed);
            self.max_ns.store(0, Ordering::Relaxed);
        }
    }

    #[allow(
        clippy::declare_interior_mutable_const,
        reason = "each `[C; N]` repeat of this const is a fresh zeroed cell, \
                  which is exactly how a const-initialised static atomic \
                  array is built without const fn in array repeat position"
    )]
    const ZERO_CELL: StageCell = StageCell::new();
    #[allow(
        clippy::declare_interior_mutable_const,
        reason = "each `[C; N]` repeat of this const is a fresh zeroed \
                  counter, never a shared one"
    )]
    const ZERO_CTR: AtomicU64 = AtomicU64::new(0);

    pub(crate) static STAGES: [StageCell; Stage::COUNT] = [ZERO_CELL; Stage::COUNT];
    pub(crate) static COUNTERS: [AtomicU64; Metric::COUNT] = [ZERO_CTR; Metric::COUNT];
}

/// RAII guard returned by [`span`]: records the elapsed wall time for its
/// stage into the global registry when dropped.
///
/// With the `enabled` feature off this is a zero-sized type with an empty
/// `Drop` — the optimiser erases it entirely.
#[derive(Debug)]
#[must_use = "a span records its elapsed time when dropped; binding it to `_` drops it immediately"]
pub struct SpanGuard {
    #[cfg(feature = "enabled")]
    stage: Stage,
    #[cfg(feature = "enabled")]
    start: Instant,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        #[cfg(feature = "enabled")]
        {
            let ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            reg::STAGES[self.stage.index()].record(ns);
        }
    }
}

/// Opens a scoped timer for `stage`. Bind the guard to a named variable
/// (`let _span = …`) so it lives to the end of the region being measured.
#[inline]
pub fn span(stage: Stage) -> SpanGuard {
    #[cfg(not(feature = "enabled"))]
    let _ = stage;
    SpanGuard {
        #[cfg(feature = "enabled")]
        stage,
        #[cfg(feature = "enabled")]
        start: Instant::now(),
    }
}

/// Adds `n` to a counter. Call once per region with a locally accumulated
/// count, not once per event.
#[inline]
pub fn add(metric: Metric, n: u64) {
    #[cfg(feature = "enabled")]
    reg::COUNTERS[metric.index()].fetch_add(n, Ordering::Relaxed);
    #[cfg(not(feature = "enabled"))]
    let _ = (metric, n);
}

/// Whether the `enabled` feature was compiled in. `const`, so branches on
/// it fold away.
#[must_use]
pub const fn enabled() -> bool {
    cfg!(feature = "enabled")
}

/// Zeroes every stage and counter. Benchmark harnesses call this between
/// benchmarks so each report section starts from a clean registry.
/// Concurrent writers are tolerated (they land in the new window).
pub fn reset() {
    #[cfg(feature = "enabled")]
    {
        for cell in &reg::STAGES {
            cell.reset();
        }
        for ctr in &reg::COUNTERS {
            ctr.store(0, Ordering::Relaxed);
        }
    }
}

/// One stage's aggregate at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageSample {
    /// The stage's dotted name ([`Stage::name`]).
    pub name: &'static str,
    /// Total wall time recorded, in nanoseconds, summed across threads
    /// (concurrent spans overlap, so this can exceed elapsed wall time).
    pub total_ns: u64,
    /// Number of spans recorded.
    pub count: u64,
    /// Longest single span, in nanoseconds.
    pub max_ns: u64,
}

/// One counter's value at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CounterSample {
    /// The counter's dotted name ([`Metric::name`]).
    pub name: &'static str,
    /// Monotonic count since process start (or the last [`reset`]).
    pub value: u64,
}

/// A point-in-time read of the registry. Zero rows are omitted, so an
/// untouched registry (or a disabled-feature build) snapshots as empty.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    /// Stages with at least one recorded span.
    pub stages: Vec<StageSample>,
    /// Counters with a non-zero value.
    pub counters: Vec<CounterSample>,
}

/// Reads the registry without stopping writers. Rows are read one relaxed
/// load at a time, so a snapshot taken mid-flight can be slightly skewed —
/// fine for reporting, which is its only consumer.
#[must_use]
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "enabled")]
    {
        let stages = Stage::ALL
            .iter()
            .filter_map(|&s| {
                let cell = &reg::STAGES[s.index()];
                let count = cell.count.load(Ordering::Relaxed);
                (count > 0).then(|| StageSample {
                    name: s.name(),
                    total_ns: cell.total_ns.load(Ordering::Relaxed),
                    count,
                    max_ns: cell.max_ns.load(Ordering::Relaxed),
                })
            })
            .collect();
        let counters = Metric::ALL
            .iter()
            .filter_map(|&m| {
                let value = reg::COUNTERS[m.index()].load(Ordering::Relaxed);
                (value > 0).then_some(CounterSample {
                    name: m.name(),
                    value,
                })
            })
            .collect();
        Snapshot { stages, counters }
    }
    #[cfg(not(feature = "enabled"))]
    Snapshot::default()
}

impl Snapshot {
    /// Looks up a stage by dotted name.
    #[must_use]
    pub fn stage(&self, name: &str) -> Option<&StageSample> {
        self.stages.iter().find(|s| s.name == name)
    }

    /// Looks up a counter by dotted name; absent counters read as 0.
    #[must_use]
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// `true` when nothing has been recorded (always true with the
    /// `enabled` feature off).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty() && self.counters.is_empty()
    }

    /// The window between `earlier` and `self`: totals and counts are
    /// subtracted per name; rows that did not move are dropped. `max_ns`
    /// is carried from `self` (a high-water mark cannot be windowed).
    #[must_use]
    pub fn delta_since(&self, earlier: &Snapshot) -> Snapshot {
        let stages = self
            .stages
            .iter()
            .filter_map(|s| {
                let before = earlier.stage(s.name);
                // Saturating: a reset() between the two snapshots must not
                // panic the reporter, just clamp to zero.
                let count = s.count.saturating_sub(before.map_or(0, |b| b.count));
                (count > 0).then(|| StageSample {
                    name: s.name,
                    total_ns: s.total_ns.saturating_sub(before.map_or(0, |b| b.total_ns)),
                    count,
                    max_ns: s.max_ns,
                })
            })
            .collect();
        let counters = self
            .counters
            .iter()
            .filter_map(|c| {
                let value = c.value.saturating_sub(earlier.counter(c.name));
                (value > 0).then_some(CounterSample {
                    name: c.name,
                    value,
                })
            })
            .collect();
        Snapshot { stages, counters }
    }

    /// Renders the snapshot as the `esd-telemetry/v1` JSON object used by
    /// the `telemetry` protocol command and embedded (per benchmark) in
    /// `BENCH_*.json` reports.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("schema", Json::str(SCHEMA)),
            ("enabled", Json::Bool(enabled())),
            (
                "stages",
                Json::Arr(
                    self.stages
                        .iter()
                        .map(|s| {
                            Json::obj(vec![
                                ("name", Json::str(s.name)),
                                ("total_ns", Json::num_u64(s.total_ns)),
                                ("count", Json::num_u64(s.count)),
                                ("max_ns", Json::num_u64(s.max_ns)),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "counters",
                Json::Arr(
                    self.counters
                        .iter()
                        .map(|c| {
                            Json::obj(vec![
                                ("name", Json::str(c.name)),
                                ("value", Json::num_u64(c.value)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalogue_names_are_unique_and_dotted() {
        let mut names: Vec<&str> = Stage::ALL
            .iter()
            .map(|s| s.name())
            .chain(Metric::ALL.iter().map(|m| m.name()))
            .collect();
        assert_eq!(names.len(), Stage::COUNT + Metric::COUNT);
        for n in &names {
            assert!(
                n.contains('.')
                    && n.chars()
                        .all(|c| c.is_ascii_lowercase() || "._".contains(c)),
                "name {n:?} is not dotted lower-snake"
            );
        }
        names.sort_unstable();
        names.dedup();
        assert_eq!(
            names.len(),
            Stage::COUNT + Metric::COUNT,
            "duplicate catalogue name"
        );
    }

    #[test]
    fn catalogue_round_trips_through_names() {
        for &s in Stage::ALL {
            assert_eq!(Stage::from_name(s.name()), Some(s));
        }
        for &m in Metric::ALL {
            assert_eq!(Metric::from_name(m.name()), Some(m));
        }
        assert_eq!(Stage::from_name("no.such.stage"), None);
        assert_eq!(Metric::from_name(""), None);
        // The two catalogues share a namespace in reports: a Stage name
        // must never resolve as a Metric and vice versa.
        for &s in Stage::ALL {
            assert_eq!(Metric::from_name(s.name()), None);
        }
        for &m in Metric::ALL {
            assert_eq!(Stage::from_name(m.name()), None);
        }
    }

    #[test]
    fn snapshot_json_shape_is_stable() {
        let snap = Snapshot {
            stages: vec![StageSample {
                name: "build.enumerate",
                total_ns: 1200,
                count: 2,
                max_ns: 800,
            }],
            counters: vec![CounterSample {
                name: "cliques.enumerated",
                value: 42,
            }],
        };
        let text = snap.to_json().render_compact();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed.get("schema").and_then(Json::as_str), Some(SCHEMA));
        let stages = parsed.get("stages").and_then(Json::as_arr).unwrap();
        assert_eq!(stages[0].get("total_ns").and_then(Json::as_u64), Some(1200));
        let counters = parsed.get("counters").and_then(Json::as_arr).unwrap();
        assert_eq!(counters[0].get("value").and_then(Json::as_u64), Some(42));
    }

    // Registry tests share process-global state; each takes this lock so
    // reset() from one test cannot clobber another's window.
    #[cfg(feature = "enabled")]
    static REGISTRY_LOCK: crate::sync::Mutex<()> = crate::sync::Mutex::new(());

    #[cfg(feature = "enabled")]
    mod enabled_behaviour {
        use super::super::*;
        use super::REGISTRY_LOCK;
        use crate::sync::Unpoison;

        #[test]
        fn spans_and_counters_record_and_reset() {
            let _guard = REGISTRY_LOCK.lock().unpoison();
            reset();
            {
                let _span = span(Stage::BuildEnumerate);
                crate::sync::thread::sleep(std::time::Duration::from_millis(1));
            }
            add(Metric::CliquesEnumerated, 5);
            add(Metric::CliquesEnumerated, 2);
            let snap = snapshot();
            let stage = snap.stage("build.enumerate").expect("span recorded");
            assert_eq!(stage.count, 1);
            // Under loom the facade sleep is a logical yield, not wall
            // time, so the duration floor only holds in normal builds.
            #[cfg(not(loom))]
            assert!(stage.total_ns >= 1_000_000, "slept ≥ 1 ms");
            assert_eq!(stage.max_ns, stage.total_ns);
            assert_eq!(snap.counter("cliques.enumerated"), 7);
            assert!(!snap.is_empty());
            reset();
            assert!(snapshot().is_empty());
        }

        #[test]
        fn delta_since_windows_the_registry() {
            let _guard = REGISTRY_LOCK.lock().unpoison();
            reset();
            add(Metric::OnlineHeapPops, 10);
            drop(span(Stage::OnlineTopk));
            let before = snapshot();
            add(Metric::OnlineHeapPops, 3);
            add(Metric::OnlineEnqueued, 4);
            drop(span(Stage::OnlineTopk));
            let delta = snapshot().delta_since(&before);
            assert_eq!(delta.counter("online.heap_pops"), 3);
            assert_eq!(delta.counter("online.enqueued"), 4);
            assert_eq!(delta.stage("online.topk").unwrap().count, 1);
            // An unmoved window is empty.
            let snap = snapshot();
            assert!(snap.delta_since(&snap).is_empty());
        }

        #[test]
        fn concurrent_spans_sum_across_threads() {
            let _guard = REGISTRY_LOCK.lock().unpoison();
            reset();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    scope.spawn(|| {
                        for _ in 0..100 {
                            let _span = span(Stage::ParEnumerate);
                            add(Metric::ParOpsApplied, 2);
                        }
                    });
                }
            });
            let snap = snapshot();
            assert_eq!(snap.stage("pbuild.enumerate").unwrap().count, 400);
            assert_eq!(snap.counter("pbuild.ops_applied"), 800);
        }
    }

    #[cfg(not(feature = "enabled"))]
    mod disabled_behaviour {
        use super::super::*;

        #[test]
        fn api_is_inert_and_zero_sized() {
            assert!(!enabled());
            // The guard carries no state at all when disabled.
            assert_eq!(std::mem::size_of::<SpanGuard>(), 0);
            {
                let _span = span(Stage::BuildEnumerate);
                add(Metric::CliquesEnumerated, 1_000_000);
            }
            let snap = snapshot();
            assert!(snap.is_empty());
            assert_eq!(snap.counter("cliques.enumerated"), 0);
            let text = snap.to_json().render_compact();
            let parsed = Json::parse(&text).unwrap();
            assert_eq!(parsed.get("enabled").and_then(Json::as_bool), Some(false));
            assert_eq!(
                parsed.get("stages").and_then(Json::as_arr).map(Vec::len),
                Some(0)
            );
        }
    }
}
