//! A minimal JSON model: build, render, parse. No dependencies.
//!
//! The build environment is offline (no serde), and the workspace needs
//! exactly one thing from JSON: a stable machine-readable container for
//! bench reports and the `telemetry` protocol command, plus enough of a
//! parser for `esd bench --check` to re-validate an emitted report. This
//! module is that and nothing more.
//!
//! Deviations from full JSON, all documented:
//!
//! * Numbers are `f64`. Integers round-trip exactly up to 2⁵³, which
//!   comfortably covers every counter and nanosecond total we emit
//!   (2⁵³ ns ≈ 104 days).
//! * Non-finite numbers render as `null` (JSON has no NaN/Infinity).
//! * Objects preserve insertion order and allow duplicate keys on parse
//!   ([`Json::get`] returns the first match, as most parsers do).

use std::fmt;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key → value pairs.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value.
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// An integer value (exact for all emitted magnitudes; see module docs).
    #[must_use]
    pub fn num_u64(v: u64) -> Json {
        Json::Num(v as f64)
    }

    /// An object from `(key, value)` pairs.
    #[must_use]
    pub fn obj(fields: Vec<(&str, Json)>) -> Json {
        Json::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Object field lookup (first match); `None` on non-objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a bool, if it is one.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer — `None` if it is not a number,
    /// is negative, or has a fractional part.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        let n = self.as_f64()?;
        (n >= 0.0 && n.fract() == 0.0 && n <= u64::MAX as f64).then_some(n as u64)
    }

    /// The value as a string slice, if it is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array, if it is one.
    #[must_use]
    pub fn as_arr(&self) -> Option<&Vec<Json>> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The value as an object's fields, if it is one.
    #[must_use]
    pub fn as_obj(&self) -> Option<&Vec<(String, Json)>> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Renders on one line with no whitespace (protocol responses).
    #[must_use]
    pub fn render_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation and a trailing newline (files).
    #[must_use]
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_close, colon) = match indent {
            Some(w) => (
                "\n",
                " ".repeat(w * (depth + 1)),
                " ".repeat(w * depth),
                ": ",
            ),
            None => ("", String::new(), String::new(), ":"),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                if !n.is_finite() {
                    out.push_str("null");
                } else if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad);
                    write_escaped(out, k);
                    out.push_str(colon);
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad_close);
                out.push('}');
            }
        }
    }

    /// Parses a complete JSON document (rejects trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a [`JsonError`] naming the byte offset and what went wrong.
    pub fn parse(text: &str) -> Result<Json, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after document"));
        }
        Ok(value)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if u32::from(c) < 0x20 => out.push_str(&format!("\\u{:04x}", u32::from(c))),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure: what went wrong and the byte offset it happened at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for JsonError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: impl Into<String>) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}", char::from(b))))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, JsonError> {
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(other) => Err(self.err(format!("unexpected character {:?}", char::from(other)))),
        }
    }

    fn array(&mut self) -> Result<Json, JsonError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, JsonError> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii digits");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| self.err(format!("bad number {text:?}: {e}")))
    }

    fn hex4(&mut self) -> Result<u16, JsonError> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("bad \\u escape"))?;
        let v = u16::from_str_radix(text, 16).map_err(|_| self.err("bad \\u escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair: require the low half.
                                if self.bytes[self.pos..].starts_with(b"\\u") {
                                    self.pos += 2;
                                    let lo = self.hex4()?;
                                    let combined = 0x10000
                                        + ((u32::from(hi) - 0xD800) << 10)
                                        + (u32::from(lo) - 0xDC00);
                                    char::from_u32(combined)
                                } else {
                                    None
                                }
                            } else {
                                char::from_u32(u32::from(hi))
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(
                                self.err(format!("unknown escape \\{:?}", char::from(other)))
                            )
                        }
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 scalar (the input is a &str, so
                    // resynchronising on a char boundary is safe).
                    let rest =
                        std::str::from_utf8(&self.bytes[self.pos..]).expect("input was a str");
                    let c = rest.chars().next().expect("peeked non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_and_reparses_a_report_shape() {
        let doc = Json::obj(vec![
            ("schema", Json::str("esd-bench/v1")),
            ("ok", Json::Bool(true)),
            ("none", Json::Null),
            (
                "wall_ns",
                Json::obj(vec![
                    ("min", Json::num_u64(1200)),
                    ("mean", Json::Num(1250.5)),
                ]),
            ),
            (
                "names",
                Json::Arr(vec![Json::str("a \"quoted\" name"), Json::str("täb\there")]),
            ),
            ("empty_arr", Json::Arr(vec![])),
            ("empty_obj", Json::Obj(vec![])),
        ]);
        for text in [doc.render_compact(), doc.render_pretty()] {
            let back = Json::parse(&text).unwrap();
            assert_eq!(back, doc, "round trip failed for {text}");
        }
        assert!(!doc.render_compact().contains('\n'));
        assert!(doc.render_pretty().ends_with("}\n"));
    }

    #[test]
    fn accessors() {
        let doc = Json::parse(r#"{"a": 3, "b": [1, 2.5], "c": "x", "d": false}"#).unwrap();
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(3));
        assert_eq!(doc.get("b").and_then(Json::as_arr).map(Vec::len), Some(2));
        assert_eq!(doc.get("b").unwrap().as_arr().unwrap()[1].as_u64(), None);
        assert_eq!(doc.get("c").and_then(Json::as_str), Some("x"));
        assert_eq!(doc.get("d").and_then(Json::as_bool), Some(false));
        assert_eq!(doc.get("missing"), None);
        assert_eq!(doc.as_obj().map(Vec::len), Some(4));
        assert_eq!(Json::Num(-1.0).as_u64(), None);
        assert_eq!(Json::Num(1e300).as_u64(), None);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let doc = Json::parse(r#""a\n\t\"\\\/Aé😀""#).unwrap();
        assert_eq!(doc.as_str(), Some("a\n\t\"\\/Aé😀"));
        // Render → parse keeps control characters intact.
        let original = Json::str("ctrl:\u{1}\u{1f}");
        let back = Json::parse(&original.render_compact()).unwrap();
        assert_eq!(back, original);
    }

    #[test]
    fn numbers() {
        assert_eq!(Json::parse("-12").unwrap(), Json::Num(-12.0));
        assert_eq!(Json::parse("1.5e3").unwrap(), Json::Num(1500.0));
        assert_eq!(
            Json::num_u64(9_007_199_254_740_992).render_compact(),
            "9007199254740992"
        );
        assert_eq!(Json::Num(f64::NAN).render_compact(), "null");
        assert_eq!(Json::Num(2.5).render_compact(), "2.5");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1, ]",
            r#"{"a" 1}"#,
            "tru",
            "1 2",
            r#""\q""#,
            r#""\ud800x""#,
            "[1,,2]",
            "{1: 2}",
        ] {
            let err = Json::parse(bad).unwrap_err();
            assert!(!err.to_string().is_empty(), "{bad:?} should fail");
        }
        let err = Json::parse("[null, flase]").unwrap_err();
        assert_eq!(err.offset, 7);
        assert!(err.to_string().contains("byte 7"));
    }
}
