//! Disjoint-set (union–find) structures for edge structural diversity search.
//!
//! The ESDIndex construction and maintenance algorithms of the paper keep one
//! disjoint-set structure `M_uv` per edge `(u,v)`, partitioning the common
//! neighbourhood `N(uv)` into the connected components of the edge
//! ego-network. Two layouts are provided:
//!
//! * [`SlotDsu`] — a plain slot-indexed union–find with component sizes,
//!   used whenever elements are already densely numbered (local slots of a
//!   single neighbourhood, vertices of a small subgraph, …).
//! * [`ArenaDsu`] — one flat parent/size arena shared by *all* edges of a
//!   static graph. Every edge owns a contiguous slice `[off(e), off(e+1))`
//!   of the arena, so building the index performs zero per-edge allocations
//!   (total arena size is `Σ_(u,v) |N(uv)| = O(αm)`).
//!
//! Both use path halving and union by size, giving the inverse-Ackermann
//! `γ(n)` amortised bound quoted by the paper (Theorem 7).

#![warn(missing_docs)]

pub mod audit;

mod arena;
mod slot;

pub use arena::ArenaDsu;
pub use audit::DsuViolation;
pub use slot::SlotDsu;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_and_arena_agree_on_same_union_sequence() {
        // One logical edge owning 8 slots, exercised through both layouts.
        let mut slot = SlotDsu::new(8);
        let mut arena = ArenaDsu::new(vec![0, 8]);
        let unions = [(0, 1), (2, 3), (1, 2), (5, 6), (6, 7), (0, 0)];
        for &(a, b) in &unions {
            slot.union(a, b);
            arena.union(0, a, b);
        }
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(
                    slot.same_set(a, b),
                    arena.find(0, a) == arena.find(0, b),
                    "disagreement on ({a},{b})"
                );
            }
        }
        assert_eq!(slot.component_sizes(), arena.component_sizes(0));
    }
}
