//! A slot-indexed union–find with component sizes.

/// Union–find over the slots `0..len` with union by size and path halving.
///
/// Each set tracks its cardinality, which is what the paper's `count` field
/// of `M_uv` records (the size of each connected component of the edge
/// ego-network).
///
/// # Examples
///
/// ```
/// use esd_dsu::SlotDsu;
///
/// let mut dsu = SlotDsu::new(5);
/// dsu.union(0, 1);
/// dsu.union(1, 2);
/// assert!(dsu.same_set(0, 2));
/// assert_eq!(dsu.size_of(2), 3);
/// assert_eq!(dsu.num_sets(), 3); // {0,1,2} {3} {4}
/// ```
#[derive(Debug, Clone)]
pub struct SlotDsu {
    pub(crate) parent: Vec<u32>,
    /// Valid only at roots: number of elements in the set.
    pub(crate) size: Vec<u32>,
    pub(crate) num_sets: usize,
}

impl SlotDsu {
    /// Creates `len` singleton sets.
    pub fn new(len: usize) -> Self {
        assert!(
            len <= u32::MAX as usize,
            "SlotDsu supports at most u32::MAX slots"
        );
        Self {
            parent: (0..len as u32).collect(),
            size: vec![1; len],
            num_sets: len,
        }
    }

    /// Number of slots managed by this structure.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True when the structure manages no slots.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Current number of disjoint sets.
    pub fn num_sets(&self) -> usize {
        self.num_sets
    }

    /// Returns the representative of `x`'s set, compressing paths by halving.
    pub fn find(&mut self, x: usize) -> usize {
        let mut x = x as u32;
        loop {
            let p = self.parent[x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[p as usize];
            self.parent[x as usize] = gp;
            x = gp;
        }
    }

    /// Read-only find (no path compression); usable through a shared reference.
    pub fn find_const(&self, x: usize) -> usize {
        let mut x = x as u32;
        while self.parent[x as usize] != x {
            x = self.parent[x as usize];
        }
        x as usize
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were distinct.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        let (big, small) = if self.size[ra] >= self.size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[small] = big as u32;
        self.size[big] += self.size[small];
        self.num_sets -= 1;
        true
    }

    /// True when `a` and `b` are currently in the same set.
    pub fn same_set(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn size_of(&mut self, x: usize) -> u32 {
        let r = self.find(x);
        self.size[r]
    }

    /// True when `x` is currently a set representative.
    pub fn is_root(&self, x: usize) -> bool {
        self.parent[x] == x as u32
    }

    /// Size stored at `x`; meaningful only when [`Self::is_root`] holds.
    pub fn root_size(&self, x: usize) -> u32 {
        self.size[x]
    }

    /// Sorted multiset of all component sizes.
    pub fn component_sizes(&self) -> Vec<u32> {
        let mut sizes: Vec<u32> = (0..self.parent.len())
            .filter(|&x| self.is_root(x))
            .map(|x| self.size[x])
            .collect();
        sizes.sort_unstable();
        sizes
    }

    /// Resets every slot back to a singleton without reallocating.
    pub fn reset(&mut self) {
        for (i, p) in self.parent.iter_mut().enumerate() {
            *p = i as u32;
        }
        self.size.fill(1);
        self.num_sets = self.parent.len();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn singletons() {
        let mut dsu = SlotDsu::new(4);
        assert_eq!(dsu.num_sets(), 4);
        for i in 0..4 {
            assert_eq!(dsu.find(i), i);
            assert_eq!(dsu.size_of(i), 1);
        }
        assert_eq!(dsu.component_sizes(), vec![1, 1, 1, 1]);
    }

    #[test]
    fn empty() {
        let dsu = SlotDsu::new(0);
        assert!(dsu.is_empty());
        assert_eq!(dsu.num_sets(), 0);
        assert!(dsu.component_sizes().is_empty());
    }

    #[test]
    fn union_merges_sizes() {
        let mut dsu = SlotDsu::new(6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(2, 3));
        assert!(dsu.union(0, 2));
        assert!(!dsu.union(1, 3), "already merged");
        assert_eq!(dsu.size_of(3), 4);
        assert_eq!(dsu.num_sets(), 3);
        assert_eq!(dsu.component_sizes(), vec![1, 1, 4]);
    }

    #[test]
    fn self_union_is_noop() {
        let mut dsu = SlotDsu::new(3);
        assert!(!dsu.union(1, 1));
        assert_eq!(dsu.num_sets(), 3);
    }

    #[test]
    fn reset_restores_singletons() {
        let mut dsu = SlotDsu::new(5);
        dsu.union(0, 4);
        dsu.union(1, 2);
        dsu.reset();
        assert_eq!(dsu.num_sets(), 5);
        assert_eq!(dsu.component_sizes(), vec![1; 5]);
    }

    #[test]
    fn find_const_matches_find() {
        let mut dsu = SlotDsu::new(10);
        for i in 0..9 {
            dsu.union(i, i + 1);
        }
        for i in 0..10 {
            let c = dsu.find_const(i);
            assert_eq!(dsu.find(i), c);
        }
    }

    /// Naive model: partition refinement by explicit component labels.
    fn model_components(n: usize, unions: &[(usize, usize)]) -> Vec<usize> {
        let mut label: Vec<usize> = (0..n).collect();
        for &(a, b) in unions {
            let (la, lb) = (label[a], label[b]);
            if la != lb {
                for l in label.iter_mut() {
                    if *l == lb {
                        *l = la;
                    }
                }
            }
        }
        label
    }

    proptest! {
        #[test]
        fn matches_naive_partition(n in 1usize..40, ops in prop::collection::vec((0usize..40, 0usize..40), 0..120)) {
            let ops: Vec<(usize, usize)> = ops.into_iter()
                .map(|(a, b)| (a % n, b % n))
                .collect();
            let mut dsu = SlotDsu::new(n);
            for &(a, b) in &ops {
                dsu.union(a, b);
            }
            let labels = model_components(n, &ops);
            for a in 0..n {
                for b in 0..n {
                    prop_assert_eq!(dsu.same_set(a, b), labels[a] == labels[b]);
                }
            }
            // Sizes must agree with the label multiplicities.
            for a in 0..n {
                let model_size = labels.iter().filter(|&&l| l == labels[a]).count() as u32;
                prop_assert_eq!(dsu.size_of(a), model_size);
            }
            let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
            prop_assert_eq!(dsu.num_sets(), distinct.len());
        }
    }
}
