//! Structural invariant auditing for the union–find structures.
//!
//! Both DSU layouts expose `validate()` returning typed, located
//! [`DsuViolation`]s (empty = sound). The audited invariants:
//!
//! * every parent pointer stays inside its slot group;
//! * every parent chain reaches a root within `len` steps (no cycles);
//! * the size stored at each root equals the number of slots whose chain
//!   terminates there;
//! * ([`SlotDsu`] only) the cached set count equals the number of roots.

use crate::{ArenaDsu, SlotDsu};

/// One violated invariant of a disjoint-set structure, with its location.
///
/// `group` is always 0 for [`SlotDsu`], which manages a single slot range.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DsuViolation {
    /// The offsets array is empty, does not start at 0, or decreases.
    BadOffsets {
        /// First group index where the offsets are malformed.
        group: usize,
    },
    /// A parent pointer leaves its group's slot range.
    ParentOutOfBounds {
        /// Group owning the slot.
        group: usize,
        /// Local slot with the stray pointer.
        slot: usize,
        /// The out-of-range parent value.
        parent: u32,
    },
    /// A parent chain does not terminate (cycle among non-root slots).
    ParentCycle {
        /// Group owning the slot.
        group: usize,
        /// Local slot whose chain never reaches a root.
        slot: usize,
    },
    /// The size stored at a root disagrees with the recomputed member count.
    RootSizeMismatch {
        /// Group owning the root.
        group: usize,
        /// Local slot of the root.
        root: usize,
        /// Size recorded at the root.
        stored: u32,
        /// Member count recomputed by following every chain.
        actual: u32,
    },
    /// The cached number of disjoint sets disagrees with the root count.
    SetCountMismatch {
        /// Cached value.
        stored: usize,
        /// Number of roots actually present.
        actual: usize,
    },
}

impl std::fmt::Display for DsuViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::BadOffsets { group } => write!(f, "malformed group offsets at group {group}"),
            Self::ParentOutOfBounds {
                group,
                slot,
                parent,
            } => {
                write!(
                    f,
                    "group {group} slot {slot} has out-of-range parent {parent}"
                )
            }
            Self::ParentCycle { group, slot } => {
                write!(f, "group {group} slot {slot} sits on a parent cycle")
            }
            Self::RootSizeMismatch {
                group,
                root,
                stored,
                actual,
            } => write!(
                f,
                "group {group} root {root} stores size {stored}, chains give {actual}"
            ),
            Self::SetCountMismatch { stored, actual } => {
                write!(f, "cached set count {stored} but {actual} roots exist")
            }
        }
    }
}

/// Audits one contiguous parent/size group. `parent` and `size` are the
/// group's local arrays (parents as local slot ids).
fn audit_group(group: usize, parent: &[u32], size: &[u32], out: &mut Vec<DsuViolation>) {
    let len = parent.len();
    // Bounds first: chain-walking below must not index out of range.
    let mut bounded = true;
    for (slot, &p) in parent.iter().enumerate() {
        if (p as usize) >= len {
            out.push(DsuViolation::ParentOutOfBounds {
                group,
                slot,
                parent: p,
            });
            bounded = false;
        }
    }
    if !bounded {
        return;
    }
    // Resolve each slot's root by walking at most `len` parents; recompute
    // member counts per root.
    let mut members = vec![0u32; len];
    for slot in 0..len {
        let mut cur = slot;
        let mut steps = 0;
        loop {
            let p = parent[cur] as usize;
            if p == cur {
                members[cur] += 1;
                break;
            }
            steps += 1;
            if steps > len {
                out.push(DsuViolation::ParentCycle { group, slot });
                break;
            }
            cur = p;
        }
    }
    for root in 0..len {
        if parent[root] as usize == root && size[root] != members[root] {
            out.push(DsuViolation::RootSizeMismatch {
                group,
                root,
                stored: size[root],
                actual: members[root],
            });
        }
    }
}

impl SlotDsu {
    /// Audits every structural invariant; returns all violations found
    /// (empty = sound). `O(len)` amortised (paths are short after halving).
    pub fn validate(&self) -> Vec<DsuViolation> {
        let mut out = Vec::new();
        audit_group(0, &self.parent, &self.size, &mut out);
        let roots = (0..self.parent.len())
            .filter(|&x| self.parent[x] as usize == x)
            .count();
        if self.num_sets() != roots {
            out.push(DsuViolation::SetCountMismatch {
                stored: self.num_sets(),
                actual: roots,
            });
        }
        out
    }
}

impl ArenaDsu {
    /// Audits every group of the arena; returns all violations found
    /// (empty = sound).
    pub fn validate(&self) -> Vec<DsuViolation> {
        let mut out = Vec::new();
        if self.offsets.is_empty() || self.offsets[0] != 0 {
            out.push(DsuViolation::BadOffsets { group: 0 });
            return out;
        }
        for (g, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] || w[1] > self.parent.len() {
                out.push(DsuViolation::BadOffsets { group: g });
                return out;
            }
        }
        if self.offsets.last() != Some(&self.parent.len()) {
            out.push(DsuViolation::BadOffsets {
                group: self.offsets.len() - 1,
            });
            return out;
        }
        for g in 0..self.num_groups() {
            let (lo, hi) = (self.offsets[g], self.offsets[g + 1]);
            audit_group(g, &self.parent[lo..hi], &self.size[lo..hi], &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn merged_slot_dsu() -> SlotDsu {
        let mut dsu = SlotDsu::new(6);
        dsu.union(0, 1);
        dsu.union(1, 2);
        dsu.union(4, 5);
        dsu
    }

    #[test]
    fn clean_structures_have_no_violations() {
        assert_eq!(SlotDsu::new(0).validate(), Vec::new());
        assert_eq!(merged_slot_dsu().validate(), Vec::new());
        let mut arena = ArenaDsu::new(vec![0, 4, 4, 9]);
        arena.union(0, 0, 3);
        arena.union(2, 1, 4);
        assert_eq!(arena.validate(), Vec::new());
    }

    #[test]
    fn detects_parent_out_of_bounds() {
        let mut dsu = merged_slot_dsu();
        dsu.parent[3] = 99;
        let v = dsu.validate();
        assert!(
            v.contains(&DsuViolation::ParentOutOfBounds {
                group: 0,
                slot: 3,
                parent: 99
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_cycle() {
        let mut dsu = SlotDsu::new(4);
        dsu.parent[0] = 1;
        dsu.parent[1] = 0; // 0 <-> 1, neither is a root
        let v = dsu.validate();
        assert!(
            v.contains(&DsuViolation::ParentCycle { group: 0, slot: 0 }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_root_size_mismatch() {
        let mut dsu = merged_slot_dsu();
        let root = dsu.find(0);
        dsu.size[root] = 17;
        let v = dsu.validate();
        assert!(
            v.contains(&DsuViolation::RootSizeMismatch {
                group: 0,
                root,
                stored: 17,
                actual: 3
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_set_count_mismatch() {
        let mut dsu = merged_slot_dsu();
        dsu.num_sets = 1;
        let v = dsu.validate();
        assert!(
            v.contains(&DsuViolation::SetCountMismatch {
                stored: 1,
                actual: 3
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn arena_detects_cross_group_faults() {
        let mut arena = ArenaDsu::new(vec![0, 3, 6]);
        arena.union(1, 0, 2);
        // Corrupt group 1's root size; group 0 must stay clean.
        let base = 3;
        let root = arena.find(1, 0);
        arena.size[base + root] = 9;
        let v = arena.validate();
        assert_eq!(v.len(), 1, "got {v:?}");
        assert!(
            matches!(v[0], DsuViolation::RootSizeMismatch { group: 1, .. }),
            "got {v:?}"
        );
    }

    #[test]
    fn arena_detects_bad_offsets() {
        let mut arena = ArenaDsu::new(vec![0, 2, 4]);
        arena.offsets[1] = 3; // overlaps group 1's range end
        arena.offsets[2] = 2; // decreasing
        let v = arena.validate();
        assert!(
            v.contains(&DsuViolation::BadOffsets { group: 1 }),
            "got {v:?}"
        );
    }
}
