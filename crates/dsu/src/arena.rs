//! A flat arena of per-edge union–find structures.

/// Union–find over many contiguous slot groups packed into one allocation.
///
/// Group `g` owns the global slots `offsets[g]..offsets[g+1]`; all `find` /
/// `union` operations take the group id and *local* slots within the group.
/// This is the layout used by the improved index construction (Algorithm 3):
/// group `g` is edge `g`'s common neighbourhood `N(uv)`, and the arena holds
/// the disjoint-set forests `M_uv` of *all* edges back to back, avoiding one
/// heap allocation per edge.
///
/// # Examples
///
/// ```
/// use esd_dsu::ArenaDsu;
///
/// // Two groups: slots {0,1,2} and {0,1}.
/// let mut dsu = ArenaDsu::new(vec![0, 3, 5]);
/// dsu.union(0, 0, 2);
/// assert_eq!(dsu.size(0, 0), 2);
/// assert_eq!(dsu.component_sizes(1), vec![1, 1]);
/// ```
#[derive(Debug, Clone)]
pub struct ArenaDsu {
    /// `offsets[g]..offsets[g+1]` is group `g`'s slot range; length = #groups + 1.
    pub(crate) offsets: Vec<usize>,
    /// Parents as *local* slot ids within each group.
    pub(crate) parent: Vec<u32>,
    /// Component size, valid at local roots.
    pub(crate) size: Vec<u32>,
}

impl ArenaDsu {
    /// Creates an arena from monotone group offsets (`offsets[0] == 0`, last
    /// entry is the total slot count). Every slot starts as a singleton.
    pub fn new(offsets: Vec<usize>) -> Self {
        assert!(
            !offsets.is_empty(),
            "offsets must contain at least the terminal 0"
        );
        assert_eq!(offsets[0], 0, "offsets must start at 0");
        assert!(
            offsets.windows(2).all(|w| w[0] <= w[1]),
            "offsets must be non-decreasing"
        );
        let total = *offsets.last().expect("non-empty offsets");
        let mut parent = Vec::with_capacity(total);
        for g in 0..offsets.len() - 1 {
            let len = offsets[g + 1] - offsets[g];
            parent.extend(0..len as u32);
        }
        Self {
            offsets,
            parent,
            size: vec![1; total],
        }
    }

    /// Number of groups in the arena.
    pub fn num_groups(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of slots owned by group `g`.
    pub fn group_len(&self, g: usize) -> usize {
        self.offsets[g + 1] - self.offsets[g]
    }

    #[inline]
    fn base(&self, g: usize) -> usize {
        self.offsets[g]
    }

    /// Representative (local slot) of local slot `x` in group `g`, with path halving.
    #[inline]
    pub fn find(&mut self, g: usize, x: usize) -> usize {
        let base = self.base(g);
        debug_assert!(x < self.group_len(g));
        let mut x = x as u32;
        loop {
            let p = self.parent[base + x as usize];
            if p == x {
                return x as usize;
            }
            let gp = self.parent[base + p as usize];
            self.parent[base + x as usize] = gp;
            x = gp;
        }
    }

    /// Merges local slots `a` and `b` in group `g`; returns `true` if distinct.
    #[inline]
    pub fn union(&mut self, g: usize, a: usize, b: usize) -> bool {
        let (ra, rb) = (self.find(g, a), self.find(g, b));
        if ra == rb {
            return false;
        }
        let base = self.base(g);
        let (big, small) = if self.size[base + ra] >= self.size[base + rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        self.parent[base + small] = big as u32;
        self.size[base + big] += self.size[base + small];
        true
    }

    /// Size of the component containing local slot `x` of group `g`.
    pub fn size(&mut self, g: usize, x: usize) -> u32 {
        let r = self.find(g, x);
        self.size[self.base(g) + r]
    }

    /// True when local slot `x` of group `g` is a component representative.
    pub fn is_root(&self, g: usize, x: usize) -> bool {
        self.parent[self.base(g) + x] == x as u32
    }

    /// Size stored at local slot `x`; meaningful only at roots.
    pub fn root_size(&self, g: usize, x: usize) -> u32 {
        self.size[self.base(g) + x]
    }

    /// Sorted multiset of component sizes of group `g`.
    pub fn component_sizes(&self, g: usize) -> Vec<u32> {
        let mut sizes: Vec<u32> = (0..self.group_len(g))
            .filter(|&x| self.is_root(g, x))
            .map(|x| self.root_size(g, x))
            .collect();
        sizes.sort_unstable();
        sizes
    }

    /// Visits `(root_local_slot, size)` for each component of group `g`.
    pub fn for_each_root(&self, g: usize, mut f: impl FnMut(usize, u32)) {
        for x in 0..self.group_len(g) {
            if self.is_root(g, x) {
                f(x, self.root_size(g, x));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn groups_are_independent() {
        let mut dsu = ArenaDsu::new(vec![0, 4, 7, 7, 10]);
        assert_eq!(dsu.num_groups(), 4);
        assert_eq!(dsu.group_len(2), 0, "empty group allowed");
        dsu.union(0, 0, 1);
        dsu.union(3, 1, 2);
        assert_eq!(dsu.component_sizes(0), vec![1, 1, 2]);
        assert_eq!(dsu.component_sizes(1), vec![1, 1, 1]);
        assert_eq!(dsu.component_sizes(3), vec![1, 2]);
    }

    #[test]
    #[should_panic(expected = "offsets must start at 0")]
    fn rejects_bad_offsets() {
        let _ = ArenaDsu::new(vec![1, 2]);
    }

    #[test]
    fn for_each_root_reports_all_components() {
        let mut dsu = ArenaDsu::new(vec![0, 5]);
        dsu.union(0, 0, 1);
        dsu.union(0, 2, 3);
        let mut seen = Vec::new();
        dsu.for_each_root(0, |root, size| seen.push((root, size)));
        let total: u32 = seen.iter().map(|&(_, s)| s).sum();
        assert_eq!(total, 5);
        assert_eq!(seen.len(), 3);
    }

    proptest! {
        #[test]
        fn group_isolation_under_random_unions(
            lens in prop::collection::vec(0usize..8, 1..6),
            ops in prop::collection::vec((0usize..6, 0usize..8, 0usize..8), 0..60),
        ) {
            let mut offsets = vec![0];
            for &l in &lens {
                offsets.push(offsets.last().unwrap() + l);
            }
            let mut arena = ArenaDsu::new(offsets);
            let mut slots: Vec<esd_dsu_test_model::Model> =
                lens.iter().map(|&l| esd_dsu_test_model::Model::new(l)).collect();
            for (g, a, b) in ops {
                let g = g % lens.len();
                let l = lens[g];
                if l == 0 { continue; }
                let (a, b) = (a % l, b % l);
                arena.union(g, a, b);
                slots[g].union(a, b);
            }
            for (g, &l) in lens.iter().enumerate() {
                let mut model_sizes = slots[g].component_sizes();
                model_sizes.sort_unstable();
                prop_assert_eq!(arena.component_sizes(g), model_sizes);
                for a in 0..l {
                    for b in 0..l {
                        prop_assert_eq!(
                            arena.find(g, a) == arena.find(g, b),
                            slots[g].same(a, b)
                        );
                    }
                }
            }
        }
    }

    /// A tiny quadratic-time reference partition used only by the proptest.
    mod esd_dsu_test_model {
        pub struct Model {
            label: Vec<usize>,
        }

        impl Model {
            pub fn new(n: usize) -> Self {
                Self {
                    label: (0..n).collect(),
                }
            }

            pub fn union(&mut self, a: usize, b: usize) {
                let (la, lb) = (self.label[a], self.label[b]);
                if la != lb {
                    for l in self.label.iter_mut() {
                        if *l == lb {
                            *l = la;
                        }
                    }
                }
            }

            pub fn same(&self, a: usize, b: usize) -> bool {
                self.label[a] == self.label[b]
            }

            pub fn component_sizes(&self) -> Vec<u32> {
                let mut counts = std::collections::HashMap::new();
                for &l in &self.label {
                    *counts.entry(l).or_insert(0u32) += 1;
                }
                counts.into_values().collect()
            }
        }
    }
}
