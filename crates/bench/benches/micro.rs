//! Substrate micro-benchmarks: intersection kernels, treap operations,
//! union–find, and 4-clique enumeration — the kernels whose constants
//! determine every headline number.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::index::ostree::{RankKey, ScoreTreap};
use esd_dsu::SlotDsu;
use esd_graph::{cliques, generators, intersect, Edge};

fn bench_intersect(c: &mut Criterion) {
    let mut group = c.benchmark_group("intersect");
    let a: Vec<u32> = (0..1_000).map(|x| x * 7).collect();
    let balanced: Vec<u32> = (0..1_000).map(|x| x * 11).collect();
    let skewed: Vec<u32> = (0..100_000).map(|x| x * 3).collect();
    group.bench_function("merge_balanced", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            intersect::intersect_merge(&a, &balanced, &mut out);
        })
    });
    group.bench_function("merge_skewed", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            intersect::intersect_merge(&a, &skewed, &mut out);
        })
    });
    group.bench_function("gallop_skewed", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            out.clear();
            intersect::intersect_gallop(&a, &skewed, &mut out);
        })
    });
    group.finish();
}

fn bench_treap(c: &mut Criterion) {
    let mut group = c.benchmark_group("treap");
    let keys: Vec<RankKey> = (0..10_000u32)
        .map(|i| RankKey {
            score: i % 97,
            edge: Edge::new(i, i + 1),
        })
        .collect();
    group.bench_function("insert_10k", |b| {
        b.iter(|| {
            let mut t = ScoreTreap::new();
            for &k in &keys {
                t.insert(k);
            }
            t
        })
    });
    let mut full = ScoreTreap::new();
    for &k in &keys {
        full.insert(k);
    }
    for k in [1usize, 100] {
        group.bench_with_input(BenchmarkId::new("top_k", k), &k, |b, &k| {
            b.iter(|| full.top_k(k))
        });
    }
    group.finish();
}

fn bench_dsu(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsu");
    group.bench_function("union_find_100k", |b| {
        b.iter(|| {
            let mut dsu = SlotDsu::new(100_000);
            for i in 0..99_999 {
                dsu.union(i, i + 1);
            }
            dsu.num_sets()
        })
    });
    group.finish();
}

fn bench_cliques(c: &mut Criterion) {
    let mut group = c.benchmark_group("cliques");
    group.sample_size(10);
    let g = generators::clique_overlap(2_000, 1_600, 6, 3);
    group.bench_function("four_cliques", |b| {
        b.iter(|| cliques::count_four_cliques(&g))
    });
    group.bench_function("triangles", |b| {
        b.iter(|| esd_graph::triangles::count_triangles(&g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_intersect,
    bench_treap,
    bench_dsu,
    bench_cliques
);
criterion_main!(benches);
