//! Fig 5 micro: OnlineBFS vs OnlineBFS+ (dequeue-twice with each bound).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::online::{online_topk, UpperBound};
use esd_datasets::{load, Scale};

fn bench_online(c: &mut Criterion) {
    let mut group = c.benchmark_group("online_topk");
    group.sample_size(10);
    for name in ["Pokec", "DBLP"] {
        let g = load(name, Scale::Tiny);
        for (label, bound) in [
            ("OnlineBFS", UpperBound::MinDegree),
            ("OnlineBFS+", UpperBound::CommonNeighbor),
        ] {
            group.bench_with_input(BenchmarkId::new(label, name), &g, |b, g| {
                b.iter(|| online_topk(g, 100, 3, bound))
            });
        }
    }
    group.finish();
}

fn bench_online_varying_k(c: &mut Criterion) {
    let g = load("Pokec", Scale::Tiny);
    let mut group = c.benchmark_group("online_topk_k");
    group.sample_size(10);
    for k in [1usize, 50, 200] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| online_topk(&g, k, 3, UpperBound::CommonNeighbor))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_online, bench_online_varying_k);
criterion_main!(benches);
