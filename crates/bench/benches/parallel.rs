//! Fig 7/10 micro: PESDIndex+ at several thread counts.
//!
//! On a 1-core container the wall-clock speedup saturates at ~1×; the bench
//! still validates that the parallel machinery adds no pathological
//! overhead and scales on real multicore hardware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::EsdIndex;
use esd_datasets::{load, Scale};

fn bench_parallel(c: &mut Criterion) {
    let g = load("LiveJournal", Scale::Tiny);
    let mut group = c.benchmark_group("parallel_build");
    group.sample_size(10);
    for threads in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| EsdIndex::build_parallel(&g, t))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_parallel);
criterion_main!(benches);
