//! Fig 6(b) micro: ESDIndex (Algorithm 2) vs ESDIndex+ (Algorithm 3)
//! construction time.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::EsdIndex;
use esd_datasets::{load, Scale};

fn bench_build(c: &mut Criterion) {
    let mut group = c.benchmark_group("index_build");
    group.sample_size(10);
    for name in ["Youtube", "DBLP", "Pokec"] {
        let g = load(name, Scale::Tiny);
        group.bench_with_input(BenchmarkId::new("ESDIndex_basic", name), &g, |b, g| {
            b.iter(|| EsdIndex::build_basic(g))
        });
        group.bench_with_input(BenchmarkId::new("ESDIndex_fast", name), &g, |b, g| {
            b.iter(|| EsdIndex::build_fast(g))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_build);
criterion_main!(benches);
