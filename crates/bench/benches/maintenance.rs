//! Fig 11 micro: edge insertion/deletion maintenance cost (Algorithms 4–5),
//! benchmarked as delete+reinsert pairs so the graph is unchanged across
//! iterations.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::MaintainedIndex;
use esd_datasets::{load, Scale};

fn bench_maintenance(c: &mut Criterion) {
    let mut group = c.benchmark_group("maintenance");
    group.sample_size(10);
    for name in ["Youtube", "DBLP"] {
        let g = load(name, Scale::Tiny);
        let mut index = MaintainedIndex::new(&g);
        let edges: Vec<_> = g
            .edges()
            .iter()
            .step_by(g.num_edges() / 64 + 1)
            .copied()
            .collect();
        group.bench_with_input(BenchmarkId::new("delete_reinsert", name), &(), |b, _| {
            let mut i = 0;
            b.iter(|| {
                let e = edges[i % edges.len()];
                i += 1;
                assert!(index.remove_edge(e.u, e.v));
                assert!(index.insert_edge(e.u, e.v));
            })
        });
    }
    group.finish();
}

fn bench_batch_vs_sequential(c: &mut Criterion) {
    let g = load("DBLP", Scale::Tiny);
    let edges: Vec<_> = g
        .edges()
        .iter()
        .step_by(g.num_edges() / 32 + 1)
        .copied()
        .collect();
    let mut group = c.benchmark_group("maintenance_batch");
    group.sample_size(10);
    group.bench_function("sequential_32_pairs", |b| {
        let mut index = MaintainedIndex::new(&g);
        b.iter(|| {
            for e in &edges {
                index.remove_edge(e.u, e.v);
            }
            for e in &edges {
                index.insert_edge(e.u, e.v);
            }
        })
    });
    group.bench_function("batched_32_pairs", |b| {
        let mut index = MaintainedIndex::new(&g);
        let updates: Vec<esd_core::maintain::GraphUpdate> = edges
            .iter()
            .map(|e| esd_core::maintain::GraphUpdate::Remove(e.u, e.v))
            .chain(
                edges
                    .iter()
                    .map(|e| esd_core::maintain::GraphUpdate::Insert(e.u, e.v)),
            )
            .collect();
        b.iter(|| index.apply_batch(&updates))
    });
    group.finish();
}

fn bench_bootstrap(c: &mut Criterion) {
    let g = load("Youtube", Scale::Tiny);
    let mut group = c.benchmark_group("maintenance_bootstrap");
    group.sample_size(10);
    group.bench_function("MaintainedIndex_new", |b| {
        b.iter(|| MaintainedIndex::new(&g))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_maintenance,
    bench_batch_vs_sequential,
    bench_bootstrap
);
criterion_main!(benches);
