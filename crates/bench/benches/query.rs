//! Fig 8 micro: IndexSearch query latency vs OnlineBFS+ across k and τ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use esd_core::online::{online_topk, UpperBound};
use esd_core::EsdIndex;
use esd_datasets::{load, Scale};

fn bench_query(c: &mut Criterion) {
    let g = load("Pokec", Scale::Tiny);
    let index = EsdIndex::build_fast(&g);
    let mut group = c.benchmark_group("index_query");
    for k in [1usize, 10, 100, 200] {
        group.bench_with_input(BenchmarkId::new("k", k), &k, |b, &k| {
            b.iter(|| index.query(k, 3))
        });
    }
    for tau in [1u32, 3, 6] {
        group.bench_with_input(BenchmarkId::new("tau", tau), &tau, |b, &tau| {
            b.iter(|| index.query(100, tau))
        });
    }
    group.finish();

    // The headline Fig 8 contrast on the same input, for the record.
    let mut group = c.benchmark_group("query_vs_online");
    group.sample_size(10);
    group.bench_function("IndexSearch_k100_tau3", |b| b.iter(|| index.query(100, 3)));
    group.bench_function("OnlineBFS+_k100_tau3", |b| {
        b.iter(|| online_topk(&g, 100, 3, UpperBound::CommonNeighbor))
    });
    group.finish();
}

criterion_group!(benches, bench_query);
criterion_main!(benches);
