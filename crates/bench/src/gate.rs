//! The `esd bench gate` perf-regression contract.
//!
//! A checked-in [`BASELINE_SCHEMA`] document (`bench/baseline.json`) pins
//! the expected wall p50 of every benchmark in the smoke suite. [`compare`]
//! takes a fresh `esd-bench/v1` report and fails — exits the CLI non-zero —
//! when any baselined benchmark regressed beyond its tolerance band or
//! disappeared from the report. Benchmarks present in the report but absent
//! from the baseline are surfaced as warnings (they pass, so adding a
//! benchmark does not hard-fail CI before the intentional re-baseline).
//!
//! Tolerance precedence, strongest first: the per-entry `tolerance_pct`
//! field, the CLI `--tolerance` override, the file-level
//! `default_tolerance_pct`, then [`DEFAULT_TOLERANCE_PCT`]. The default band
//! is deliberately wide — smoke benchmarks are sub-millisecond runs on noisy
//! shared CI hosts, and the gate exists to catch algorithmic regressions
//! (2–3× cliffs), not 10% drift. Methodology and the re-baselining workflow
//! live in `docs/benchmarking.md`.

use crate::report::{validate, BENCH_SCHEMA};
use esd_telemetry::json::Json;

/// Schema identifier of the baseline document; bump on any shape change.
pub const BASELINE_SCHEMA: &str = "esd-bench-baseline/v1";

/// Tolerance band applied when neither the baseline entry, the CLI, nor the
/// baseline file sets one: a benchmark fails the gate when its fresh wall
/// p50 exceeds baseline × (1 + 150/100) = 2.5× the pinned value.
pub const DEFAULT_TOLERANCE_PCT: u64 = 150;

/// What [`compare`] found. The gate passes iff [`GateOutcome::passed`].
#[derive(Debug, Default)]
pub struct GateOutcome {
    /// Baselined benchmarks found in the report and compared.
    pub checked: usize,
    /// Human-readable rows for benchmarks beyond tolerance — each one a
    /// gate failure.
    pub regressions: Vec<String>,
    /// Baselined benchmarks missing from the fresh report — coverage loss,
    /// also a gate failure.
    pub missing: Vec<String>,
    /// Benchmarks that got faster than the baseline by more than their
    /// tolerance band — informational; a hint to re-baseline so the gate
    /// stays tight around current reality.
    pub improvements: Vec<String>,
    /// Report benchmarks with no baseline entry — informational; they are
    /// not gated until the next re-baseline.
    pub unbaselined: Vec<String>,
}

impl GateOutcome {
    /// `true` when no benchmark regressed and none went missing.
    #[must_use]
    pub fn passed(&self) -> bool {
        self.regressions.is_empty() && self.missing.is_empty()
    }
}

fn bench_key(b: &Json) -> Option<(String, String)> {
    let name = b.get("name").and_then(Json::as_str)?;
    let dataset = b.get("dataset").and_then(Json::as_str)?;
    Some((name.to_string(), dataset.to_string()))
}

/// Validates a parsed baseline against the `esd-bench-baseline/v1` schema.
/// Returns one human-readable violation per entry, empty when conformant.
#[must_use]
pub fn validate_baseline(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_obj().is_none() {
        return vec!["baseline: document is not a JSON object".into()];
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == BASELINE_SCHEMA => {}
        Some(s) => errors.push(format!(
            "baseline: schema {s:?}, expected {BASELINE_SCHEMA:?}"
        )),
        None => errors.push("baseline: missing string field \"schema\"".into()),
    }
    if let Some(v) = doc.get("default_tolerance_pct") {
        if v.as_u64().is_none() {
            errors.push("baseline: \"default_tolerance_pct\" is not an integer".into());
        }
    }
    match doc.get("benchmarks").and_then(Json::as_arr) {
        Some(entries) => {
            if entries.is_empty() {
                errors.push("baseline: \"benchmarks\" must not be empty".into());
            }
            for (i, entry) in entries.iter().enumerate() {
                let at = format!("baseline.benchmarks[{i}]");
                if bench_key(entry).is_none() {
                    errors.push(format!("{at}: missing string \"name\"/\"dataset\""));
                }
                if entry.get("wall_p50_ns").and_then(Json::as_u64).is_none() {
                    errors.push(format!("{at}: missing integer field \"wall_p50_ns\""));
                }
                if let Some(v) = entry.get("tolerance_pct") {
                    if v.as_u64().is_none() {
                        errors.push(format!("{at}: \"tolerance_pct\" is not an integer"));
                    }
                }
            }
        }
        None => errors.push("baseline: missing array field \"benchmarks\"".into()),
    }
    errors
}

/// Distils a fresh `esd-bench/v1` report into a baseline document pinning
/// each benchmark's wall p50. `tolerance_pct` becomes the file-level
/// `default_tolerance_pct` when given; per-entry bands can be added by hand
/// afterwards. Errors when the report itself does not validate.
pub fn baseline_from_report(report: &Json, tolerance_pct: Option<u64>) -> Result<Json, String> {
    let report_errors = validate(report);
    if !report_errors.is_empty() {
        return Err(format!(
            "report does not validate against {BENCH_SCHEMA}:\n  {}",
            report_errors.join("\n  ")
        ));
    }
    let benches = report
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("validated report has benchmarks");
    let mut entries = Vec::new();
    for b in benches {
        let (name, dataset) = bench_key(b).expect("validated benchmark has name/dataset");
        let p50 = b
            .get("wall_ns")
            .and_then(|w| w.get("p50"))
            .and_then(Json::as_u64)
            .expect("validated benchmark has wall_ns.p50");
        entries.push(Json::obj(vec![
            ("name", Json::str(&name)),
            ("dataset", Json::str(&dataset)),
            ("wall_p50_ns", Json::num_u64(p50)),
        ]));
    }
    let mut fields = vec![("schema", Json::str(BASELINE_SCHEMA))];
    if let Some(suite) = report.get("suite").and_then(Json::as_str) {
        fields.push(("suite", Json::str(suite)));
    }
    fields.push((
        "default_tolerance_pct",
        Json::num_u64(tolerance_pct.unwrap_or(DEFAULT_TOLERANCE_PCT)),
    ));
    fields.push(("benchmarks", Json::Arr(entries)));
    Ok(Json::obj(fields))
}

/// Compares a fresh report against a baseline. `tolerance_override` is the
/// CLI `--tolerance` value; see the module doc for the precedence order.
/// Errors when either document fails its schema validation — a malformed
/// gate input must never pass silently.
pub fn compare(
    report: &Json,
    baseline: &Json,
    tolerance_override: Option<u64>,
) -> Result<GateOutcome, String> {
    let mut doc_errors = validate(report);
    doc_errors.extend(validate_baseline(baseline));
    if !doc_errors.is_empty() {
        return Err(format!(
            "gate inputs invalid:\n  {}",
            doc_errors.join("\n  ")
        ));
    }
    let file_default = baseline.get("default_tolerance_pct").and_then(Json::as_u64);
    let report_benches = report
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("validated report has benchmarks");
    let entries = baseline
        .get("benchmarks")
        .and_then(Json::as_arr)
        .expect("validated baseline has benchmarks");

    let mut outcome = GateOutcome::default();
    let mut baselined: Vec<(String, String)> = Vec::new();
    for entry in entries {
        let (name, dataset) = bench_key(entry).expect("validated entry has name/dataset");
        baselined.push((name.clone(), dataset.clone()));
        let Some(fresh) = report_benches
            .iter()
            .find(|b| bench_key(b).as_ref() == Some(&(name.clone(), dataset.clone())))
        else {
            outcome
                .missing
                .push(format!("{name} [{dataset}]: not in the fresh report"));
            continue;
        };
        let pinned = entry
            .get("wall_p50_ns")
            .and_then(Json::as_u64)
            .expect("validated entry has wall_p50_ns");
        let fresh_p50 = fresh
            .get("wall_ns")
            .and_then(|w| w.get("p50"))
            .and_then(Json::as_u64)
            .expect("validated benchmark has wall_ns.p50");
        let tolerance = entry
            .get("tolerance_pct")
            .and_then(Json::as_u64)
            .or(tolerance_override)
            .or(file_default)
            .unwrap_or(DEFAULT_TOLERANCE_PCT);
        outcome.checked += 1;
        // ceiling = pinned × (100 + tolerance) / 100, in u128 so a large
        // pinned value cannot overflow the multiply.
        let ceiling = u128::from(pinned) * u128::from(100 + tolerance) / 100;
        let floor = u128::from(pinned) * 100 / u128::from(100 + tolerance);
        let row = |verdict: &str| {
            format!(
                "{name} [{dataset}]: {verdict} — p50 {fresh_p50} ns vs baseline {pinned} ns \
                 (tolerance {tolerance}%)"
            )
        };
        if u128::from(fresh_p50) > ceiling {
            outcome.regressions.push(row("regressed"));
        } else if u128::from(fresh_p50) < floor {
            outcome.improvements.push(row("improved"));
        }
    }
    for b in report_benches {
        if let Some(key) = bench_key(b) {
            if !baselined.contains(&key) {
                outcome
                    .unbaselined
                    .push(format!("{} [{}]: no baseline entry", key.0, key.1));
            }
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report_with(p50s: &[(&str, &str, u64)]) -> Json {
        let benches = p50s
            .iter()
            .map(|&(name, dataset, p50)| {
                Json::obj(vec![
                    ("name", Json::str(name)),
                    ("dataset", Json::str(dataset)),
                    ("reps", Json::num_u64(3)),
                    (
                        "wall_ns",
                        Json::obj(vec![
                            ("min", Json::num_u64(p50.saturating_sub(1))),
                            ("p50", Json::num_u64(p50)),
                            ("max", Json::num_u64(p50 + 1)),
                            ("mean", Json::num_u64(p50)),
                        ]),
                    ),
                    ("stages", Json::Arr(vec![])),
                    ("counters", Json::Arr(vec![])),
                ])
            })
            .collect();
        Json::obj(vec![
            ("schema", Json::str(BENCH_SCHEMA)),
            ("suite", Json::str("smoke")),
            ("telemetry_enabled", Json::Bool(false)),
            ("host", Json::obj(vec![("threads", Json::num_u64(1))])),
            ("benchmarks", Json::Arr(benches)),
        ])
    }

    #[test]
    fn baseline_round_trips_and_passes_against_its_own_report() {
        let report = report_with(&[("build_seq", "Youtube/tiny", 1000)]);
        let baseline = baseline_from_report(&report, None).unwrap();
        assert_eq!(validate_baseline(&baseline), Vec::<String>::new());
        assert_eq!(
            baseline.get("schema").and_then(Json::as_str),
            Some(BASELINE_SCHEMA)
        );
        let outcome = compare(&report, &baseline, None).unwrap();
        assert!(outcome.passed(), "{outcome:?}");
        assert_eq!(outcome.checked, 1);
        assert!(outcome.improvements.is_empty());
        assert!(outcome.unbaselined.is_empty());
    }

    #[test]
    fn regression_beyond_tolerance_fails_the_gate() {
        let baseline =
            baseline_from_report(&report_with(&[("build_seq", "Youtube/tiny", 1000)]), None)
                .unwrap();
        // 2.5× the pinned 1000 ns is the default ceiling; 2600 is beyond it.
        let slow = report_with(&[("build_seq", "Youtube/tiny", 2600)]);
        let outcome = compare(&slow, &baseline, None).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.regressions.len(), 1);
        assert!(outcome.regressions[0].contains("regressed"), "{outcome:?}");
        // 2400 is inside the band.
        let ok = report_with(&[("build_seq", "Youtube/tiny", 2400)]);
        assert!(compare(&ok, &baseline, None).unwrap().passed());
    }

    #[test]
    fn tolerance_precedence_entry_beats_cli_beats_file_default() {
        let mut baseline = baseline_from_report(
            &report_with(&[("build_seq", "Youtube/tiny", 1000)]),
            Some(10),
        )
        .unwrap();
        // File default 10% → 1200 regresses…
        let fresh = report_with(&[("build_seq", "Youtube/tiny", 1200)]);
        assert!(!compare(&fresh, &baseline, None).unwrap().passed());
        // …CLI override 50% admits it…
        assert!(compare(&fresh, &baseline, Some(50)).unwrap().passed());
        // …and a per-entry 5% band beats both.
        let text = baseline.render_compact().replace(
            "\"wall_p50_ns\":1000",
            "\"wall_p50_ns\":1000,\"tolerance_pct\":5",
        );
        baseline = Json::parse(&text).unwrap();
        assert!(!compare(&fresh, &baseline, Some(50)).unwrap().passed());
    }

    #[test]
    fn missing_benchmark_fails_but_unbaselined_only_warns() {
        let baseline = baseline_from_report(
            &report_with(&[
                ("build_seq", "Youtube/tiny", 1000),
                ("query_topk", "Youtube/tiny", 500),
            ]),
            None,
        )
        .unwrap();
        // query_topk vanished; a new benchmark appeared.
        let fresh = report_with(&[
            ("build_seq", "Youtube/tiny", 1000),
            ("intersect_hub_bitset", "synthetic/hub", 200),
        ]);
        let outcome = compare(&fresh, &baseline, None).unwrap();
        assert!(!outcome.passed());
        assert_eq!(outcome.missing.len(), 1);
        assert!(outcome.missing[0].contains("query_topk"));
        assert_eq!(outcome.unbaselined.len(), 1);
        assert!(outcome.unbaselined[0].contains("intersect_hub_bitset"));
    }

    #[test]
    fn large_improvements_are_surfaced_for_rebaselining() {
        let baseline =
            baseline_from_report(&report_with(&[("build_seq", "Youtube/tiny", 10_000)]), None)
                .unwrap();
        let fast = report_with(&[("build_seq", "Youtube/tiny", 1000)]);
        let outcome = compare(&fast, &baseline, None).unwrap();
        assert!(outcome.passed());
        assert_eq!(outcome.improvements.len(), 1);
    }

    #[test]
    fn malformed_inputs_error_instead_of_passing() {
        let report = report_with(&[("build_seq", "Youtube/tiny", 1000)]);
        let baseline = baseline_from_report(&report, None).unwrap();
        assert!(compare(&Json::Null, &baseline, None).is_err());
        assert!(compare(&report, &Json::Null, None).is_err());
        let bad_schema = Json::parse(
            &baseline
                .render_compact()
                .replace(BASELINE_SCHEMA, "esd-bench-baseline/v0"),
        )
        .unwrap();
        let err = compare(&report, &bad_schema, None).unwrap_err();
        assert!(err.contains("schema"), "{err}");
        assert!(baseline_from_report(&Json::Null, None).is_err());
    }

    #[test]
    fn validate_baseline_flags_entry_violations() {
        let doc = Json::parse(
            r#"{"schema":"esd-bench-baseline/v1","default_tolerance_pct":"x",
                "benchmarks":[{"name":"a"},{"name":"b","dataset":"d","wall_p50_ns":1,
                "tolerance_pct":"y"}]}"#,
        )
        .unwrap();
        let errors = validate_baseline(&doc);
        assert!(
            errors.iter().any(|e| e.contains("default_tolerance_pct")),
            "{errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("name\"/\"dataset")),
            "{errors:?}"
        );
        assert!(
            errors
                .iter()
                .any(|e| e.contains("\"tolerance_pct\" is not an integer")),
            "{errors:?}"
        );
    }
}
