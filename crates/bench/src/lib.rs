//! Shared helpers for the benchmark harness and criterion benches.
//!
//! The `experiments` binary (see `src/bin/experiments.rs`) regenerates every
//! table and figure of the paper's evaluation; the criterion benches under
//! `benches/` provide statistically solid timings of the individual kernels.

#![warn(missing_docs)]

pub mod gate;
pub mod report;
pub mod suite;

use std::time::{Duration, Instant};

/// Times a closure once and returns `(result, elapsed)`.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Wall-time distribution over the repetitions of one benchmark, from
/// [`time_stats`]. Each repetition is timed individually, so outliers (a
/// cold cache, a page-fault storm) show up in `max` instead of silently
/// inflating the mean.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeStats {
    /// Number of repetitions measured.
    pub reps: usize,
    /// Fastest single repetition.
    pub min: Duration,
    /// Median repetition.
    pub p50: Duration,
    /// Slowest single repetition.
    pub max: Duration,
    /// Arithmetic mean over all repetitions.
    pub mean: Duration,
}

/// Times a closure over `reps` repetitions, each timed individually, and
/// returns the min/median/max/mean distribution.
pub fn time_stats(reps: usize, mut f: impl FnMut()) -> TimeStats {
    assert!(reps > 0);
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let start = Instant::now();
        f();
        samples.push(start.elapsed());
    }
    samples.sort_unstable();
    let total: Duration = samples.iter().sum();
    TimeStats {
        reps,
        min: samples[0],
        p50: samples[reps / 2],
        max: samples[reps - 1],
        mean: total / reps as u32,
    }
}

/// Times a closure over `reps` repetitions and returns the mean duration of
/// one call. Prefer [`time_stats`] where the spread matters — a mean alone
/// hides outlier repetitions.
pub fn time_avg(reps: usize, f: impl FnMut()) -> Duration {
    time_stats(reps, f).mean
}

/// Formats a duration in the unit that reads best.
pub fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.2} µs", s * 1e6)
    }
}

/// Formats a byte count in MiB/KiB.
pub fn fmt_bytes(bytes: usize) -> String {
    const MIB: f64 = 1024.0 * 1024.0;
    let b = bytes as f64;
    if b >= MIB {
        format!("{:.1} MiB", b / MIB)
    } else {
        format!("{:.1} KiB", b / 1024.0)
    }
}

/// A minimal fixed-width text table writer for paper-style output.
#[derive(Debug)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// A table with the given column headers.
    pub fn new(header: &[&str]) -> Self {
        Self {
            header: header
                .iter()
                .map(std::string::ToString::to_string)
                .collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Renders as RFC-4180-ish CSV (quotes applied when a cell contains a
    /// comma, quote, or newline).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let push_row = |cells: &[String], out: &mut String| {
            let line: Vec<String> = cells.iter().map(|c| quote(c)).collect();
            out.push_str(&line.join(","));
            out.push('\n');
        };
        push_row(&self.header, &mut out);
        for row in &self.rows {
            push_row(row, &mut out);
        }
        out
    }

    /// Renders with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for i in 0..cols {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{:<width$}", cells[i], width = widths[i]));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(&["name", "m"]);
        t.row(vec!["x".into(), "10".into()]);
        t.row(vec!["longer".into(), "2".into()]);
        let s = t.render();
        assert!(s.contains("name"));
        assert_eq!(s.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn table_rejects_bad_row() {
        let mut t = TextTable::new(&["a"]);
        t.row(vec!["x".into(), "y".into()]);
    }

    #[test]
    fn csv_escaping() {
        let mut t = TextTable::new(&["a", "b"]);
        t.row(vec!["plain".into(), "has,comma".into()]);
        t.row(vec!["has\"quote".into(), "x".into()]);
        let csv = t.to_csv();
        assert_eq!(csv.lines().next(), Some("a,b"));
        assert!(csv.contains("\"has,comma\""));
        assert!(csv.contains("\"has\"\"quote\""));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00 s");
        assert_eq!(fmt_duration(Duration::from_millis(5)), "5.00 ms");
        assert_eq!(fmt_duration(Duration::from_micros(7)), "7.00 µs");
    }

    #[test]
    fn timing_helpers() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_secs() < 5);
        let avg = time_avg(3, || {});
        assert!(avg.as_secs() < 1);
    }

    #[test]
    fn time_stats_orders_the_distribution() {
        let mut i = 0u64;
        let stats = time_stats(5, || {
            i += 1;
            if i == 3 {
                std::thread::sleep(Duration::from_millis(2));
            }
        });
        assert_eq!(stats.reps, 5);
        assert!(stats.min <= stats.p50);
        assert!(stats.p50 <= stats.max);
        assert!(stats.max >= Duration::from_millis(2), "outlier in max");
        assert!(stats.min <= stats.mean && stats.mean <= stats.max);
    }

    #[test]
    #[should_panic(expected = "reps > 0")]
    fn time_stats_rejects_zero_reps() {
        let _ = time_stats(0, || {});
    }
}
