//! Closed-loop load generator for the `esd-serve` query service.
//!
//! Drives a mixed read/write workload through [`esd_serve::ServiceHandle`]s at each
//! requested worker count and reports throughput, tail latency, and cache
//! behaviour, then measures query availability while a 1000-edge batch is
//! being applied. The first row (0 workers = inline single-threaded mode)
//! is the scaling baseline.
//!
//! ```text
//! loadgen [--n V] [--ops N] [--write-ratio R] [--workers 0,2,8] [--seed S]
//!         [--shards 1,4] [--k-set 10,50,100] [--families component,truss]
//!         [--durable]
//! ```
//!
//! Queries draw `k` log-uniformly from `[16, 2048]`, `τ` from `[1, 4]`,
//! and the query [`Family`] uniformly from the `--families` mix (default:
//! component only), so the result cache sees a realistic mix of hits and
//! misses instead of one key served entirely from cache. `--k-set`
//! replaces the log-uniform draw with a fixed menu of `k` values — the API/dashboard serving shape
//! where repeated keys let the result caches work; it is the reference
//! configuration for the sharded read-scaling report
//! (`docs/benchmarking.md`).
//!
//! With `--durable`, every phase is run twice — once in-memory and once
//! with the write-ahead log armed under the ack-after-fsync policy on a
//! scratch directory — so the `wal` column makes the durability tax
//! directly readable: same workload, same workers, `u_p99_us` with and
//! without an fsync on the ack path.
//!
//! With `--shards 1,4` each phase runs once per shard count through the
//! shard-transparent [`EngineHandle`] — the identical client loop against
//! a [`ShardedService`] — and the report prints per-phase read throughput
//! plus the read-scaling ratio of every row against the first-shard-count
//! baseline at the same worker count.

use esd_core::maintain::{GraphUpdate, MutationBatch};
use esd_core::Family;
use esd_graph::{generators, Graph};
use esd_serve::{
    AckPolicy, DurabilityConfig, EngineHandle, QueryRequest, RetryPolicy, Service, ServiceConfig,
    ShardConfig, ShardedService,
};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

struct Config {
    n: u32,
    ops: u64,
    write_ratio: f64,
    workers: Vec<usize>,
    shards: Vec<u32>,
    /// Fixed menu of query `k` values; empty means log-uniform 16..2048.
    /// A small repeated set models API/dashboard serving, where result
    /// caches (per-engine and merged) actually get to work.
    k_set: Vec<usize>,
    /// Query families in the read mix; each query draws one uniformly.
    /// The default (component only) reproduces the historical workload.
    families: Vec<Family>,
    seed: u64,
    durable: bool,
}

fn parse_args() -> Result<Config, String> {
    let mut cfg = Config {
        n: 600,
        ops: 2000,
        write_ratio: 0.05,
        workers: vec![0, 8],
        shards: vec![1],
        k_set: Vec::new(),
        families: vec![Family::Component],
        seed: 0xBE7C,
        durable: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "--n" => cfg.n = value("--n")?.parse().map_err(|e| format!("bad --n: {e}"))?,
            "--ops" => {
                cfg.ops = value("--ops")?
                    .parse()
                    .map_err(|e| format!("bad --ops: {e}"))?;
            }
            "--write-ratio" => {
                cfg.write_ratio = value("--write-ratio")?
                    .parse()
                    .map_err(|e| format!("bad --write-ratio: {e}"))?;
            }
            "--workers" => {
                cfg.workers = value("--workers")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad --workers: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--seed" => {
                cfg.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--shards" => {
                cfg.shards = value("--shards")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad --shards: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--durable" => cfg.durable = true,
            "--k-set" => {
                cfg.k_set = value("--k-set")?
                    .split(',')
                    .map(|t| t.trim().parse().map_err(|e| format!("bad --k-set: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--families" => {
                cfg.families = value("--families")?
                    .split(',')
                    .map(|t| {
                        Family::parse(t.trim())
                            .ok_or_else(|| format!("bad --families: unknown family {t:?}"))
                    })
                    .collect::<Result<_, _>>()?;
            }
            other => {
                return Err(format!(
                    "unknown flag {other} \
                     (--n | --ops | --write-ratio | --workers | --shards | --k-set \
                     | --families | --seed | --durable)"
                ))
            }
        }
    }
    if !(0.0..=1.0).contains(&cfg.write_ratio) {
        return Err("--write-ratio must be in [0, 1]".into());
    }
    if cfg.shards.iter().any(|&s| s == 0) {
        return Err("--shards entries must be at least 1".into());
    }
    if cfg.k_set.iter().any(|&k| k == 0) {
        return Err("--k-set entries must be at least 1".into());
    }
    if cfg.families.is_empty() {
        return Err("--families needs at least one family".into());
    }
    Ok(cfg)
}

/// Per-client outcome accounting. Nothing is silently dropped: every
/// attempted operation lands in exactly one of `succeeded` / `failed`,
/// with `shed` counting the succeeded queries that were answered from a
/// slightly-stale snapshot under overload.
#[derive(Debug, Default, Clone, Copy)]
struct ClientStats {
    attempted: u64,
    succeeded: u64,
    reads_ok: u64,
    /// Client-observed time spent inside query calls, in nanoseconds.
    /// `reads_ok / read_ns` is the read throughput with write stalls
    /// factored out — the comparable number across write-cost regimes.
    read_ns: u64,
    shed: u64,
    failed: u64,
}

impl ClientStats {
    fn merge(&mut self, other: ClientStats) {
        self.attempted += other.attempted;
        self.succeeded += other.succeeded;
        self.reads_ok += other.reads_ok;
        self.read_ns += other.read_ns;
        self.shed += other.shed;
        self.failed += other.failed;
    }
}

/// One closed-loop client: issues `ops` operations back to back, each a
/// query (log-uniform `k`, random `τ`, family drawn from the configured
/// mix) or a single-edge update, retrying
/// transient failures with jittered backoff and tallying every outcome.
/// Shard-transparent: the same loop drives a [`esd_serve::ServiceHandle`] or a
/// [`ShardedHandle`](esd_serve::ShardedHandle) through [`EngineHandle`].
fn client<H: EngineHandle>(
    handle: &H,
    n: u32,
    ops: u64,
    write_ratio: f64,
    k_set: &[usize],
    families: &[Family],
    seed: u64,
) -> ClientStats {
    let mut rng = StdRng::seed_from_u64(seed);
    let retry = RetryPolicy::new(seed);
    let mut stats = ClientStats::default();
    for _ in 0..ops {
        stats.attempted += 1;
        if rng.gen_bool(write_ratio) {
            let (a, b) = loop {
                let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
                if a != b {
                    break (a, b);
                }
            };
            let mut batch = MutationBatch::new();
            if rng.gen_bool(0.7) {
                batch.insert(a, b);
            } else {
                batch.remove(a, b);
            }
            match handle.submit_with_retry(batch, &retry) {
                Ok(_) => stats.succeeded += 1,
                Err(_) => stats.failed += 1,
            }
        } else {
            let k = if k_set.is_empty() {
                (16.0 * 128f64.powf(rng.gen::<f64>())) as usize // 16..2048
            } else {
                k_set[rng.gen_range(0..k_set.len())]
            };
            let tau = rng.gen_range(1..=4);
            let family = families[rng.gen_range(0..families.len())];
            let started = Instant::now();
            let outcome =
                handle.execute_with_retry(QueryRequest::new(k, tau).with_family(family), &retry);
            stats.read_ns += started.elapsed().as_nanos() as u64;
            match outcome {
                Ok(resp) => {
                    stats.succeeded += 1;
                    stats.reads_ok += 1;
                    if resp.degraded {
                        stats.shed += 1;
                    }
                }
                Err(_) => stats.failed += 1,
            }
        }
    }
    stats
}

/// What one phase measured, alongside its rendered table row.
struct PhaseOutcome {
    row: Vec<String>,
    throughput: f64,
    read_throughput: f64,
    update_p99: u64,
}

/// Drives the closed-loop clients over any engine handle and aggregates
/// their stats plus the wall-clock of the whole phase.
fn drive<H: EngineHandle>(
    handle: &H,
    cfg: &Config,
    workers: usize,
) -> (ClientStats, std::time::Duration) {
    let clients = workers.max(1);
    let per_client = cfg.ops / clients as u64;
    let started = Instant::now();
    let mut stats = ClientStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                let handle = handle.clone();
                let seed = cfg.seed + 1000 * c as u64;
                scope.spawn(move || {
                    client(
                        &handle,
                        cfg.n,
                        per_client,
                        cfg.write_ratio,
                        &cfg.k_set,
                        &cfg.families,
                        seed,
                    )
                })
            })
            .collect();
        for h in handles {
            stats.merge(h.join().expect("client thread"));
        }
    });
    (stats, started.elapsed())
}

/// Runs one workload phase against a fresh service — sharded when
/// `shards > 1`, durably when `wal_dir` is given (WAL armed,
/// ack-after-fsync; per-shard subdirectories under a fleet) — and returns
/// the row for the report table plus the measured throughputs.
fn run_phase(
    g: &Graph,
    cfg: &Config,
    workers: usize,
    shards: u32,
    wal_dir: Option<&std::path::Path>,
) -> PhaseOutcome {
    let per_shard = ServiceConfig {
        workers,
        durability: wal_dir.map(|dir| {
            let mut durability = DurabilityConfig::new(dir);
            durability.ack_policy = AckPolicy::Fsync;
            durability
        }),
        ..ServiceConfig::default()
    };
    // (retries, q_p50, q_p99, u_p99, hit_rate) sampled before shutdown.
    // The sharded service's shard 0 sees every scatter-gather round, so its
    // registry is the representative one for latency/hit-rate columns.
    let sample = |m: &esd_serve::MetricsRegistry| {
        (
            m.retries.get(),
            m.query_latency.percentile_us(0.50),
            m.query_latency.percentile_us(0.99),
            m.update_latency.percentile_us(0.99),
            m.hit_rate(),
        )
    };
    let (stats, wall, (retries, q_p50, q_p99, update_p99, hit_rate)) = if shards > 1 {
        let service = ShardedService::try_start(g, &ShardConfig { shards, per_shard })
            .expect("scratch WAL directory opens");
        let handle = service.handle();
        let (stats, wall) = drive(&handle, cfg, workers);
        let m = sample(handle.shard_handles()[0].metrics());
        service.shutdown();
        (stats, wall, m)
    } else {
        let service = Service::try_start(g, &per_shard).expect("scratch WAL directory opens");
        let handle = service.handle();
        let (stats, wall) = drive(&handle, cfg, workers);
        let m = sample(handle.metrics());
        service.shutdown();
        (stats, wall, m)
    };
    let throughput = stats.succeeded as f64 / wall.as_secs_f64();
    // Reads per second of read-side busy time: write stalls (which scale
    // with the write fan-out, not the read path) are factored out.
    let read_throughput = stats.reads_ok as f64 / (stats.read_ns.max(1) as f64 / 1e9);
    let row = vec![
        shards.to_string(),
        workers.to_string(),
        if wal_dir.is_some() { "fsync" } else { "off" }.to_string(),
        stats.attempted.to_string(),
        stats.succeeded.to_string(),
        retries.to_string(),
        stats.shed.to_string(),
        stats.failed.to_string(),
        esd_bench::fmt_duration(wall),
        format!("{throughput:.0}"),
        format!("{read_throughput:.0}"),
        format!("{q_p50}"),
        format!("{q_p99}"),
        format!("{update_p99}"),
        format!("{:.0}%", hit_rate * 100.0),
    ];
    PhaseOutcome {
        row,
        throughput,
        read_throughput,
        update_p99,
    }
}

/// Applies one 1000-edge batch while reader threads keep querying, and
/// reports how many queries completed during the apply window — the
/// snapshot-isolation availability claim, measured.
fn run_update_storm(g: &Graph, cfg: &Config) {
    let service = Service::start(
        g,
        &ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5707);
    let mut batch = Vec::with_capacity(1000);
    while batch.len() < 1000 {
        let (a, b) = (rng.gen_range(0..cfg.n), rng.gen_range(0..cfg.n));
        if a == b {
            continue;
        }
        batch.push(if rng.gen_bool(0.7) {
            GraphUpdate::Insert(a, b)
        } else {
            GraphUpdate::Remove(a, b)
        });
    }

    let done = Arc::new(AtomicBool::new(false));
    let during = Arc::new(AtomicU64::new(0));
    let refused = Arc::new(AtomicU64::new(0));
    let readers: Vec<_> = (0..2u64)
        .map(|r| {
            let handle = handle.clone();
            let done = Arc::clone(&done);
            let during = Arc::clone(&during);
            let refused = Arc::clone(&refused);
            let seed = cfg.seed ^ (0xAA00 + r);
            std::thread::spawn(move || {
                let retry = RetryPolicy::new(seed);
                while !done.load(Ordering::Relaxed) {
                    match handle.execute_with_retry(QueryRequest::new(100, 2), &retry) {
                        Ok(_) => during.fetch_add(1, Ordering::Relaxed),
                        Err(_) => refused.fetch_add(1, Ordering::Relaxed),
                    };
                }
            })
        })
        .collect();

    let (outcome, wall) = esd_bench::time(|| {
        handle
            .submit(MutationBatch::from_raw(batch))
            .expect("batch failed")
    });
    done.store(true, Ordering::Relaxed);
    for r in readers {
        r.join().unwrap();
    }
    println!(
        "update storm: 1000-edge batch applied in {} ({} applied, {} no-op(s), {} rejected, epoch {}); \
         {} queries completed during the apply window, {} failed past retries (p99 {} µs)",
        esd_bench::fmt_duration(wall),
        outcome.applied,
        outcome.noop,
        outcome.rejected,
        outcome.epoch,
        during.load(Ordering::Relaxed),
        refused.load(Ordering::Relaxed),
        handle.metrics().query_latency.percentile_us(0.99),
    );
    service.shutdown();
}

fn main() {
    let cfg = match parse_args() {
        Ok(cfg) => cfg,
        Err(msg) => {
            eprintln!("error: {msg}");
            std::process::exit(2);
        }
    };
    let n = cfg.n as usize;
    let g = generators::clique_overlap(n, n * 3 / 4, 6, cfg.seed);
    println!(
        "loadgen: {} vertices, {} edges; {} ops/phase, {:.0}% writes, families [{}], {} core(s)\n",
        g.num_vertices(),
        g.num_edges(),
        cfg.ops,
        cfg.write_ratio * 100.0,
        cfg.families
            .iter()
            .map(|f| f.name())
            .collect::<Vec<_>>()
            .join(", "),
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
    );

    let mut table = esd_bench::TextTable::new(&[
        "shards",
        "workers",
        "wal",
        "attempted",
        "ok",
        "retries",
        "shed",
        "failed",
        "wall",
        "ops/s",
        "reads/s",
        "q_p50_us",
        "q_p99_us",
        "u_p99_us",
        "hit_rate",
    ]);
    let mut baseline = None;
    let mut speedups = Vec::new();
    // Read throughput of the first shard count, per worker count — the
    // baseline for the read-scaling lines.
    let mut read_base: Vec<(usize, f64)> = Vec::new();
    let mut read_scaling = Vec::new();
    let mut wal_costs = Vec::new();
    for &shards in &cfg.shards {
        for &workers in &cfg.workers {
            let phase = run_phase(&g, &cfg, workers, shards, None);
            table.row(phase.row);
            let base = *baseline.get_or_insert(phase.throughput);
            speedups.push((shards, workers, phase.throughput / base));
            match read_base.iter().find(|(w, _)| *w == workers) {
                None => read_base.push((workers, phase.read_throughput)),
                Some(&(_, base)) => {
                    read_scaling.push((shards, workers, phase.read_throughput / base));
                }
            }
            if cfg.durable {
                let dir = std::env::temp_dir().join(format!(
                    "esd_loadgen_wal_{}_{shards}_{workers}",
                    std::process::id()
                ));
                std::fs::remove_dir_all(&dir).ok();
                let durable = run_phase(&g, &cfg, workers, shards, Some(&dir));
                table.row(durable.row);
                wal_costs.push((shards, workers, phase.update_p99, durable.update_p99));
                std::fs::remove_dir_all(&dir).ok();
            }
        }
    }
    println!("{}", table.render());
    for (shards, workers, speedup) in &speedups[1..] {
        println!("speedup at {shards} shard(s) × {workers} workers vs baseline: {speedup:.2}x");
    }
    for (shards, workers, scaling) in &read_scaling {
        println!(
            "read scaling at {shards} shard(s) × {workers} worker(s) vs {} shard(s): {scaling:.2}x",
            cfg.shards[0],
        );
    }
    for (shards, workers, off, fsync) in &wal_costs {
        println!(
            "durable ack cost at {shards} shard(s) × {workers} worker(s): u_p99 {fsync} µs with \
             fsync vs {off} µs off ({:+} µs per acked update)",
            *fsync as i64 - *off as i64,
        );
    }
    println!();
    run_update_storm(&g, &cfg);
}
