//! Regenerates every table and figure of the paper's evaluation (§VI).
//!
//! ```text
//! experiments [--scale tiny|small|bench] [--csv <dir>]
//!             [table1|fig5|fig6|fig7|fig8|fig9|fig10|fig11|case_dblp|case_words|ablation|churn|serve|all]
//! ```
//!
//! `--csv <dir>` additionally writes each table as `<dir>/<name>.csv`. The
//! output here is human-oriented text/CSV; the machine-readable JSON perf
//! baseline (stage timings + kernel counters) comes from `esd bench --json`
//! instead (see `docs/observability.md`).
//!
//! Each experiment prints a paper-style text table. Absolute numbers differ
//! from the paper (1-core container, synthetic surrogates — see DESIGN.md
//! §7); the comparisons the paper draws (who wins, by what order of
//! magnitude, how curves move with k/τ/size) are the reproduction target
//! and are recorded against the paper in EXPERIMENTS.md.

use esd_bench::{fmt_bytes, fmt_duration, time, TextTable};
use esd_core::online::{online_topk_with_stats, UpperBound};
use esd_core::{EsdIndex, MaintainedIndex};
use esd_datasets::{dblp_case::dblp_case, load, specs, words::word_association, Scale};
use esd_graph::{metrics::GraphStats, subgraph, Graph};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::time::Duration;

const KS: [usize; 6] = [1, 10, 50, 100, 150, 200];
const TAUS: [u32; 6] = [1, 2, 3, 4, 5, 6];
const DEFAULT_K: usize = 100;
const DEFAULT_TAU: u32 = 3;

/// Directory for `--csv` table dumps (None = stdout only).
static CSV_DIR: std::sync::OnceLock<Option<std::path::PathBuf>> = std::sync::OnceLock::new();

/// Prints a table and, under `--csv <dir>`, also writes `<dir>/<name>.csv`.
fn emit(name: &str, heading: &str, t: &TextTable) {
    println!("{heading}\n{}", t.render());
    if let Some(Some(dir)) = CSV_DIR.get().map(|d| d.as_ref()) {
        let path = dir.join(format!("{name}.csv"));
        if let Err(e) = std::fs::write(&path, t.to_csv()) {
            eprintln!("warning: cannot write {}: {e}", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Small;
    let mut csv_dir: Option<std::path::PathBuf> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--csv" => {
                let dir = std::path::PathBuf::from(it.next().expect("--csv needs a directory"));
                std::fs::create_dir_all(&dir).expect("create --csv directory");
                csv_dir = Some(dir);
            }
            "--scale" => {
                let v = it.next().expect("--scale needs a value");
                scale = match v.as_str() {
                    "tiny" => Scale::Tiny,
                    "small" => Scale::Small,
                    "bench" => Scale::Bench,
                    other => panic!("unknown scale {other:?}"),
                };
            }
            other => wanted.push(other.to_string()),
        }
    }
    if wanted.is_empty() || wanted.iter().any(|w| w == "all") {
        wanted = [
            "table1",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "case_dblp",
            "case_words",
            "ablation",
            "churn",
            "serve",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    CSV_DIR.set(csv_dir).expect("csv dir set once");
    println!("# ESD experiments (scale = {scale:?})\n");
    for w in wanted {
        match w.as_str() {
            "table1" => table1(scale),
            "fig5" => fig5(scale),
            "fig6" | "fig6a" | "fig6b" => fig6(scale),
            "fig7" => fig7(scale),
            "fig8" => fig8(scale),
            "fig9" => fig9(scale),
            "fig10" => fig10(scale),
            "fig11" => fig11(scale),
            "case_dblp" => case_dblp(),
            "case_words" => case_words(),
            "ablation" => {
                ablation(scale);
                ablation_topk(scale);
            }
            "churn" => churn(scale),
            "serve" => serve(scale),
            other => eprintln!("unknown experiment {other:?} — skipping"),
        }
    }
}

/// Table I: dataset statistics (surrogate vs original).
fn table1(scale: Scale) {
    println!("## Table I — datasets (surrogates at {scale:?} scale vs the paper's originals)\n");
    let mut t = TextTable::new(&[
        "Dataset",
        "n",
        "m",
        "d_max",
        "δ",
        "paper n",
        "paper m",
        "paper d_max",
        "paper δ",
    ]);
    for spec in specs() {
        let g = load(spec.name, scale);
        let s = GraphStats::compute(&g);
        t.row(vec![
            spec.name.into(),
            s.n.to_string(),
            s.m.to_string(),
            s.d_max.to_string(),
            s.degeneracy.to_string(),
            spec.paper_n.to_string(),
            spec.paper_m.to_string(),
            spec.paper_dmax.to_string(),
            spec.paper_delta.to_string(),
        ]);
    }
    emit("table1", "", &t);
}

fn run_online(
    g: &Graph,
    k: usize,
    tau: u32,
    which: UpperBound,
) -> (
    Vec<esd_core::ScoredEdge>,
    esd_core::online::OnlineStats,
    Duration,
) {
    let ((r, s), d) = time(|| online_topk_with_stats(g, k, tau, which));
    (r, s, d)
}

/// Fig 5: OnlineBFS vs OnlineBFS+ with varying k and τ (Pokec, LiveJournal).
fn fig5(scale: Scale) {
    println!("## Fig 5 — OnlineBFS vs OnlineBFS+ (dequeue-twice with each bound)\n");
    for name in ["Pokec", "LiveJournal"] {
        let g = load(name, scale);
        let mut t = TextTable::new(&[
            "k (τ=3)",
            "OnlineBFS",
            "OnlineBFS+",
            "speedup",
            "exact evals BFS",
            "exact evals BFS+",
        ]);
        for k in KS {
            let (r1, s1, d1) = run_online(&g, k, DEFAULT_TAU, UpperBound::MinDegree);
            let (r2, s2, d2) = run_online(&g, k, DEFAULT_TAU, UpperBound::CommonNeighbor);
            assert_eq!(r1, r2, "variants must agree");
            t.row(vec![
                k.to_string(),
                fmt_duration(d1),
                fmt_duration(d2),
                format!("{:.1}x", d1.as_secs_f64() / d2.as_secs_f64().max(1e-9)),
                s1.exact_evaluations.to_string(),
                s2.exact_evaluations.to_string(),
            ]);
        }
        emit(
            &format!("fig5_{name}_k"),
            &format!("### {name}, varying k"),
            &t,
        );

        let mut t = TextTable::new(&["τ (k=100)", "OnlineBFS", "OnlineBFS+", "speedup"]);
        for tau in TAUS {
            let (_, _, d1) = run_online(&g, DEFAULT_K, tau, UpperBound::MinDegree);
            let (_, _, d2) = run_online(&g, DEFAULT_K, tau, UpperBound::CommonNeighbor);
            t.row(vec![
                tau.to_string(),
                fmt_duration(d1),
                fmt_duration(d2),
                format!("{:.1}x", d1.as_secs_f64() / d2.as_secs_f64().max(1e-9)),
            ]);
        }
        emit(
            &format!("fig5_{name}_tau"),
            &format!("### {name}, varying τ"),
            &t,
        );
    }
}

/// Fig 6: (a) index vs graph size; (b) ESDIndex vs ESDIndex+ build time.
fn fig6(scale: Scale) {
    println!("## Fig 6 — ESDIndex size and construction time\n");
    let mut ta = TextTable::new(&[
        "Dataset",
        "graph size",
        "index size",
        "ratio",
        "entries",
        "|C|",
    ]);
    let mut tb = TextTable::new(&[
        "Dataset",
        "ESDIndex (Alg 2)",
        "ESDIndex+ (Alg 3)",
        "speedup",
        "components: BFS / 4-clique",
        "shared list fill",
    ]);
    for spec in specs() {
        let g = load(spec.name, scale);
        // Phase breakdown: the component computation is where Algorithms 2
        // and 3 differ; the H(c) list fill is identical for both.
        let (comps_bfs, d_comp_bfs) = time(|| esd_core::index::EdgeComponents::by_bfs(&g));
        let (comps_fc, d_comp_fc) = time(|| esd_core::index::EdgeComponents::by_four_cliques(&g));
        let (index_fast, d_fill) = time(|| esd_core::index::assemble_index(&g, &comps_fc));
        let _ = &comps_bfs;
        let d_basic = d_comp_bfs + d_fill;
        let d_fast = d_comp_fc + d_fill;
        ta.row(vec![
            spec.name.into(),
            fmt_bytes(g.byte_size()),
            fmt_bytes(index_fast.byte_size()),
            format!(
                "{:.1}x",
                index_fast.byte_size() as f64 / g.byte_size() as f64
            ),
            index_fast.total_entries().to_string(),
            index_fast.num_lists().to_string(),
        ]);
        tb.row(vec![
            spec.name.into(),
            fmt_duration(d_basic),
            fmt_duration(d_fast),
            format!(
                "{:.1}x",
                d_basic.as_secs_f64() / d_fast.as_secs_f64().max(1e-9)
            ),
            format!("{} / {}", fmt_duration(d_comp_bfs), fmt_duration(d_comp_fc)),
            fmt_duration(d_fill),
        ]);
    }
    emit("fig6a", "### (a) index size vs graph size", &ta);
    emit(
        "fig6b",
        "### (b) construction time (components phase + shared fill)",
        &tb,
    );
}

/// Fig 7: PESDIndex+ speedup with increasing thread count.
fn fig7(scale: Scale) {
    println!("## Fig 7 — parallel index construction (PESDIndex+)\n");
    println!(
        "note: this machine exposes {} CPU core(s); wall-clock speedup is\n\
         hardware-capped, so per-worker balance is reported alongside.\n",
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    );
    for name in ["Pokec", "LiveJournal"] {
        let g = load(name, scale);
        let (_, base) = time(|| EsdIndex::build_fast(&g));
        let mut t = TextTable::new(&[
            "threads",
            "PESDIndex+ time",
            "speedup vs Alg 3",
            "cliques/worker (min..max)",
        ]);
        for threads in [1usize, 2, 4, 8, 16, 20] {
            let ((_, report), d) = time(|| EsdIndex::build_parallel_with_report(&g, threads));
            let (min, max) = (
                report.cliques_per_worker.iter().min().copied().unwrap_or(0),
                report.cliques_per_worker.iter().max().copied().unwrap_or(0),
            );
            t.row(vec![
                threads.to_string(),
                fmt_duration(d),
                format!("{:.2}x", base.as_secs_f64() / d.as_secs_f64().max(1e-9)),
                format!("{min}..{max}"),
            ]);
        }
        emit(&format!("fig7_{name}"), &format!("### {name}"), &t);
    }
}

/// Fig 8: OnlineBFS+ vs IndexSearch across datasets, varying k and τ.
fn fig8(scale: Scale) {
    println!("## Fig 8 — OnlineBFS+ vs IndexSearch\n");
    for spec in specs() {
        let g = load(spec.name, scale);
        let index = EsdIndex::build_fast(&g);
        let mut t = TextTable::new(&["param", "OnlineBFS+", "IndexSearch", "speedup"]);
        for k in KS {
            let (online, _, d_on) = run_online(&g, k, DEFAULT_TAU, UpperBound::CommonNeighbor);
            let (fast, d_ix) = time(|| index.query(k, DEFAULT_TAU));
            assert_eq!(online, fast, "IndexSearch must agree with OnlineBFS+");
            t.row(vec![
                format!("k={k} (τ=3)"),
                fmt_duration(d_on),
                fmt_duration(d_ix),
                format!("{:.0}x", d_on.as_secs_f64() / d_ix.as_secs_f64().max(1e-9)),
            ]);
        }
        for tau in TAUS {
            let (online, _, d_on) = run_online(&g, DEFAULT_K, tau, UpperBound::CommonNeighbor);
            let (fast, d_ix) = time(|| index.query(DEFAULT_K, tau));
            assert_eq!(online, fast);
            t.row(vec![
                format!("τ={tau} (k=100)"),
                fmt_duration(d_on),
                fmt_duration(d_ix),
                format!("{:.0}x", d_on.as_secs_f64() / d_ix.as_secs_f64().max(1e-9)),
            ]);
        }
        emit(
            &format!("fig8_{}", spec.name),
            &format!("### {}", spec.name),
            &t,
        );
    }
}

/// Fig 9: scalability on LiveJournal subgraphs (20%–100% of edges/vertices).
fn fig9(scale: Scale) {
    println!("## Fig 9 — scalability (LiveJournal subgraphs)\n");
    let g = load("LiveJournal", scale);
    type Sampler = fn(&Graph, f64, u64) -> Graph;
    let samplers: [(&str, Sampler); 2] = [
        ("edges", subgraph::sample_edges),
        ("vertices", subgraph::sample_vertices),
    ];
    for (label, sample) in samplers {
        let mut t = TextTable::new(&["fraction", "m", "OnlineBFS+", "index build", "IndexSearch"]);
        for pct in [20, 40, 60, 80, 100] {
            let sub = if pct == 100 {
                g.clone()
            } else {
                sample(&g, pct as f64 / 100.0, 0x5CA1E)
            };
            let (_, _, d_on) = run_online(&sub, DEFAULT_K, DEFAULT_TAU, UpperBound::CommonNeighbor);
            let (index, d_build) = time(|| EsdIndex::build_fast(&sub));
            let (_, d_ix) = time(|| index.query(DEFAULT_K, DEFAULT_TAU));
            t.row(vec![
                format!("{pct}%"),
                sub.num_edges().to_string(),
                fmt_duration(d_on),
                fmt_duration(d_build),
                fmt_duration(d_ix),
            ]);
        }
        emit(
            &format!("fig9_{label}"),
            &format!("### sampling {label}"),
            &t,
        );
    }
}

/// Fig 10: PESDIndex+ scalability (1 thread vs 20 threads) on subgraphs.
fn fig10(scale: Scale) {
    println!("## Fig 10 — PESDIndex+ scalability (LiveJournal subgraphs)\n");
    let g = load("LiveJournal", scale);
    let mut t = TextTable::new(&["fraction", "m", "t=1", "t=20", "speedup"]);
    for pct in [20, 40, 60, 80, 100] {
        let sub = if pct == 100 {
            g.clone()
        } else {
            subgraph::sample_edges(&g, pct as f64 / 100.0, 0x5CA1E)
        };
        let (_, d1) = time(|| EsdIndex::build_parallel(&sub, 1));
        let (_, d20) = time(|| EsdIndex::build_parallel(&sub, 20));
        t.row(vec![
            format!("{pct}%"),
            sub.num_edges().to_string(),
            fmt_duration(d1),
            fmt_duration(d20),
            format!("{:.2}x", d1.as_secs_f64() / d20.as_secs_f64().max(1e-9)),
        ]);
    }
    emit("fig10", "", &t);
}

/// Fig 11: average time of 1000 edge insertions and deletions per dataset.
fn fig11(scale: Scale) {
    println!("## Fig 11 — index maintenance (1000 insertions / 1000 deletions)\n");
    let mut t = TextTable::new(&[
        "Dataset",
        "avg Insertion",
        "avg Deletion",
        "full build",
        "build / deletion",
    ]);
    for spec in specs() {
        let g = load(spec.name, scale);
        let (_, d_build) = time(|| EsdIndex::build_fast(&g));
        let mut index = MaintainedIndex::new(&g);
        let mut rng = StdRng::seed_from_u64(0xF1611);
        // 1000 random existing edges, each deleted then re-inserted (the
        // graph is unchanged overall, matching the paper's protocol).
        let m = g.num_edges();
        let victims: Vec<esd_graph::Edge> = (0..1000.min(m))
            .map(|_| g.edge(rng.gen_range(0..m) as u32))
            .collect();
        let (mut del, mut ins) = (Duration::ZERO, Duration::ZERO);
        let mut performed = 0u32;
        for e in &victims {
            let (removed, d1) = time(|| index.remove_edge(e.u, e.v));
            if !removed {
                continue; // duplicate pick already deleted
            }
            let (_, d2) = time(|| index.insert_edge(e.u, e.v));
            del += d1;
            ins += d2;
            performed += 1;
        }
        let avg_del = del / performed.max(1);
        t.row(vec![
            spec.name.into(),
            fmt_duration(ins / performed.max(1)),
            fmt_duration(avg_del),
            fmt_duration(d_build),
            format!(
                "{:.0}x",
                d_build.as_secs_f64() / avg_del.as_secs_f64().max(1e-9)
            ),
        ]);
    }
    emit("fig11", "", &t);
}

/// Exp-7 / Fig 12: the DBLP-style case study (ESD vs CN vs BT).
fn case_dblp() {
    println!("## Fig 12 — case study: collaboration bridges (τ = 2)\n");
    let case = dblp_case(6, 40, 3);
    let g = &case.graph;
    let index = EsdIndex::build_fast(g);
    let mut t = TextTable::new(&[
        "method",
        "rank",
        "edge",
        "common nbrs",
        "components",
        "areas spanned",
    ]);
    let describe = |u: u32, v: u32| {
        let members = g.common_neighbors(u, v);
        let sizes = esd_core::score::component_sizes(g, u, v);
        let mut areas: Vec<usize> = members
            .iter()
            .map(|&w| case.area_of[w as usize])
            .filter(|&a| a != usize::MAX)
            .collect();
        areas.sort_unstable();
        areas.dedup();
        (members.len(), sizes.len(), areas.len())
    };
    let mut add = |method: &str, rank: usize, u: u32, v: u32| {
        let (cn, comps, areas) = describe(u, v);
        t.row(vec![
            method.into(),
            (rank + 1).to_string(),
            esd_graph::Edge::new(u, v).to_string(),
            cn.to_string(),
            comps.to_string(),
            areas.to_string(),
        ]);
    };
    for (rank, s) in index.query(2, 2).iter().enumerate() {
        add("ESD", rank, s.edge.u, s.edge.v);
    }
    for (rank, s) in esd_core::baselines::topk_common_neighbors(g, 2)
        .iter()
        .enumerate()
    {
        add("CN", rank, s.edge.u, s.edge.v);
    }
    for (rank, s) in esd_core::baselines::topk_betweenness(g, 2)
        .iter()
        .enumerate()
    {
        add("BT", rank, s.edge.u, s.edge.v);
    }
    emit("fig12", "", &t);
    // Under --csv, also render the top edges' ego-networks as Graphviz DOT
    // (the actual Fig 12 artwork).
    if let Some(Some(dir)) = CSV_DIR.get().map(|d| d.as_ref()) {
        for (method, edge) in [
            ("esd", index.query(1, 2).first().map(|s| s.edge)),
            (
                "cn",
                esd_core::baselines::topk_common_neighbors(g, 1)
                    .first()
                    .map(|s| s.edge),
            ),
            (
                "bt",
                esd_core::baselines::topk_betweenness(g, 1)
                    .first()
                    .map(|s| s.edge),
            ),
        ] {
            if let Some(e) = edge {
                let dot = esd_graph::dot::ego_network_dot(g, e.u, e.v, |_| None);
                let path = dir.join(format!("fig12_{method}_top_edge.dot"));
                if let Err(err) = std::fs::write(&path, dot) {
                    eprintln!("warning: cannot write {}: {err}", path.display());
                }
            }
        }
    }
    println!(
        "reading: ESD edges have many shared collaborators split across many\n\
         areas (strong multi-context ties); CN edges sit inside one area; BT\n\
         edges are weak barbell links with few or no shared collaborators.\n"
    );
}

/// Exp-8 / Fig 13: the word-association case study.
fn case_words() {
    println!("## Fig 13 — case study: word associations (τ = 2, k = 2)\n");
    let net = word_association(1_000, 7);
    let index = EsdIndex::build_fast(&net.graph);
    for s in index.query(2, 2) {
        println!(
            "(\"{}\", \"{}\") — structural diversity {}",
            net.word(s.edge.u),
            net.word(s.edge.v),
            s.score
        );
        let members = net.graph.common_neighbors(s.edge.u, s.edge.v);
        let sizes = esd_core::score::component_sizes(&net.graph, s.edge.u, s.edge.v);
        println!(
            "  {} shared words in components of sizes {:?}",
            members.len(),
            sizes
        );
    }
    println!(
        "\nreading: each ego-network component of (\"bank\", \"money\") is a\n\
         distinct shared context (accounts, lending, robbery, …) — Fig 13's\n\
         finding reproduced.\n"
    );
}

/// Ablations over the design choices DESIGN.md calls out: list
/// representation (treap vs frozen), on-disk persistence, intersection
/// kernel, and DAG orientation for the 4-clique enumerator.
fn ablation(scale: Scale) {
    println!("## Ablations\n");

    // (a) Treap lists vs frozen flat lists: query latency and memory.
    let mut ta = TextTable::new(&[
        "Dataset",
        "treap query k=100",
        "frozen query k=100",
        "treap bytes",
        "frozen bytes",
    ]);
    // (b) Persistence: save/load round-trip of the frozen index.
    let mut tb = TextTable::new(&["Dataset", "file size", "save", "load"]);
    for spec in specs() {
        let g = load(spec.name, scale);
        let index = EsdIndex::build_fast(&g);
        let frozen = index.freeze();
        let d_treap = esd_bench::time_avg(200, || {
            std::hint::black_box(index.query(100, DEFAULT_TAU));
        });
        let d_frozen = esd_bench::time_avg(200, || {
            std::hint::black_box(frozen.query(100, DEFAULT_TAU));
        });
        ta.row(vec![
            spec.name.into(),
            fmt_duration(d_treap),
            fmt_duration(d_frozen),
            fmt_bytes(index.byte_size()),
            fmt_bytes(frozen.byte_size()),
        ]);

        let mut buf = Vec::new();
        let (_, d_save) = time(|| frozen.write_to(&mut buf).expect("serialise"));
        let (loaded, d_load) =
            time(|| esd_core::index::FrozenEsdIndex::read_from(buf.as_slice()).expect("load"));
        assert_eq!(
            loaded.query(100, DEFAULT_TAU),
            frozen.query(100, DEFAULT_TAU)
        );
        tb.row(vec![
            spec.name.into(),
            fmt_bytes(buf.len()),
            fmt_duration(d_save),
            fmt_duration(d_load),
        ]);
    }
    emit("ablation_lists", "### (a) H(c) list representation", &ta);
    emit(
        "ablation_persist",
        "### (b) frozen-index persistence (ESDX format)",
        &tb,
    );

    // (c) Intersection kernel for the neighbourhood phase.
    let mut tc = TextTable::new(&["Dataset", "merge only", "adaptive (merge+gallop)"]);
    for name in ["WikiTalk", "Pokec"] {
        let g = load(name, scale);
        let (_, d_merge) = time(|| {
            let mut out = Vec::new();
            let mut total = 0usize;
            for e in g.edges() {
                out.clear();
                esd_graph::intersect::intersect_merge(g.neighbors(e.u), g.neighbors(e.v), &mut out);
                total += out.len();
            }
            total
        });
        let (_, d_adaptive) = time(|| {
            let mut out = Vec::new();
            let mut total = 0usize;
            for e in g.edges() {
                out.clear();
                esd_graph::intersect::intersect_into(g.neighbors(e.u), g.neighbors(e.v), &mut out);
                total += out.len();
            }
            total
        });
        tc.row(vec![
            name.into(),
            fmt_duration(d_merge),
            fmt_duration(d_adaptive),
        ]);
    }
    emit(
        "ablation_intersect",
        "### (c) common-neighbourhood intersection kernel",
        &tc,
    );

    // (d) DAG orientation for 4-clique enumeration.
    let mut td = TextTable::new(&[
        "Dataset",
        "degree ordering",
        "degeneracy ordering",
        "max out-degree (deg/degen)",
    ]);
    for name in ["DBLP", "LiveJournal"] {
        let g = load(name, scale);
        let count_with = |dag: &esd_graph::OrientedGraph| {
            let mut e = esd_graph::cliques::FourCliqueEnumerator::new(g.num_vertices());
            let mut count = 0u64;
            e.enumerate(dag, |_, _, _, _| count += 1);
            count
        };
        let dag_deg = esd_graph::OrientedGraph::by_degree(&g);
        let dag_degen = esd_graph::OrientedGraph::by_degeneracy(&g);
        let (c1, d_deg) = time(|| count_with(&dag_deg));
        let (c2, d_degen) = time(|| count_with(&dag_degen));
        assert_eq!(c1, c2, "orientation must not change the clique count");
        td.row(vec![
            name.into(),
            fmt_duration(d_deg),
            fmt_duration(d_degen),
            format!(
                "{}/{}",
                dag_deg.max_out_degree(),
                dag_degen.max_out_degree()
            ),
        ]);
    }
    emit(
        "ablation_orientation",
        "### (d) orientation for the 4-clique enumerator",
        &td,
    );
}

/// Ablation (e): one-shot top-k strategy — dequeue-twice pruning vs scoring
/// everything with the 4-clique pass. Appended to the `ablation` output by
/// `main` when requested via `ablation_topk`.
fn ablation_topk(scale: Scale) {
    let mut t = TextTable::new(&[
        "Dataset",
        "τ",
        "OnlineBFS+ (pruned)",
        "batch 4-clique (exact-all)",
    ]);
    for name in ["DBLP", "Pokec"] {
        let g = load(name, scale);
        for tau in [1u32, 3, 6] {
            let (a, d_online) = time(|| {
                esd_core::online::online_topk(&g, DEFAULT_K, tau, UpperBound::CommonNeighbor)
            });
            let (b, d_batch) = time(|| esd_core::score::batch_topk(&g, DEFAULT_K, tau));
            assert_eq!(a, b, "strategies must agree");
            t.row(vec![
                name.into(),
                tau.to_string(),
                fmt_duration(d_online),
                fmt_duration(d_batch),
            ]);
        }
    }
    emit("ablation_topk", "### (e) one-shot top-k strategy", &t);
}

/// Extended maintenance experiment (beyond Fig 11): replay a realistic
/// temporal churn trace — growth, triadic closure, decay — against the
/// maintained index, and verify the final state against a rebuild.
fn churn(scale: Scale) {
    println!("## Churn — maintenance under a realistic temporal workload\n");
    let mut t = TextTable::new(&[
        "Dataset",
        "events",
        "inserts",
        "deletes",
        "avg insert",
        "avg delete",
        "total",
        "verified",
    ]);
    for name in ["Youtube", "DBLP"] {
        let g = load(name, scale);
        let trace = esd_datasets::churn::churn_trace(
            &g,
            2000,
            esd_datasets::churn::ChurnMix::default(),
            0xC0,
        );
        let mut index = MaintainedIndex::new(&g);
        let (mut d_ins, mut d_del) = (Duration::ZERO, Duration::ZERO);
        let (mut n_ins, mut n_del) = (0u32, 0u32);
        for &ev in &trace {
            match ev {
                esd_datasets::churn::ChurnEvent::Insert(a, b) => {
                    let (ok, d) = time(|| index.insert_edge(a, b));
                    assert!(ok);
                    d_ins += d;
                    n_ins += 1;
                }
                esd_datasets::churn::ChurnEvent::Remove(a, b) => {
                    let (ok, d) = time(|| index.remove_edge(a, b));
                    assert!(ok);
                    d_del += d;
                    n_del += 1;
                }
            }
        }
        // Verify against a from-scratch rebuild of the final graph.
        let rebuilt = EsdIndex::build_fast(&index.graph().to_graph());
        let verified = (1..=3).all(|tau| index.query(50, tau) == rebuilt.query(50, tau));
        t.row(vec![
            name.into(),
            trace.len().to_string(),
            n_ins.to_string(),
            n_del.to_string(),
            fmt_duration(d_ins / n_ins.max(1)),
            fmt_duration(d_del / n_del.max(1)),
            fmt_duration(d_ins + d_del),
            verified.to_string(),
        ]);
        assert!(verified, "maintained index diverged from rebuild on {name}");
    }
    emit("churn", "", &t);
}

/// Serving experiment (beyond the paper): a mixed query/update stream
/// against the maintained index, contrasted with the rebuild-on-write
/// strategy a static index would force. Read:write ratios span
/// read-heavy to write-heavy regimes.
fn serve(scale: Scale) {
    println!("## Serve — mixed query/update throughput\n");
    let g = load("Pokec", scale);
    let mut t = TextTable::new(&[
        "read:write",
        "ops",
        "maintained ops/s",
        "rebuild-per-write ops/s",
        "advantage",
    ]);
    for (reads, writes) in [(99usize, 1usize), (90, 10), (50, 50)] {
        let trace = esd_datasets::churn::churn_trace(
            &g,
            400 * writes / 100 + 40,
            esd_datasets::churn::ChurnMix::default(),
            0x5E,
        );
        let total_ops = 400usize;
        let mut rng = StdRng::seed_from_u64(0x5EED);

        // Strategy A: maintained index.
        let mut maintained = MaintainedIndex::new(&g);
        let mut write_cursor = 0;
        let (_, d_maintained) = time(|| {
            for op in 0..total_ops {
                if op % 100 < reads {
                    let k = 1 + rng.gen_range(0..100);
                    let tau = 1 + rng.gen_range(0..4);
                    std::hint::black_box(maintained.query(k, tau));
                } else if write_cursor < trace.len() {
                    match trace[write_cursor] {
                        esd_datasets::churn::ChurnEvent::Insert(a, b) => {
                            maintained.insert_edge(a, b);
                        }
                        esd_datasets::churn::ChurnEvent::Remove(a, b) => {
                            maintained.remove_edge(a, b);
                        }
                    }
                    write_cursor += 1;
                }
            }
        });

        // Strategy B: frozen index, rebuilt on every write. One rebuild is
        // timed and amortised analytically to keep the experiment short.
        let frozen = EsdIndex::build_fast(&g).freeze();
        let mut rng = StdRng::seed_from_u64(0x5EED);
        let (_, d_reads) = time(|| {
            for _ in 0..total_ops {
                let k = 1 + rng.gen_range(0..100);
                let tau = 1 + rng.gen_range(0..4);
                std::hint::black_box(frozen.query(k, tau));
            }
        });
        let (_, d_rebuild) = time(|| EsdIndex::build_fast(&g).freeze());
        let writes_done = write_cursor.max(1) as u32;
        let d_static = d_reads + d_rebuild * writes_done;

        let tput_a = total_ops as f64 / d_maintained.as_secs_f64();
        let tput_b = total_ops as f64 / d_static.as_secs_f64();
        t.row(vec![
            format!("{reads}:{writes}"),
            total_ops.to_string(),
            format!("{tput_a:.0}"),
            format!("{tput_b:.0}"),
            format!("{:.0}x", tput_a / tput_b.max(1e-9)),
        ]);
    }
    emit("serve", "", &t);
}
