//! The `esd bench` suites: timed runs of every kernel on bundled surrogate
//! datasets, reported as an [`esd-bench/v1`](crate::report::BENCH_SCHEMA)
//! JSON document.
//!
//! Each benchmark resets the telemetry registry, runs its closure `reps`
//! times with per-repetition wall timing ([`crate::time_stats`]), then
//! snapshots the registry — so the `stages`/`counters` arrays cover exactly
//! that benchmark's repetitions. When the harness was built without the
//! `telemetry` feature the arrays are simply empty and the report says
//! `telemetry_enabled: false`; wall times are always measured by the
//! harness itself and never depend on instrumentation.

use crate::report::{counters_json, stages_json, wall_json, BENCH_SCHEMA};
use crate::time_stats;
use esd_core::index::ParallelBuildReport;
use esd_core::maintain::{GraphUpdate, PipelineReport};
use esd_core::online::{online_topk, UpperBound};
use esd_core::{EsdIndex, Family, FamilySuite, MaintainedIndex};
use esd_datasets::churn::{churn_trace, ChurnEvent, ChurnMix};
use esd_datasets::{load, Scale};
use esd_graph::{Graph, VertexId};
use esd_telemetry::json::Json;

/// Which benchmark suite to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Suite {
    /// One tiny dataset, a handful of repetitions — seconds, CI-friendly.
    Smoke,
    /// All five Table I surrogates at tiny scale — a few minutes.
    Full,
}

impl Suite {
    /// The suite's name as stamped into the report (`"smoke"` / `"full"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Suite::Smoke => "smoke",
            Suite::Full => "full",
        }
    }

    /// Parses a suite name (case-insensitive). `None` on unknown names.
    #[must_use]
    pub fn parse(s: &str) -> Option<Suite> {
        match s.to_ascii_lowercase().as_str() {
            "smoke" => Some(Suite::Smoke),
            "full" => Some(Suite::Full),
            _ => None,
        }
    }

    fn datasets(self) -> Vec<(&'static str, Scale)> {
        match self {
            Suite::Smoke => vec![("Youtube", Scale::Tiny)],
            Suite::Full => esd_datasets::specs()
                .iter()
                .map(|spec| (spec.name, Scale::Tiny))
                .collect(),
        }
    }
}

/// Knobs for [`run`].
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Which suite to run.
    pub suite: Suite,
    /// Repetitions per benchmark (each timed individually).
    pub reps: usize,
    /// Worker threads for the parallel-build benchmark.
    pub threads: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self {
            suite: Suite::Smoke,
            reps: 3,
            threads: 2,
        }
    }
}

fn scale_label(scale: Scale) -> &'static str {
    match scale {
        Scale::Tiny => "tiny",
        Scale::Small => "small",
        Scale::Bench => "bench",
    }
}

/// Runs one benchmark: reset registry → `reps` timed calls → snapshot.
/// Returns the benchmark record plus the raw snapshot (for extras like the
/// work-balance report that the caller appends).
fn bench(name: &str, dataset: &str, reps: usize, f: impl FnMut()) -> Vec<(&'static str, Json)> {
    esd_telemetry::reset();
    let stats = time_stats(reps, f);
    let snap = esd_telemetry::snapshot();
    vec![
        ("name", Json::str(name)),
        ("dataset", Json::str(dataset)),
        ("reps", Json::num_u64(reps as u64)),
        ("wall_ns", wall_json(&stats)),
        ("stages", stages_json(&snap)),
        ("counters", counters_json(&snap)),
    ]
}

fn u64s(v: &[u64]) -> Json {
    Json::Arr(v.iter().map(|&x| Json::num_u64(x)).collect())
}

fn work_balance_json(report: &ParallelBuildReport) -> Json {
    Json::obj(vec![
        ("threads", Json::num_u64(report.threads as u64)),
        ("cliques_per_worker", u64s(&report.cliques_per_worker)),
        ("ops_per_shard", u64s(&report.ops_per_shard)),
    ])
}

fn pipeline_balance_json(report: &PipelineReport) -> Json {
    Json::obj(vec![
        ("threads", Json::num_u64(report.threads as u64)),
        ("groups", Json::num_u64(report.groups as u64)),
        ("recomputed_per_worker", u64s(&report.recomputed_per_worker)),
        ("union_ops_per_worker", u64s(&report.union_ops_per_worker)),
    ])
}

/// The benchmarks run for one dataset. Appends records to `out`.
fn run_dataset(out: &mut Vec<Json>, g: &Graph, dataset: &str, cfg: &SuiteConfig) {
    let reps = cfg.reps;

    out.push(Json::obj(bench("build_seq", dataset, reps, || {
        let _ = EsdIndex::build_fast(g);
    })));

    let mut last_report: Option<ParallelBuildReport> = None;
    let mut fields = bench("build_parallel", dataset, reps, || {
        let (_, report) = EsdIndex::build_parallel_with_report(g, cfg.threads);
        last_report = Some(report);
    });
    if let Some(report) = &last_report {
        fields.push(("work_balance", work_balance_json(report)));
    }
    out.push(Json::obj(fields));

    // Maintenance: remove a prefix of edges and re-insert them, so the
    // index round-trips back to its starting state every repetition.
    let mut maintained = MaintainedIndex::new(g);
    let churn: Vec<_> = g.edges().iter().take(16).copied().collect();
    let removes: Vec<GraphUpdate> = churn
        .iter()
        .map(|e| GraphUpdate::Remove(e.u, e.v))
        .collect();
    let inserts: Vec<GraphUpdate> = churn
        .iter()
        .map(|e| GraphUpdate::Insert(e.u, e.v))
        .collect();
    out.push(Json::obj(bench("maintain", dataset, reps, || {
        let stats = maintained.apply_batch(&removes);
        assert_eq!(stats.applied, churn.len(), "removes must all apply");
        let stats = maintained.apply_batch(&inserts);
        assert_eq!(stats.applied, churn.len(), "inserts must all apply");
    })));

    // Churn batches: a realistic mixed insert/remove trace applied as one
    // batch, then undone by the exact inverse batch (reversed order, flipped
    // ops) so every repetition starts from the same graph. Run through the
    // sequential path and the parallel pipeline so the report exposes the
    // speedup and the `pbatch.*` per-phase breakdown side by side.
    let events = churn_trace(g, 64, ChurnMix::default(), 0x5EED);
    let flip = |e: &ChurnEvent, invert: bool| match (e, invert) {
        (ChurnEvent::Insert(u, v), false) | (ChurnEvent::Remove(u, v), true) => {
            GraphUpdate::Insert(*u, *v)
        }
        (ChurnEvent::Remove(u, v), false) | (ChurnEvent::Insert(u, v), true) => {
            GraphUpdate::Remove(*u, *v)
        }
    };
    let forward: Vec<GraphUpdate> = events.iter().map(|e| flip(e, false)).collect();
    let inverse: Vec<GraphUpdate> = events.iter().rev().map(|e| flip(e, true)).collect();

    let mut maintained = MaintainedIndex::new(g);
    out.push(Json::obj(bench("churn_batch_seq", dataset, reps, || {
        let _ = maintained.apply_batch(&forward);
        let _ = maintained.apply_batch(&inverse);
    })));

    let mut maintained = MaintainedIndex::new(g);
    let mut last_pipeline: Option<PipelineReport> = None;
    let mut fields = bench("churn_batch_parallel", dataset, reps, || {
        let outcome = maintained.apply_batch_parallel(&forward, cfg.threads);
        let undo = maintained.apply_batch_parallel(&inverse, cfg.threads);
        last_pipeline = Some(outcome.report);
        let _ = undo;
    });
    if let Some(report) = &last_pipeline {
        fields.push(("work_balance", pipeline_balance_json(report)));
    }
    out.push(Json::obj(fields));

    let index = EsdIndex::build_fast(g);
    out.push(Json::obj(bench("query_topk", dataset, reps, || {
        let _ = index.query(100, 2);
    })));

    out.push(Json::obj(bench("online_topk", dataset, reps, || {
        let _ = online_topk(g, 10, 2, UpperBound::CommonNeighbor);
    })));

    // Family queries: the per-edge profiles are built once outside the
    // timed region (the build cost is `build_seq`'s territory), then each
    // repetition ranks top-100 under every maintained family so the
    // `family.query` span and `family.queries` counter land in the report.
    let suite = FamilySuite::new(g);
    out.push(Json::obj(bench("family_topk", dataset, reps, || {
        for family in Family::MAINTAINED {
            let _ = suite.query(family, 100, 2);
        }
    })));
}

fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One sweep of a kernel over every hub pair — the unit of work each
/// `intersect_hub_*` repetition times.
fn sweep_kernel(
    pairs: &[(Vec<VertexId>, Vec<VertexId>)],
    scratch: &mut Vec<VertexId>,
    kernel: fn(&[VertexId], &[VertexId], &mut Vec<VertexId>),
) {
    for (a, b) in pairs {
        scratch.clear();
        kernel(a, b, scratch);
        std::hint::black_box(scratch.len());
    }
}

/// The intersection-kernel benchmarks on a synthetic high-degree "hub"
/// workload: pairs of ~4k-element pseudorandom neighbour lists sharing a
/// 32k-id span (≈16 combined members per 64-id word — squarely in the
/// bitset kernel's regime; see `docs/kernels.md`). Each repetition sweeps
/// several distinct pairs so branch predictors see fresh data on every
/// call, as they do inside a real build. The same sweep runs through each
/// kernel directly and once through the adaptive dispatcher, so a report
/// shows the dispatch overhead and which kernel won on this machine.
fn run_kernels(out: &mut Vec<Json>, reps: usize) {
    use esd_graph::intersect;

    const SPAN: u32 = 32 * 1024;
    const PAIRS: u64 = 8;
    let members = |seed: u64| -> Vec<VertexId> {
        (0..SPAN)
            .filter(|&x| splitmix(seed ^ u64::from(x)) & 7 == 0)
            .collect()
    };
    let pairs: Vec<(Vec<VertexId>, Vec<VertexId>)> = (0..PAIRS)
        .map(|i| (members(2 * i + 1), members(2 * i + 2)))
        .collect();
    let mut scratch: Vec<VertexId> = Vec::new();
    type KernelFn = fn(&[VertexId], &[VertexId], &mut Vec<VertexId>);
    let kernels: [(&str, KernelFn); 4] = [
        ("intersect_hub_merge", intersect::intersect_merge),
        ("intersect_hub_gallop", intersect::intersect_gallop),
        ("intersect_hub_bitset", intersect::intersect_bitset),
        ("intersect_hub_adaptive", intersect::intersect_into),
    ];
    for (name, kernel) in kernels {
        out.push(Json::obj(bench(name, "synthetic/hub", reps, || {
            sweep_kernel(&pairs, &mut scratch, kernel);
        })));
    }
}

/// Runs the configured suite and returns the `esd-bench/v1` report. The
/// output always passes [`crate::report::validate`].
#[must_use]
pub fn run(cfg: &SuiteConfig) -> Json {
    assert!(cfg.reps > 0, "reps must be at least 1");
    assert!(cfg.threads > 0, "threads must be at least 1");
    // Measure the intersection-kernel crossovers on this machine before any
    // timed work, so the adaptive dispatcher runs with calibrated thresholds
    // rather than the dev-machine defaults baked into esd-graph.
    let _ = esd_graph::intersect::calibrate();
    let mut benchmarks = Vec::new();
    for (name, scale) in cfg.suite.datasets() {
        let g = load(name, scale);
        let dataset = format!("{name}/{}", scale_label(scale));
        run_dataset(&mut benchmarks, &g, &dataset, cfg);
    }
    run_kernels(&mut benchmarks, cfg.reps);
    Json::obj(vec![
        ("schema", Json::str(BENCH_SCHEMA)),
        ("suite", Json::str(cfg.suite.name())),
        ("telemetry_enabled", Json::Bool(esd_telemetry::enabled())),
        (
            "host",
            Json::obj(vec![("threads", Json::num_u64(cfg.threads as u64))]),
        ),
        ("benchmarks", Json::Arr(benchmarks)),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::validate;

    #[test]
    fn suite_names_round_trip() {
        for suite in [Suite::Smoke, Suite::Full] {
            assert_eq!(Suite::parse(suite.name()), Some(suite));
        }
        assert_eq!(Suite::parse("SMOKE"), Some(Suite::Smoke));
        assert_eq!(Suite::parse("bogus"), None);
    }

    #[test]
    fn smoke_suite_produces_a_valid_report() {
        let cfg = SuiteConfig {
            suite: Suite::Smoke,
            reps: 2,
            threads: 2,
        };
        let report = run(&cfg);
        assert_eq!(validate(&report), Vec::<String>::new());
        assert_eq!(
            report.get("telemetry_enabled").and_then(Json::as_bool),
            Some(esd_telemetry::enabled())
        );
        let benches = report.get("benchmarks").and_then(Json::as_arr).unwrap();
        let names: Vec<_> = benches
            .iter()
            .map(|b| b.get("name").and_then(Json::as_str).unwrap())
            .collect();
        assert_eq!(
            names,
            [
                "build_seq",
                "build_parallel",
                "maintain",
                "churn_batch_seq",
                "churn_batch_parallel",
                "query_topk",
                "online_topk",
                "family_topk",
                "intersect_hub_merge",
                "intersect_hub_gallop",
                "intersect_hub_bitset",
                "intersect_hub_adaptive"
            ]
        );
        // The parallel build always carries its work-balance report.
        let parallel = &benches[1];
        let wb = parallel.get("work_balance").expect("work balance");
        assert_eq!(wb.get("threads").and_then(Json::as_u64), Some(2));

        // …and so does the parallel churn-batch pipeline, in its own shape.
        let churn = &benches[4];
        let wb = churn.get("work_balance").expect("pipeline work balance");
        assert!(wb.get("groups").and_then(Json::as_u64).is_some());
        assert!(wb
            .get("recomputed_per_worker")
            .and_then(Json::as_arr)
            .is_some());
        assert!(wb
            .get("union_ops_per_worker")
            .and_then(Json::as_arr)
            .is_some());
        if esd_telemetry::enabled() {
            // The pipeline's per-phase spans must show up as stage rows.
            let stages = churn.get("stages").and_then(Json::as_arr).unwrap();
            for phase in ["pbatch.plan", "pbatch.recompute", "pbatch.commit"] {
                assert!(
                    stages
                        .iter()
                        .any(|s| s.get("name").and_then(Json::as_str) == Some(phase)),
                    "missing stage {phase}"
                );
            }
        }

        // With telemetry armed, the counters must reflect real kernel work;
        // without it, the arrays must be empty rather than fabricated.
        let seq = &benches[0];
        let counters = seq.get("counters").and_then(Json::as_arr).unwrap();
        if esd_telemetry::enabled() {
            assert!(
                counters
                    .iter()
                    .any(|c| c.get("name").and_then(Json::as_str) == Some("cliques.enumerated")),
                "sequential build must count cliques"
            );
        } else {
            assert!(counters.is_empty());
        }

        // Round-trip: render, parse, re-validate.
        let text = report.render_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(validate(&parsed), Vec::<String>::new());
    }
}
