//! The `esd-bench/v1` machine-readable perf report.
//!
//! [`suite::run`](crate::suite::run) produces one of these documents per
//! invocation; CI archives it as `BENCH_<suite>.json` so every PR leaves a
//! perf baseline behind. The document shape is frozen by [`BENCH_SCHEMA`]
//! and checked by [`validate`] — `esd bench --check FILE` and the CI
//! `bench-smoke` job both fail on any violation, which is what keeps the
//! archived baselines diffable across PRs. The full field catalogue, with a
//! worked example, lives in `docs/observability.md`.

use crate::TimeStats;
use esd_telemetry::json::Json;
use esd_telemetry::Snapshot;

/// Schema identifier stamped into every report; bump on any shape change.
pub const BENCH_SCHEMA: &str = "esd-bench/v1";

/// Renders a [`TimeStats`] as the `wall_ns` object of a benchmark record.
#[must_use]
pub fn wall_json(stats: &TimeStats) -> Json {
    let ns =
        |d: std::time::Duration| Json::num_u64(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    Json::obj(vec![
        ("min", ns(stats.min)),
        ("p50", ns(stats.p50)),
        ("max", ns(stats.max)),
        ("mean", ns(stats.mean)),
    ])
}

/// Renders a telemetry [`Snapshot`]'s stage rows as the `stages` array of a
/// benchmark record (same row shape as `esd-telemetry/v1`).
#[must_use]
pub fn stages_json(snap: &Snapshot) -> Json {
    Json::Arr(
        snap.stages
            .iter()
            .map(|s| {
                Json::obj(vec![
                    ("name", Json::str(s.name)),
                    ("total_ns", Json::num_u64(s.total_ns)),
                    ("count", Json::num_u64(s.count)),
                    ("max_ns", Json::num_u64(s.max_ns)),
                ])
            })
            .collect(),
    )
}

/// Renders a telemetry [`Snapshot`]'s counter rows as the `counters` array
/// of a benchmark record.
#[must_use]
pub fn counters_json(snap: &Snapshot) -> Json {
    Json::Arr(
        snap.counters
            .iter()
            .map(|c| {
                Json::obj(vec![
                    ("name", Json::str(c.name)),
                    ("value", Json::num_u64(c.value)),
                ])
            })
            .collect(),
    )
}

fn expect_u64(errors: &mut Vec<String>, at: &str, v: Option<&Json>, field: &str) -> Option<u64> {
    match v.and_then(Json::as_u64) {
        Some(n) => Some(n),
        None => {
            errors.push(format!("{at}: missing or non-integer field {field:?}"));
            None
        }
    }
}

fn check_stage_rows(errors: &mut Vec<String>, at: &str, rows: &Json) {
    let Some(rows) = rows.as_arr() else {
        errors.push(format!("{at}: \"stages\" is not an array"));
        return;
    };
    for (i, row) in rows.iter().enumerate() {
        let at = format!("{at}.stages[{i}]");
        if row.get("name").and_then(Json::as_str).is_none() {
            errors.push(format!("{at}: missing string field \"name\""));
        }
        for field in ["total_ns", "count", "max_ns"] {
            expect_u64(errors, &at, row.get(field), field);
        }
        if row.get("count").and_then(Json::as_u64) == Some(0) {
            errors.push(format!("{at}: zero-count stage rows must be omitted"));
        }
    }
}

fn check_counter_rows(errors: &mut Vec<String>, at: &str, rows: &Json) {
    let Some(rows) = rows.as_arr() else {
        errors.push(format!("{at}: \"counters\" is not an array"));
        return;
    };
    for (i, row) in rows.iter().enumerate() {
        let at = format!("{at}.counters[{i}]");
        if row.get("name").and_then(Json::as_str).is_none() {
            errors.push(format!("{at}: missing string field \"name\""));
        }
        expect_u64(errors, &at, row.get("value"), "value");
    }
}

/// A `work_balance` block comes in two shapes: the parallel *build* reports
/// per-worker clique counts and per-shard ops; the parallel *batch pipeline*
/// reports conflict-group count and per-worker recompute/union work. Both
/// must carry `threads` plus their shape's per-worker arrays.
fn check_work_balance(errors: &mut Vec<String>, at: &str, wb: &Json) {
    let at = format!("{at}.work_balance");
    expect_u64(errors, &at, wb.get("threads"), "threads");
    let build_shape = wb.get("cliques_per_worker").is_some() || wb.get("ops_per_shard").is_some();
    let arrays: &[&str] = if build_shape {
        &["cliques_per_worker", "ops_per_shard"]
    } else {
        expect_u64(errors, &at, wb.get("groups"), "groups");
        &["recomputed_per_worker", "union_ops_per_worker"]
    };
    for &field in arrays {
        match wb.get(field).and_then(Json::as_arr) {
            Some(arr) => {
                if arr.iter().any(|v| v.as_u64().is_none()) {
                    errors.push(format!("{at}: {field:?} has a non-integer element"));
                }
            }
            None => errors.push(format!("{at}: missing array field {field:?}")),
        }
    }
}

fn check_benchmark(errors: &mut Vec<String>, i: usize, b: &Json) {
    let at = format!("benchmarks[{i}]");
    if b.get("name").and_then(Json::as_str).is_none() {
        errors.push(format!("{at}: missing string field \"name\""));
    }
    if b.get("dataset").and_then(Json::as_str).is_none() {
        errors.push(format!("{at}: missing string field \"dataset\""));
    }
    if expect_u64(errors, &at, b.get("reps"), "reps") == Some(0) {
        errors.push(format!("{at}: \"reps\" must be at least 1"));
    }
    match b.get("wall_ns") {
        Some(wall) if wall.as_obj().is_some() => {
            let min = expect_u64(errors, &at, wall.get("min"), "wall_ns.min");
            let p50 = expect_u64(errors, &at, wall.get("p50"), "wall_ns.p50");
            let max = expect_u64(errors, &at, wall.get("max"), "wall_ns.max");
            expect_u64(errors, &at, wall.get("mean"), "wall_ns.mean");
            if let (Some(min), Some(p50), Some(max)) = (min, p50, max) {
                if !(min <= p50 && p50 <= max) {
                    errors.push(format!("{at}: wall_ns is not ordered min <= p50 <= max"));
                }
            }
        }
        _ => errors.push(format!("{at}: missing object field \"wall_ns\"")),
    }
    match b.get("stages") {
        Some(rows) => check_stage_rows(errors, &at, rows),
        None => errors.push(format!("{at}: missing field \"stages\"")),
    }
    match b.get("counters") {
        Some(rows) => check_counter_rows(errors, &at, rows),
        None => errors.push(format!("{at}: missing field \"counters\"")),
    }
    match b.get("work_balance") {
        Some(wb) => check_work_balance(errors, &at, wb),
        None => {
            // The two parallel benchmarks must prove how their work was
            // spread: a report without the block is a schema violation, so
            // `esd bench --check` (and the CI bench-smoke job) fails fast.
            let name = b.get("name").and_then(Json::as_str).unwrap_or("");
            if matches!(name, "build_parallel" | "churn_batch_parallel") {
                errors.push(format!(
                    "{at}: benchmark {name:?} must carry a \"work_balance\" block"
                ));
            }
        }
    }
}

/// Validates a parsed report against the `esd-bench/v1` schema. Returns an
/// empty vector when the document conforms; each entry otherwise is one
/// human-readable violation with a JSON-path-ish location.
#[must_use]
pub fn validate(doc: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    if doc.as_obj().is_none() {
        return vec!["root: document is not a JSON object".into()];
    }
    match doc.get("schema").and_then(Json::as_str) {
        Some(s) if s == BENCH_SCHEMA => {}
        Some(s) => errors.push(format!("root: schema {s:?}, expected {BENCH_SCHEMA:?}")),
        None => errors.push("root: missing string field \"schema\"".into()),
    }
    if doc.get("suite").and_then(Json::as_str).is_none() {
        errors.push("root: missing string field \"suite\"".into());
    }
    if doc
        .get("telemetry_enabled")
        .and_then(Json::as_bool)
        .is_none()
    {
        errors.push("root: missing bool field \"telemetry_enabled\"".into());
    }
    match doc.get("host") {
        Some(host) => {
            if expect_u64(&mut errors, "host", host.get("threads"), "threads") == Some(0) {
                errors.push("host: \"threads\" must be at least 1".into());
            }
        }
        None => errors.push("root: missing object field \"host\"".into()),
    }
    match doc.get("benchmarks").and_then(Json::as_arr) {
        Some(benches) => {
            if benches.is_empty() {
                errors.push("benchmarks: must not be empty".into());
            }
            for (i, b) in benches.iter().enumerate() {
                check_benchmark(&mut errors, i, b);
            }
        }
        None => errors.push("root: missing array field \"benchmarks\"".into()),
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn minimal_report() -> Json {
        Json::obj(vec![
            ("schema", Json::str(BENCH_SCHEMA)),
            ("suite", Json::str("smoke")),
            ("telemetry_enabled", Json::Bool(false)),
            ("host", Json::obj(vec![("threads", Json::num_u64(2))])),
            (
                "benchmarks",
                Json::Arr(vec![Json::obj(vec![
                    ("name", Json::str("build_seq")),
                    ("dataset", Json::str("Youtube/tiny")),
                    ("reps", Json::num_u64(3)),
                    (
                        "wall_ns",
                        Json::obj(vec![
                            ("min", Json::num_u64(10)),
                            ("p50", Json::num_u64(20)),
                            ("max", Json::num_u64(30)),
                            ("mean", Json::num_u64(20)),
                        ]),
                    ),
                    ("stages", Json::Arr(vec![])),
                    ("counters", Json::Arr(vec![])),
                ])]),
            ),
        ])
    }

    #[test]
    fn minimal_report_validates() {
        assert_eq!(validate(&minimal_report()), Vec::<String>::new());
    }

    #[test]
    fn wall_json_round_trips_through_the_validator() {
        let stats = TimeStats {
            reps: 3,
            min: Duration::from_nanos(5),
            p50: Duration::from_nanos(7),
            max: Duration::from_nanos(11),
            mean: Duration::from_nanos(8),
        };
        let wall = wall_json(&stats);
        assert_eq!(wall.get("min").and_then(Json::as_u64), Some(5));
        assert_eq!(wall.get("mean").and_then(Json::as_u64), Some(8));
    }

    #[test]
    fn validator_flags_schema_and_ordering_violations() {
        let mut doc = minimal_report();
        // Wrong schema string.
        if let Json::Obj(fields) = &mut doc {
            fields[0].1 = Json::str("esd-bench/v0");
        }
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("schema")), "{errors:?}");

        // Unordered wall_ns: min > max.
        let text = minimal_report()
            .render_compact()
            .replace("\"min\":10", "\"min\":99");
        let doc = Json::parse(&text).unwrap();
        let errors = validate(&doc);
        assert!(
            errors.iter().any(|e| e.contains("min <= p50 <= max")),
            "{errors:?}"
        );
    }

    #[test]
    fn validator_rejects_non_objects_and_empty_suites() {
        assert!(!validate(&Json::Null).is_empty());
        let doc = Json::obj(vec![
            ("schema", Json::str(BENCH_SCHEMA)),
            ("suite", Json::str("smoke")),
            ("telemetry_enabled", Json::Bool(true)),
            ("host", Json::obj(vec![("threads", Json::num_u64(1))])),
            ("benchmarks", Json::Arr(vec![])),
        ]);
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("must not be empty")));
    }

    #[test]
    fn validator_requires_work_balance_on_parallel_benchmarks() {
        // The pipeline shape (groups + per-worker recompute arrays) passes.
        let text = minimal_report().render_compact().replace(
            "\"counters\":[]",
            "\"counters\":[],\"work_balance\":{\"threads\":2,\"groups\":3,\
             \"recomputed_per_worker\":[4,5],\"union_ops_per_worker\":[6,7]}",
        );
        assert_eq!(validate(&Json::parse(&text).unwrap()), Vec::<String>::new());
        // A parallel benchmark with no work_balance block at all is rejected.
        for name in ["build_parallel", "churn_batch_parallel"] {
            let text = minimal_report()
                .render_compact()
                .replace("\"build_seq\"", &format!("{name:?}"));
            let errors = validate(&Json::parse(&text).unwrap());
            assert!(
                errors.iter().any(|e| e.contains("work_balance")),
                "{name}: {errors:?}"
            );
        }
    }

    #[test]
    fn validator_checks_stage_counter_and_balance_rows() {
        let text = minimal_report().render_compact().replace(
            "\"stages\":[]",
            "\"stages\":[{\"name\":\"build.fill\",\"total_ns\":5,\"count\":0,\"max_ns\":5}]",
        );
        let doc = Json::parse(&text).unwrap();
        assert!(validate(&doc).iter().any(|e| e.contains("zero-count")));

        let text = minimal_report().render_compact().replace(
            "\"counters\":[]",
            "\"counters\":[{\"name\":\"x\"}],\"work_balance\":{\"threads\":2,\"cliques_per_worker\":[1,\"x\"],\"ops_per_shard\":[3]}",
        );
        let doc = Json::parse(&text).unwrap();
        let errors = validate(&doc);
        assert!(errors.iter().any(|e| e.contains("\"value\"")), "{errors:?}");
        assert!(
            errors.iter().any(|e| e.contains("non-integer element")),
            "{errors:?}"
        );
    }
}
