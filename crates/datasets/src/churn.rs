//! A temporal churn workload: a realistic update stream for the dynamic
//! index (§V), beyond Fig 11's delete-and-reinsert protocol.
//!
//! Social networks evolve by three mechanisms, all represented here:
//!
//! * **growth** — new vertices attach preferentially to high-degree ones;
//! * **triadic closure** — open triangles close (a friend of a friend
//!   becomes a friend), which is exactly what creates new 4-cliques and
//!   therefore stresses Algorithm 4's union cascade;
//! * **decay** — old ties are dropped uniformly, stressing Algorithm 5's
//!   component rebuilds.

use esd_graph::{DynamicGraph, Graph, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// One event of a churn trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChurnEvent {
    /// A tie forms.
    Insert(VertexId, VertexId),
    /// A tie dissolves.
    Remove(VertexId, VertexId),
}

/// Mechanism mix of a churn trace (weights are relative, not normalised).
#[derive(Debug, Clone, Copy)]
pub struct ChurnMix {
    /// Weight of growth events (new vertex + preferential edge).
    pub growth: u32,
    /// Weight of triadic-closure events.
    pub closure: u32,
    /// Weight of decay events.
    pub decay: u32,
}

impl Default for ChurnMix {
    fn default() -> Self {
        // Closure-heavy, mildly growing — the regime where maintenance cost
        // is dominated by 4-clique updates.
        Self {
            growth: 2,
            closure: 5,
            decay: 3,
        }
    }
}

/// Generates `steps` churn events against (a copy of) `initial`. The events
/// are valid when replayed in order on `initial`: inserts never duplicate,
/// removals always hit a live edge.
pub fn churn_trace(initial: &Graph, steps: usize, mix: ChurnMix, seed: u64) -> Vec<ChurnEvent> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC_4024);
    let mut g = DynamicGraph::from_graph(initial);
    let mut events = Vec::with_capacity(steps);
    let total = (mix.growth + mix.closure + mix.decay).max(1);
    let mut next_vertex = g.num_vertices() as VertexId;

    // Degree-proportional sampling via a repeated-endpoint reservoir.
    let mut endpoints: Vec<VertexId> = initial.edges().iter().flat_map(|e| [e.u, e.v]).collect();

    let mut guard_failures = 0;
    while events.len() < steps && guard_failures < 50 * steps + 100 {
        let roll = rng.gen_range(0..total);
        if roll < mix.growth {
            // New vertex with two preferential ties (so it can join
            // triangles later).
            if endpoints.is_empty() {
                guard_failures += 1;
                continue;
            }
            let v = next_vertex;
            next_vertex += 1;
            g.ensure_vertex(v);
            for _ in 0..2 {
                let t = endpoints[rng.gen_range(0..endpoints.len())];
                if g.insert_edge(v, t) {
                    events.push(ChurnEvent::Insert(v, t));
                    endpoints.push(v);
                    endpoints.push(t);
                    if events.len() == steps {
                        break;
                    }
                }
            }
        } else if roll < mix.growth + mix.closure {
            // Close an open triangle: pick a vertex, two of its neighbours
            // that are not yet adjacent.
            if endpoints.is_empty() {
                guard_failures += 1;
                continue;
            }
            let a = endpoints[rng.gen_range(0..endpoints.len())];
            let nbrs = g.neighbors(a);
            if nbrs.len() < 2 {
                guard_failures += 1;
                continue;
            }
            let x = nbrs[rng.gen_range(0..nbrs.len())];
            let y = nbrs[rng.gen_range(0..nbrs.len())];
            if x == y || g.has_edge(x, y) {
                guard_failures += 1;
                continue;
            }
            g.insert_edge(x, y);
            events.push(ChurnEvent::Insert(x, y));
            endpoints.push(x);
            endpoints.push(y);
        } else {
            // Decay: drop a random live edge (sampled via a random endpoint).
            if g.num_edges() == 0 || endpoints.is_empty() {
                guard_failures += 1;
                continue;
            }
            let a = endpoints[rng.gen_range(0..endpoints.len())];
            let Some(&b) = g.neighbors(a).first() else {
                guard_failures += 1;
                continue;
            };
            let pick = g.neighbors(a)[rng.gen_range(0..g.degree(a))];
            let b = if rng.gen_bool(0.5) { pick } else { b };
            g.remove_edge(a, b);
            events.push(ChurnEvent::Remove(a, b));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_graph::generators;

    #[test]
    fn trace_is_valid_when_replayed() {
        let g = generators::clique_overlap(100, 80, 5, 3);
        let trace = churn_trace(&g, 300, ChurnMix::default(), 1);
        assert_eq!(trace.len(), 300);
        let mut replay = DynamicGraph::from_graph(&g);
        let (mut ins, mut del) = (0, 0);
        for &ev in &trace {
            match ev {
                ChurnEvent::Insert(a, b) => {
                    replay.ensure_vertex(a.max(b));
                    assert!(replay.insert_edge(a, b), "duplicate insert {a}-{b}");
                    ins += 1;
                }
                ChurnEvent::Remove(a, b) => {
                    assert!(replay.remove_edge(a, b), "remove of missing {a}-{b}");
                    del += 1;
                }
            }
        }
        assert!(ins > 0 && del > 0, "both mechanisms fire: {ins}/{del}");
    }

    #[test]
    fn closure_events_create_triangles() {
        let g = generators::clique_overlap(80, 60, 5, 2);
        let closure_only = ChurnMix {
            growth: 0,
            closure: 1,
            decay: 0,
        };
        let trace = churn_trace(&g, 100, closure_only, 5);
        let mut replay = DynamicGraph::from_graph(&g);
        for &ev in &trace {
            let ChurnEvent::Insert(a, b) = ev else {
                panic!("closure only inserts")
            };
            // By construction the endpoints share at least one neighbour.
            assert!(!replay.common_neighbors(a, b).is_empty());
            replay.insert_edge(a, b);
        }
    }

    #[test]
    fn deterministic() {
        let g = generators::erdos_renyi(60, 0.1, 9);
        assert_eq!(
            churn_trace(&g, 120, ChurnMix::default(), 7),
            churn_trace(&g, 120, ChurnMix::default(), 7)
        );
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Graph::from_edges(0, &[]);
        let trace = churn_trace(&empty, 50, ChurnMix::default(), 0);
        assert!(trace.is_empty(), "nothing to grow from or decay");
        let tiny = generators::complete(3);
        let trace = churn_trace(
            &tiny,
            10,
            ChurnMix {
                growth: 1,
                closure: 0,
                decay: 0,
            },
            0,
        );
        assert!(!trace.is_empty());
    }
}
