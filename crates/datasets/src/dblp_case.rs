//! A planted research-community graph for the Fig 12 case study.
//!
//! The paper's DB subgraph of DBLP shows three behaviours:
//!
//! * top **ESD** edges are *bridge collaborations*: two prolific co-authors
//!   whose shared collaborators split into several research communities;
//! * top **CN** edges live inside one dense community (one or two
//!   ego-network components);
//! * top **BT** edges are *weak barbell links* between communities whose
//!   endpoints share almost no collaborators.
//!
//! This generator plants all three ground truths: `communities` dense
//! areas, a few designated bridge author pairs wired into several areas,
//! and one weak barbell link.

use esd_graph::{generators, Edge, Graph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// The planted graph plus its ground truth.
#[derive(Debug)]
pub struct DblpCase {
    /// The collaboration graph.
    pub graph: Graph,
    /// Designated high-ESD bridge pairs (prolific cross-area duos).
    pub bridges: Vec<Edge>,
    /// The weak barbell edge BT should surface.
    pub barbell: Edge,
    /// Research area of each ordinary author (`usize::MAX` for the planted
    /// special vertices).
    pub area_of: Vec<usize>,
}

/// Builds the case-study graph: `communities` areas of `area_size` authors
/// each, plus planted bridges and a barbell.
pub fn dblp_case(communities: usize, area_size: usize, seed: u64) -> DblpCase {
    assert!(communities >= 4, "need at least 4 areas to bridge across");
    assert!(
        area_size >= 12,
        "areas must be large enough to host contexts"
    );
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD801);
    let n_regular = communities * area_size;
    // 2 bridge pairs + 1 barbell pair = 6 special vertices.
    let n = n_regular + 6;
    let mut b = GraphBuilder::with_capacity(n, n_regular * 6);
    let mut area_of = vec![usize::MAX; n];

    // Dense intra-area collaboration: overlapping small cliques per area.
    for a in 0..communities {
        let base = (a * area_size) as VertexId;
        let papers =
            generators::clique_overlap(area_size, area_size * 2, 5, seed ^ (a as u64) << 8);
        for e in papers.edges() {
            b.add_edge(base + e.u, base + e.v);
        }
        for v in 0..area_size {
            area_of[a * area_size + v] = a;
        }
    }
    // Sparse random inter-area noise.
    for _ in 0..n_regular / 20 {
        let (u, v) = (rng.gen_range(0..n_regular), rng.gen_range(0..n_regular));
        if u / area_size != v / area_size {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }

    // Planted ESD bridges: a pair (x, y) that co-authors with a small
    // *connected* group in each of several areas — each group becomes one
    // ego-network component of (x, y).
    let mut bridges = Vec::new();
    for pair in 0..2 {
        let x = (n_regular + 2 * pair) as VertexId;
        let y = (n_regular + 2 * pair + 1) as VertexId;
        b.add_edge(x, y);
        let span = 4 + pair; // bridge 0 spans 4 areas, bridge 1 spans 5
        for a in 0..span.min(communities) {
            let area = (a + pair * 2) % communities;
            // Three distinct members drawn from disjoint thirds of the area
            // (never spilling into a neighbouring area).
            let third = area_size / 3;
            let group: Vec<VertexId> = (0..3)
                .map(|i| (area * area_size + i * third + rng.gen_range(0..third)) as VertexId)
                .collect();
            for &g in &group {
                b.add_edge(x, g);
                b.add_edge(y, g);
            }
            for w in group.windows(2) {
                b.add_edge(w[0], w[1]);
            }
        }
        bridges.push(Edge::new(x, y));
    }

    // Planted barbell: two authors from different areas with one joint
    // paper and no shared collaborators, each deeply embedded in their area.
    let bx = (n_regular + 4) as VertexId;
    let by = (n_regular + 5) as VertexId;
    for i in 0..6 {
        b.add_edge(bx, i as VertexId); // area 0
        b.add_edge(by, (area_size + i) as VertexId); // area 1
    }
    b.add_edge(bx, by);

    DblpCase {
        graph: b.build(),
        bridges,
        barbell: Edge::new(bx, by),
        area_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_bridges_have_high_esd() {
        let case = dblp_case(6, 40, 3);
        for bridge in &case.bridges {
            let score = esd_core::score::edge_score(&case.graph, bridge.u, bridge.v, 2);
            assert!(score >= 3, "bridge {bridge} has only {score} contexts");
        }
        // The larger bridge ranks in the global top-5 at τ = 2.
        let top = esd_core::score::naive_topk(&case.graph, 5, 2);
        assert!(
            top.iter().any(|s| case.bridges.contains(&s.edge)),
            "no planted bridge in the top-5: {top:?}"
        );
    }

    #[test]
    fn barbell_shares_no_collaborators() {
        let case = dblp_case(6, 40, 3);
        assert_eq!(
            case.graph
                .common_neighbor_count(case.barbell.u, case.barbell.v),
            0
        );
        assert_eq!(
            esd_core::score::edge_score(&case.graph, case.barbell.u, case.barbell.v, 1),
            0
        );
    }

    #[test]
    fn cn_top_edges_are_intra_area() {
        let case = dblp_case(6, 40, 3);
        let cn = esd_core::baselines::topk_common_neighbors(&case.graph, 3);
        for s in &cn {
            let (au, av) = (
                case.area_of[s.edge.u as usize],
                case.area_of[s.edge.v as usize],
            );
            assert!(
                au == av && au != usize::MAX,
                "CN edge {} spans areas {au}/{av}",
                s.edge
            );
        }
    }

    #[test]
    fn determinism() {
        let a = dblp_case(5, 30, 9);
        let b = dblp_case(5, 30, 9);
        assert_eq!(a.graph.edges(), b.graph.edges());
        assert_eq!(a.bridges, b.bridges);
    }
}
