//! A miniature word-association network for the Fig 13 case study.
//!
//! The paper uses the USF Free Association norms (5,040 words / 55,258
//! associations) and shows that the top edge `("bank", "money")` has six
//! ego-network components, each a distinct shared context (accounts,
//! lending, robbery, …). This module hand-authors those polysemous cores —
//! real words, real contexts — and pads the graph with generated semantic
//! clusters so the search is non-trivial.

use esd_graph::{generators, Graph, GraphBuilder, VertexId};
use std::collections::HashMap;

/// A word graph: vertices are words, edges are associations.
#[derive(Debug)]
pub struct WordNetwork {
    /// The association graph.
    pub graph: Graph,
    /// `id -> word` (generated filler words are `w<number>`).
    pub vocabulary: Vec<String>,
    /// `word -> id` for the hand-authored words.
    pub ids: HashMap<&'static str, VertexId>,
}

impl WordNetwork {
    /// The word at `v`.
    pub fn word(&self, v: VertexId) -> &str {
        &self.vocabulary[v as usize]
    }
}

/// Hand-authored polysemy cores. Each entry is (hub-pair, contexts); every
/// context is a word list that is (a) fully associated with both hub words
/// and (b) internally chained, forming one ego-network component.
/// One polysemy core: the hub word pair and its list of contexts.
type PolysemyCore = (
    (&'static str, &'static str),
    &'static [&'static [&'static str]],
);

const CORES: &[PolysemyCore] = &[
    (
        ("bank", "money"),
        &[
            // The six contexts of Fig 13.
            &["account", "deposit", "save", "teller", "cash", "check"],
            &["loan", "mortgage", "federal"],
            &["rob", "steal"],
            &["vault", "safe"],
            &["rich", "wealth"],
            &["bill"],
        ],
    ),
    (
        ("wood", "house"),
        &[
            &["build", "carpenter", "nail", "hammer"],
            &["fire", "burn"],
            &["cabin", "log"],
            &["tree", "forest"],
        ],
    ),
    (
        ("cold", "water"),
        &[
            &["ice", "freeze", "winter"],
            &["drink", "thirst"],
            &["shower"],
        ],
    ),
];

/// Builds the word-association network: the hand-authored cores plus
/// `filler_words` generated vocabulary organised into small semantic
/// clusters (so CN/BT baselines have plausible competition).
pub fn word_association(filler_words: usize, seed: u64) -> WordNetwork {
    let mut vocabulary: Vec<String> = Vec::new();
    let mut ids: HashMap<&'static str, VertexId> = HashMap::new();
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();

    let intern = |w: &'static str,
                  vocabulary: &mut Vec<String>,
                  ids: &mut HashMap<&'static str, VertexId>|
     -> VertexId {
        *ids.entry(w).or_insert_with(|| {
            vocabulary.push(w.to_string());
            (vocabulary.len() - 1) as VertexId
        })
    };

    for &((a, b), contexts) in CORES {
        let ia = intern(a, &mut vocabulary, &mut ids);
        let ib = intern(b, &mut vocabulary, &mut ids);
        edges.push((ia, ib));
        for &context in contexts {
            let members: Vec<VertexId> = context
                .iter()
                .map(|&w| intern(w, &mut vocabulary, &mut ids))
                .collect();
            for &w in &members {
                edges.push((ia, w));
                edges.push((ib, w));
            }
            // Chain the context internally: one connected component.
            for pair in members.windows(2) {
                edges.push((pair[0], pair[1]));
            }
        }
    }

    // Generated semantic clusters over the filler vocabulary.
    let core_n = vocabulary.len();
    for i in 0..filler_words {
        vocabulary.push(format!("w{i}"));
    }
    let filler = generators::clique_overlap(filler_words, filler_words / 3, 4, seed ^ 0x30BD);
    let mut b = GraphBuilder::with_capacity(vocabulary.len(), edges.len() + filler.num_edges());
    for (u, v) in edges {
        b.add_edge(u, v);
    }
    for e in filler.edges() {
        b.add_edge(e.u + core_n as VertexId, e.v + core_n as VertexId);
    }
    // A few random associations tying fillers to the cores, so the graph is
    // connected-ish. Hub words are excluded as targets: a filler adjacent to
    // both words of a hub pair would pollute that pair's ego-network.
    use rand::prelude::*;
    let hubs: Vec<VertexId> = CORES
        .iter()
        .flat_map(|&((a, b), _)| [ids[a], ids[b]])
        .collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x30BE);
    if filler_words > 0 {
        for _ in 0..filler_words / 10 {
            let f = core_n as VertexId + rng.gen_range(0..filler_words) as VertexId;
            let c = rng.gen_range(0..core_n) as VertexId;
            if !hubs.contains(&c) {
                b.add_edge(f, c);
            }
        }
    }

    WordNetwork {
        graph: b.build(),
        vocabulary,
        ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bank_money_has_six_contexts() {
        let net = word_association(500, 7);
        let (bank, money) = (net.ids["bank"], net.ids["money"]);
        let sizes = esd_core::score::component_sizes(&net.graph, bank, money);
        assert_eq!(sizes.len(), 6, "six components as in Fig 13: {sizes:?}");
        assert_eq!(*sizes.last().unwrap(), 6, "largest = the account context");
        assert_eq!(esd_core::score::edge_score(&net.graph, bank, money, 2), 5);
    }

    #[test]
    fn top_two_at_tau2_match_fig13() {
        // Fig 13: the top-2 edges are ("bank","money") then ("wood","house").
        for fillers in [600, 1000] {
            let net = word_association(fillers, 7);
            let top = esd_core::score::naive_topk(&net.graph, 2, 2);
            let pair = |i: usize| {
                let mut p = [net.word(top[i].edge.u), net.word(top[i].edge.v)];
                p.sort_unstable();
                (p[0].to_string(), p[1].to_string())
            };
            assert_eq!(
                pair(0),
                ("bank".into(), "money".into()),
                "fillers={fillers}"
            );
            assert_eq!(
                pair(1),
                ("house".into(), "wood".into()),
                "fillers={fillers}"
            );
        }
    }

    #[test]
    fn deterministic_and_no_filler_core_leakage() {
        let a = word_association(300, 1);
        let b = word_association(300, 1);
        assert_eq!(a.graph.edges(), b.graph.edges());
        // Hub pair ego-networks contain no generated filler words
        // (fillers are named `w<number>`).
        let is_filler = |w: &str| {
            w.strip_prefix('w')
                .is_some_and(|rest| !rest.is_empty() && rest.chars().all(|c| c.is_ascii_digit()))
        };
        let (bank, money) = (a.ids["bank"], a.ids["money"]);
        for w in a.graph.common_neighbors(bank, money) {
            assert!(!is_filler(a.word(w)), "filler {} leaked", a.word(w));
        }
    }

    #[test]
    fn zero_fillers_is_just_the_cores() {
        let net = word_association(0, 0);
        assert!(net.graph.num_edges() > 40);
        assert_eq!(net.vocabulary.len(), net.graph.num_vertices());
    }
}
