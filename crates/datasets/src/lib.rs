//! Deterministic surrogate datasets for the paper's evaluation.
//!
//! The paper benchmarks on five SNAP graphs (Table I) and two case-study
//! networks (a DBLP subgraph and the USF word-association network). Those
//! files cannot be bundled, so this crate generates laptop-scale surrogates
//! whose *texture* — degree skew, clustering, community structure, common
//! neighbourhood sizes — mirrors each original (see DESIGN.md §7). All
//! generators are deterministic, so every experiment is reproducible.
//!
//! * [`surrogates`] — the five Table I stand-ins at three scales.
//! * [`words`] — a miniature word-association network with genuine
//!   polysemous hubs for the Fig 13 case study.
//! * [`dblp_case`] — a planted research-community graph with known bridge
//!   authors for the Fig 12 case study.
//! * [`churn`] — temporal update traces (growth, triadic closure, decay)
//!   for evaluating the dynamic index beyond Fig 11's protocol.

#![warn(missing_docs)]

pub mod churn;
pub mod dblp_case;
pub mod surrogates;
pub mod words;

pub use surrogates::{load, specs, DatasetSpec, Scale};
