//! Laptop-scale stand-ins for the five Table I graphs.
//!
//! | dataset      | paper n / m        | texture reproduced |
//! |--------------|--------------------|--------------------|
//! | Youtube      | 1.13M / 2.99M      | preferential-attachment hubs, low clustering, small degeneracy |
//! | WikiTalk     | 2.39M / 4.66M      | extreme degree skew (one huge hub), near-forest periphery |
//! | DBLP         | 1.84M / 8.35M      | overlapping author cliques, high clustering & degeneracy |
//! | Pokec        | 1.63M / 22.3M      | skewed social texture (R-MAT), moderate clustering |
//! | LiveJournal  | 4.00M / 34.7M      | R-MAT plus planted communities; the largest graph |
//!
//! Every surrogate blends a base model with a clique-overlap layer: the base
//! fixes the degree profile, the clique layer injects the triangles and
//! 4-cliques that drive every ESD algorithm's cost.

use esd_graph::{generators, Graph, GraphBuilder};

/// Target size of a surrogate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few thousand edges — unit/integration tests.
    Tiny,
    /// Tens of thousands of edges — fast experiment sweeps.
    Small,
    /// Hundreds of thousands of edges — the headline bench scale.
    Bench,
}

impl Scale {
    /// Vertex-count multiplier relative to [`Scale::Bench`].
    fn factor(self) -> f64 {
        match self {
            Scale::Tiny => 0.04,
            Scale::Small => 0.25,
            Scale::Bench => 1.0,
        }
    }
}

/// Metadata tying a surrogate to its Table I original.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetSpec {
    /// Short name used throughout the experiments (paper's spelling).
    pub name: &'static str,
    /// `n` of the original SNAP graph.
    pub paper_n: usize,
    /// `m` of the original SNAP graph.
    pub paper_m: usize,
    /// `d_max` of the original.
    pub paper_dmax: usize,
    /// Degeneracy `δ` of the original.
    pub paper_delta: u32,
}

/// The five Table I rows, in the paper's order.
pub fn specs() -> [DatasetSpec; 5] {
    [
        DatasetSpec {
            name: "Youtube",
            paper_n: 1_134_890,
            paper_m: 2_987_624,
            paper_dmax: 28_754,
            paper_delta: 51,
        },
        DatasetSpec {
            name: "WikiTalk",
            paper_n: 2_394_385,
            paper_m: 4_659_565,
            paper_dmax: 100_029,
            paper_delta: 131,
        },
        DatasetSpec {
            name: "DBLP",
            paper_n: 1_843_617,
            paper_m: 8_350_260,
            paper_dmax: 2_213,
            paper_delta: 279,
        },
        DatasetSpec {
            name: "Pokec",
            paper_n: 1_632_803,
            paper_m: 22_301_964,
            paper_dmax: 14_854,
            paper_delta: 47,
        },
        DatasetSpec {
            name: "LiveJournal",
            paper_n: 3_997_962,
            paper_m: 34_681_189,
            paper_dmax: 14_815,
            paper_delta: 360,
        },
    ]
}

/// Loads a surrogate by (case-insensitive) name. Panics on unknown names;
/// the valid set is exactly the [`specs`] names.
pub fn load(name: &str, scale: Scale) -> Graph {
    match name.to_ascii_lowercase().as_str() {
        "youtube" => youtube(scale),
        "wikitalk" => wikitalk(scale),
        "dblp" => dblp(scale),
        "pokec" => pokec(scale),
        "livejournal" => livejournal(scale),
        other => panic!(
            "unknown dataset {other:?}; expected one of Youtube/WikiTalk/DBLP/Pokec/LiveJournal"
        ),
    }
}

/// Merges several edge sets over the same vertex universe.
fn overlay(graphs: &[Graph]) -> Graph {
    let n = graphs
        .iter()
        .map(esd_graph::Graph::num_vertices)
        .max()
        .unwrap_or(0);
    let m: usize = graphs.iter().map(esd_graph::Graph::num_edges).sum();
    let mut b = GraphBuilder::with_capacity(n, m);
    for g in graphs {
        for e in g.edges() {
            b.add_edge(e.u, e.v);
        }
    }
    b.build()
}

/// Youtube-like: preferential-attachment hubs with a light clique layer.
pub fn youtube(scale: Scale) -> Graph {
    let n = (24_000.0 * scale.factor()) as usize;
    overlay(&[
        generators::barabasi_albert(n, 3, 0xA11CE),
        generators::clique_overlap(n, n / 2, 5, 0xA11CF),
    ])
}

/// WikiTalk-like: one dominant hub, near-forest periphery, few triangles.
pub fn wikitalk(scale: Scale) -> Graph {
    let n = (40_000.0 * scale.factor()) as usize;
    overlay(&[
        generators::star_forest_mix(n, 12, n / 3, 0x817A),
        generators::clique_overlap(n, n / 6, 5, 0x817B),
    ])
}

/// DBLP-like: overlapping author cliques (papers), high clustering.
pub fn dblp(scale: Scale) -> Graph {
    let n = (20_000.0 * scale.factor()) as usize;
    generators::clique_overlap(n, n * 2, 7, 0xDB1D)
}

/// Pokec-like: R-MAT social texture with a moderate clique layer; the
/// densest surrogate per vertex.
pub fn pokec(scale: Scale) -> Graph {
    let scale_log2 = (14.0 + scale.factor().log2()).round().max(8.0) as u32;
    let n = 1usize << scale_log2;
    overlay(&[
        generators::rmat(scale_log2, 12, (0.45, 0.22, 0.22, 0.11), 0x90C),
        generators::clique_overlap(n, n / 2, 5, 0x90D),
    ])
}

/// LiveJournal-like: the largest surrogate — R-MAT plus community cliques.
pub fn livejournal(scale: Scale) -> Graph {
    let scale_log2 = (15.0 + scale.factor().log2()).round().max(9.0) as u32;
    let n = 1usize << scale_log2;
    overlay(&[
        generators::rmat(scale_log2, 10, (0.45, 0.22, 0.22, 0.11), 0x11E),
        generators::clique_overlap(n, n, 6, 0x11F),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_graph::metrics::GraphStats;

    #[test]
    fn all_five_load_at_tiny_scale() {
        for spec in specs() {
            let g = load(spec.name, Scale::Tiny);
            assert!(
                g.num_edges() > 500,
                "{} too small: m={}",
                spec.name,
                g.num_edges()
            );
            assert!(
                esd_graph::triangles::count_triangles(&g) > 100,
                "{} needs triangles for the index to be non-trivial",
                spec.name
            );
        }
    }

    #[test]
    fn loading_is_deterministic() {
        let a = load("dblp", Scale::Tiny);
        let b = load("DBLP", Scale::Tiny);
        assert_eq!(a.edges(), b.edges());
    }

    #[test]
    #[should_panic(expected = "unknown dataset")]
    fn unknown_name_panics() {
        let _ = load("orkut", Scale::Tiny);
    }

    #[test]
    fn relative_texture_matches_table1() {
        // The orderings the experiments rely on, checked at Small scale:
        let yt = GraphStats::compute(&load("youtube", Scale::Small));
        let wiki = GraphStats::compute(&load("wikitalk", Scale::Small));
        let dblp = GraphStats::compute(&load("dblp", Scale::Small));
        let pokec = GraphStats::compute(&load("pokec", Scale::Small));
        let lj = GraphStats::compute(&load("livejournal", Scale::Small));
        // WikiTalk has the most extreme hub relative to its size.
        assert!(wiki.d_max * wiki.n.max(1) > yt.d_max * yt.n.max(1));
        // DBLP is the most clique-dense: highest degeneracy per edge.
        assert!(dblp.degeneracy >= yt.degeneracy);
        // LiveJournal is the largest; Pokec densest per vertex.
        assert!(lj.m > pokec.m && lj.m > dblp.m && lj.m > wiki.m && lj.m > yt.m);
        assert!(pokec.m * yt.n > yt.m * pokec.n, "Pokec denser than Youtube");
    }

    #[test]
    fn scales_are_ordered() {
        for name in ["youtube", "dblp"] {
            let t = load(name, Scale::Tiny).num_edges();
            let s = load(name, Scale::Small).num_edges();
            let b = load(name, Scale::Bench).num_edges();
            assert!(t < s && s < b, "{name}: {t} {s} {b}");
        }
    }
}
