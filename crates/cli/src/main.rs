//! `esd` — command-line top-k edge structural diversity search.
//!
//! ```text
//! esd stats  <graph.txt>                         graph statistics (Table I columns)
//! esd topk   <graph.txt> [-k N] [--tau T] [--family F] [--algo online|online+|index]
//! esd build  <graph.txt> -o <index.esdx>         build + persist a frozen index
//! esd query  <index.esdx> [-k N] [--tau T]       query a persisted index
//! esd stream <graph.txt>                         read updates/queries from stdin:
//!                                                  + u v | - u v | ? k tau | family [F] | quit
//! esd serve  <graph.txt> [--port P] [--threads N]  TCP query service (same protocol)
//!            [--shards S] [--wal-dir DIR] [--checkpoint-interval N] [--ack enqueue]
//! esd recover <wal-dir> [-o <out.esdx>]          inspect/replay durable state
//! esd ego    <graph.txt> <u> <v> [-o <out.dot>]  render an edge ego-network
//! esd explain <graph.txt> <u> <v>                score/context breakdown
//! esd audit  <index.esdx> [graph.txt]            structural invariant audit
//! esd bench  [--suite smoke|full] [--json] [-o FILE] [--reps N] [--threads N]
//! esd bench  --check <BENCH.json>                validate a bench report
//! esd bench  gate <BENCH.json> [--baseline F] [--tolerance PCT] [--rebaseline]
//! ```
//!
//! `stream` and `serve` share one engine (`esd-serve`): `stream` runs the
//! protocol session inline on stdin, `serve` puts the same session behind a
//! worker pool and a TCP accept loop, with snapshot isolation, a result
//! cache, and live `metrics`.
//!
//! `audit` runs every structural validator over a persisted index (rank
//! order, list nesting, score monotonicity, …) and — when the source graph
//! is supplied — the full semantic comparison against ground truth
//! recomputed from scratch. It prints one line per violation and exits
//! nonzero if any invariant is broken, so it can gate deployment pipelines.
//!
//! `bench` runs the `esd-bench` suites over bundled surrogate datasets and
//! emits an `esd-bench/v1` JSON report (stage timings and kernel counters
//! from `esd-telemetry`, wall-time distributions from the harness). CI
//! archives one per PR as `BENCH_smoke.json`; `--check` re-validates an
//! existing report against the schema. See `docs/observability.md`.
//!
//! `bench gate` turns those reports into a perf contract: it compares a
//! fresh report against the checked-in `bench/baseline.json` and exits
//! nonzero when any benchmark's wall p50 regressed beyond its tolerance
//! band (or vanished from the report). `--rebaseline` rewrites the baseline
//! from the supplied report — the intentional way to accept a perf change.
//! Bands and methodology are documented in `docs/benchmarking.md`.
//!
//! With `--wal-dir` the serve engine runs durably: every acked update
//! batch is appended to an epoch-stamped, CRC-checked write-ahead log and
//! (by default) fsynced before the ack; incremental ESDX delta checkpoints
//! bound replay time. Restarting `esd serve` with the same `--wal-dir`
//! recovers the pre-crash published state; `esd recover` inspects a
//! durable directory offline and can export the recovered index as a
//! frozen ESDX file. See `docs/durability.md`.
//!
//! Graphs are SNAP-style edge lists (`u<ws>v` per line, `#` comments).
//! `topk`/`stream` print the file's original vertex ids; a persisted index
//! stores the dense relabelling (first-appearance order), which `build`
//! writes next to the index as `<index>.ids` so `query` can translate back.

use esd::Error;
use esd_core::online::{online_topk, UpperBound};
use esd_core::{EsdIndex, ScoredEdge};
use esd_graph::io;
use esd_serve::{
    AckPolicy, DurabilityConfig, EngineHandle, IdMap, LineOutcome, RecoveryReport, Server, Service,
    ServiceConfig, Session, ShardConfig, ShardedService,
};
use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(err) => {
            eprintln!("error: {err}");
            // Exit-code policy lives in esd::Error: usage mistakes (and only
            // those) get the help text and exit 2; runtime failures exit 1.
            if err.is_usage() {
                eprintln!("{USAGE}");
            }
            ExitCode::from(err.exit_code())
        }
    }
}

const USAGE: &str = "\
usage:
  esd stats  <graph.txt>
  esd topk   <graph.txt> [-k N] [--tau T] [--family F] [--algo online|online+|index]
             F: component (default) | truss | parameter-free | ego-betweenness
  esd build  <graph.txt> -o <index.esdx>
  esd query  <index.esdx> [-k N] [--tau T]
  esd stream <graph.txt> [--pipeline-threads N]
  esd serve  <graph.txt> [--port P] [--threads N] [--pipeline-threads N]
             [--shards S] [--wal-dir DIR] [--checkpoint-interval N] [--ack fsync|enqueue]
  esd recover <wal-dir> [-o <out.esdx>]           inspect/replay durable state
  esd ego    <graph.txt> <u> <v> [-o <out.dot>]   render an edge ego-network
  esd explain <graph.txt> <u> <v>                 score/context breakdown
  esd audit  <index.esdx> [graph.txt]             structural invariant audit
  esd bench  [--suite smoke|full] [--json] [-o FILE] [--reps N] [--threads N]
  esd bench  --check <BENCH.json>                 validate a bench report
  esd bench  gate <BENCH.json> [--baseline FILE] [--tolerance PCT] [--rebaseline]
                                                  perf gate vs bench/baseline.json";

struct Options {
    k: usize,
    tau: u32,
    family: esd_core::Family,
    algo: String,
    output: Option<String>,
    port: u16,
    threads: usize,
    shards: u32,
    pipeline_threads: usize,
    suite: String,
    json: bool,
    reps: usize,
    check: Option<String>,
    baseline: Option<String>,
    tolerance: Option<u64>,
    rebaseline: bool,
    wal_dir: Option<String>,
    checkpoint_interval: u64,
    ack: String,
    positional: Vec<String>,
}

fn parse(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        k: 10,
        tau: 2,
        family: esd_core::Family::Component,
        algo: "index".into(),
        output: None,
        port: 7687,
        threads: 4,
        shards: 1,
        pipeline_threads: 2,
        suite: "smoke".into(),
        json: false,
        reps: 3,
        check: None,
        baseline: None,
        tolerance: None,
        rebaseline: false,
        wal_dir: None,
        checkpoint_interval: 32,
        ack: "fsync".into(),
        positional: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match a.as_str() {
            "-k" => opts.k = value("-k")?.parse().map_err(|e| format!("bad -k: {e}"))?,
            "--tau" => {
                opts.tau = value("--tau")?
                    .parse()
                    .map_err(|e| format!("bad --tau: {e}"))?;
            }
            "--family" => {
                let name = value("--family")?;
                opts.family = esd_core::Family::parse(&name).ok_or_else(|| {
                    format!(
                        "bad --family {name:?} (component | truss | parameter-free \
                         | ego-betweenness)"
                    )
                })?;
            }
            "--algo" => opts.algo = value("--algo")?,
            "-o" | "--output" => opts.output = Some(value("-o")?),
            "--port" => {
                opts.port = value("--port")?
                    .parse()
                    .map_err(|e| format!("bad --port: {e}"))?;
            }
            "--threads" => {
                opts.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("bad --threads: {e}"))?;
            }
            "--shards" => {
                opts.shards = value("--shards")?
                    .parse()
                    .map_err(|e| format!("bad --shards: {e}"))?;
            }
            "--pipeline-threads" => {
                opts.pipeline_threads = value("--pipeline-threads")?
                    .parse()
                    .map_err(|e| format!("bad --pipeline-threads: {e}"))?;
            }
            "--suite" => opts.suite = value("--suite")?,
            "--json" => opts.json = true,
            "--reps" => {
                opts.reps = value("--reps")?
                    .parse()
                    .map_err(|e| format!("bad --reps: {e}"))?;
            }
            "--check" => opts.check = Some(value("--check")?),
            "--baseline" => opts.baseline = Some(value("--baseline")?),
            "--tolerance" => {
                opts.tolerance = Some(
                    value("--tolerance")?
                        .parse()
                        .map_err(|e| format!("bad --tolerance: {e}"))?,
                );
            }
            "--rebaseline" => opts.rebaseline = true,
            "--wal-dir" => opts.wal_dir = Some(value("--wal-dir")?),
            "--checkpoint-interval" => {
                opts.checkpoint_interval = value("--checkpoint-interval")?
                    .parse()
                    .map_err(|e| format!("bad --checkpoint-interval: {e}"))?;
            }
            "--ack" => opts.ack = value("--ack")?,
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            other => opts.positional.push(other.to_string()),
        }
    }
    if opts.tau == 0 {
        return Err("--tau must be at least 1".into());
    }
    if opts.shards == 0 {
        return Err("--shards must be at least 1".into());
    }
    Ok(opts)
}

fn run(args: &[String]) -> Result<ExitCode, Error> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err("missing subcommand".into());
    };
    let opts = parse(rest)?;
    let done = |r: Result<(), Error>| r.map(|()| ExitCode::SUCCESS);
    match cmd.as_str() {
        "stats" => done(stats(&opts)),
        "topk" => done(topk(&opts)),
        "build" => done(build(&opts)),
        "query" => done(query(&opts)),
        "stream" => done(stream(&opts)),
        "serve" => done(serve(&opts)),
        "recover" => done(recover(&opts)),
        "ego" => done(ego(&opts)),
        "explain" => done(explain(&opts)),
        "audit" => audit(&opts),
        "bench" => bench(&opts),
        other => Err(format!("unknown subcommand {other:?}").into()),
    }
}

/// Audits a persisted index: every structural validator always, plus the
/// full semantic ground-truth comparison when the source graph is supplied.
/// Exits nonzero (without usage spam) when any invariant is violated.
fn audit(opts: &Options) -> Result<ExitCode, Error> {
    let path = opts
        .positional
        .first()
        .ok_or("missing index file argument")?;
    let frozen = esd_core::index::FrozenEsdIndex::load(path)
        .map_err(|e| Error::from(e).context(format!("cannot load {path}")))?;
    let violations = match opts.positional.get(1) {
        Some(gpath) => {
            let (g, _) = io::load_edge_list(gpath)
                .map_err(|e| Error::from(e).context(format!("cannot load {gpath}")))?;
            frozen.validate_against(&g)
        }
        None => frozen.validate(),
    };
    println!(
        "audit {path}: {} lists, {} entries{}",
        frozen.num_lists(),
        frozen.total_entries(),
        if opts.positional.len() > 1 {
            " (checked against graph)"
        } else {
            ""
        },
    );
    if violations.is_empty() {
        println!("OK: every invariant holds");
        Ok(ExitCode::SUCCESS)
    } else {
        println!("FAIL: {} violation(s)", violations.len());
        for v in &violations {
            println!("  - {v}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Runs a benchmark suite and emits the `esd-bench/v1` report, or — with
/// `--check FILE` — validates an existing report against the schema. The
/// check mode exits nonzero on violations so CI can gate on it.
fn bench(opts: &Options) -> Result<ExitCode, Error> {
    use esd_bench::report::{validate, BENCH_SCHEMA};
    use esd_bench::suite::{run, Suite, SuiteConfig};
    use esd_telemetry::json::Json;

    if opts.positional.first().map(String::as_str) == Some("gate") {
        return bench_gate(opts);
    }

    if let Some(path) = &opts.check {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::from(e).context(format!("cannot read {path}")))?;
        // A malformed report is a data failure (exit 1), not a usage
        // mistake — route it through Io rather than the String → Usage lift.
        let doc = Json::parse(&text).map_err(|e| {
            Error::from(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                e.to_string(),
            ))
            .context(format!("invalid bench report {path}"))
        })?;
        let errors = validate(&doc);
        return if errors.is_empty() {
            println!("OK: {path} conforms to {BENCH_SCHEMA}");
            Ok(ExitCode::SUCCESS)
        } else {
            println!("FAIL: {path}: {} schema violation(s)", errors.len());
            for e in &errors {
                println!("  - {e}");
            }
            Ok(ExitCode::FAILURE)
        };
    }

    let suite = Suite::parse(&opts.suite)
        .ok_or_else(|| format!("unknown --suite {:?} (smoke|full)", opts.suite))?;
    if opts.reps == 0 {
        return Err("--reps must be at least 1".into());
    }
    let cfg = SuiteConfig {
        suite,
        reps: opts.reps,
        threads: opts.threads.max(1),
    };
    if !esd_telemetry::enabled() {
        eprintln!(
            "warning: built without the telemetry feature; the report will \
             carry wall times but no stage timings or counters"
        );
    }
    let report = run(&cfg);
    let text = report.render_pretty();
    if let Some(path) = &opts.output {
        std::fs::write(path, &text)
            .map_err(|e| Error::from(e).context(format!("cannot write {path}")))?;
        println!("wrote {path}");
    } else if opts.json {
        print!("{text}");
    } else {
        print_bench_summary(&report);
    }
    Ok(ExitCode::SUCCESS)
}

/// The `esd bench gate` perf contract: compares a fresh `esd-bench/v1`
/// report against the checked-in baseline (`bench/baseline.json` unless
/// `--baseline` overrides it) and exits nonzero on any regression beyond
/// tolerance or missing benchmark. With `--rebaseline` the baseline file is
/// rewritten from the report instead — the intentional way to accept a
/// perf change. See `docs/benchmarking.md` for the contract details.
fn bench_gate(opts: &Options) -> Result<ExitCode, Error> {
    use esd_telemetry::json::Json;

    let report_path = opts
        .positional
        .get(1)
        .ok_or("bench gate needs a <BENCH.json> report argument")?;
    // Malformed gate inputs are data failures (exit 1), not usage mistakes.
    let data_err =
        |msg: String| Error::from(std::io::Error::new(std::io::ErrorKind::InvalidData, msg));
    let read_json = |path: &str| -> Result<Json, Error> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| Error::from(e).context(format!("cannot read {path}")))?;
        Json::parse(&text)
            .map_err(|e| data_err(e.to_string()).context(format!("invalid JSON in {path}")))
    };
    let report = read_json(report_path)?;
    let baseline_path = opts.baseline.as_deref().unwrap_or("bench/baseline.json");

    if opts.rebaseline {
        let baseline = esd_bench::gate::baseline_from_report(&report, opts.tolerance)
            .map_err(|e| data_err(e).context(format!("cannot baseline {report_path}")))?;
        std::fs::write(baseline_path, baseline.render_pretty())
            .map_err(|e| Error::from(e).context(format!("cannot write {baseline_path}")))?;
        let pinned = baseline
            .get("benchmarks")
            .and_then(Json::as_arr)
            .map_or(0, Vec::len);
        println!("rebaselined {baseline_path}: {pinned} benchmark(s) pinned from {report_path}");
        return Ok(ExitCode::SUCCESS);
    }

    let baseline = read_json(baseline_path)?;
    let outcome = esd_bench::gate::compare(&report, &baseline, opts.tolerance)
        .map_err(|e| data_err(e).context("bench gate"))?;
    for row in &outcome.unbaselined {
        println!("note: {row} (gate ignores it until the next --rebaseline)");
    }
    for row in &outcome.improvements {
        println!("note: {row} — consider re-baselining to tighten the gate");
    }
    if outcome.passed() {
        println!(
            "OK: {} benchmark(s) within tolerance of {baseline_path}",
            outcome.checked
        );
        Ok(ExitCode::SUCCESS)
    } else {
        println!(
            "FAIL: {} regression(s), {} missing benchmark(s) vs {baseline_path}",
            outcome.regressions.len(),
            outcome.missing.len()
        );
        for row in outcome.regressions.iter().chain(&outcome.missing) {
            println!("  - {row}");
        }
        Ok(ExitCode::FAILURE)
    }
}

/// Human-readable digest of a bench report: one row per benchmark with the
/// wall-time distribution (the JSON carries the full stage/counter detail).
fn print_bench_summary(report: &esd_telemetry::json::Json) {
    use esd_telemetry::json::Json;
    let ms = |b: &Json, field: &str| {
        b.get("wall_ns")
            .and_then(|w| w.get(field))
            .and_then(Json::as_u64)
            .map_or_else(|| "?".into(), |ns| format!("{:.2}", ns as f64 / 1e6))
    };
    let mut table = esd_bench::TextTable::new(&[
        "benchmark",
        "dataset",
        "reps",
        "min ms",
        "p50 ms",
        "max ms",
        "mean ms",
    ]);
    for b in report
        .get("benchmarks")
        .and_then(Json::as_arr)
        .into_iter()
        .flatten()
    {
        let s = |f: &str| b.get(f).and_then(Json::as_str).unwrap_or("?").to_string();
        let reps = b
            .get("reps")
            .and_then(Json::as_u64)
            .map_or_else(|| "?".into(), |r| r.to_string());
        table.row(vec![
            s("name"),
            s("dataset"),
            reps,
            ms(b, "min"),
            ms(b, "p50"),
            ms(b, "max"),
            ms(b, "mean"),
        ]);
    }
    print!("{}", table.render());
    println!(
        "telemetry: {} (rerun with --json for stage timings and counters)",
        if esd_telemetry::enabled() {
            "enabled"
        } else {
            "disabled"
        }
    );
}

fn load_graph(opts: &Options) -> Result<(esd_graph::Graph, Vec<u64>), Error> {
    let path = opts
        .positional
        .first()
        .ok_or("missing graph file argument")?;
    io::load_edge_list(path).map_err(|e| Error::from(e).context(format!("cannot load {path}")))
}

fn print_results(results: &[ScoredEdge], original: &[u64]) {
    for (rank, s) in results.iter().enumerate() {
        println!(
            "{:>4}  ({}, {})  score {}",
            rank + 1,
            original[s.edge.u as usize],
            original[s.edge.v as usize],
            s.score
        );
    }
    if results.is_empty() {
        println!("(no edge has a component of size ≥ τ)");
    }
}

fn stats(opts: &Options) -> Result<(), Error> {
    let (g, _) = load_graph(opts)?;
    let s = esd_graph::metrics::GraphStats::compute(&g);
    println!("n            {}", s.n);
    println!("m            {}", s.m);
    println!("d_max        {}", s.d_max);
    println!("degeneracy   {}", s.degeneracy);
    println!(
        "arboricity   [{}, {}]",
        s.arboricity_lower, s.arboricity_upper
    );
    println!("triangles    {}", esd_graph::triangles::count_triangles(&g));
    println!(
        "4-cliques    {}",
        esd_graph::cliques::count_four_cliques(&g)
    );
    Ok(())
}

fn topk(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    if opts.family != esd_core::Family::Component {
        // The non-component families share one maintained suite; `--algo`
        // selects among component algorithms only.
        let suite = esd_core::FamilySuite::new(&g);
        let results = suite.query(opts.family, opts.k, opts.tau);
        println!(
            "top-{} edges by {} diversity{}:",
            opts.k,
            opts.family,
            if opts.family.uses_tau() {
                format!(" (τ = {})", opts.tau)
            } else {
                String::new()
            }
        );
        print_results(&results, &original);
        return Ok(());
    }
    let results = match opts.algo.as_str() {
        "online" => online_topk(&g, opts.k, opts.tau, UpperBound::MinDegree),
        "online+" => online_topk(&g, opts.k, opts.tau, UpperBound::CommonNeighbor),
        "index" => EsdIndex::build_fast(&g).query(opts.k, opts.tau),
        other => return Err(format!("unknown --algo {other:?} (online|online+|index)").into()),
    };
    println!(
        "top-{} edges by structural diversity (τ = {}):",
        opts.k, opts.tau
    );
    print_results(&results, &original);
    Ok(())
}

fn build(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    let out = opts
        .output
        .as_ref()
        .ok_or("build requires -o <index.esdx>")?;
    let frozen = EsdIndex::build_fast(&g).freeze();
    frozen
        .save(out)
        .map_err(|e| Error::from(e).context(format!("cannot write {out}")))?;
    // Sidecar with the dense -> original id mapping, one id per line.
    let ids_path = format!("{out}.ids");
    let mut w = std::io::BufWriter::new(
        std::fs::File::create(&ids_path)
            .map_err(|e| Error::from(e).context(format!("cannot write {ids_path}")))?,
    );
    for id in &original {
        writeln!(w, "{id}")?;
    }
    w.flush()?;
    println!(
        "wrote {out} ({} lists, {} entries) and {ids_path}",
        frozen.num_lists(),
        frozen.total_entries()
    );
    Ok(())
}

fn query(opts: &Options) -> Result<(), Error> {
    if opts.family != esd_core::Family::Component {
        return Err(format!(
            "a persisted .esdx index stores component-based scores only; \
             run `esd topk <graph.txt> --family {}` against the source graph",
            opts.family
        )
        .into());
    }
    let path = opts
        .positional
        .first()
        .ok_or("missing index file argument")?;
    let frozen = esd_core::index::FrozenEsdIndex::load(path)
        .map_err(|e| Error::from(e).context(format!("cannot load {path}")))?;
    // Optional sidecar mapping; identity if absent.
    let original: Vec<u64> = match std::fs::read_to_string(format!("{path}.ids")) {
        Ok(text) => text
            .lines()
            .map(|l| l.trim().parse().map_err(|e| format!("bad id line: {e}")))
            .collect::<Result<_, _>>()?,
        Err(_) => {
            // No sidecar: identity mapping covering every vertex the index
            // mentions. Results then show dense ids, which only match the
            // input file when its ids were already 0..n in first-appearance
            // order — warn so nobody misreads them as original ids.
            eprintln!(
                "warning: {path}.ids not found; printing dense vertex ids \
                 (rebuild with `esd build` to restore original ids)"
            );
            let max_vertex = frozen
                .component_sizes()
                .iter()
                .filter_map(|&c| frozen.list(c))
                .flatten()
                .map(|s| u64::from(s.edge.v))
                .max()
                .unwrap_or(0);
            (0..=max_vertex).collect()
        }
    };
    let results = frozen.query(opts.k, opts.tau);
    println!(
        "top-{} edges by structural diversity (τ = {}):",
        opts.k, opts.tau
    );
    print_results(&results, &original);
    Ok(())
}

fn ego(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    let [_, ou, ov] = opts.positional.as_slice() else {
        return Err("ego needs <graph.txt> <u> <v>".into());
    };
    let parse = |t: &str| t.parse::<u64>().map_err(|e| format!("bad id {t}: {e}"));
    let (ou, ov) = (parse(ou)?, parse(ov)?);
    let find = |o: u64| {
        original
            .iter()
            .position(|&x| x == o)
            .map(|d| d as u32)
            .ok_or_else(|| format!("vertex {o} not in the graph"))
    };
    let (u, v) = (find(ou)?, find(ov)?);
    if !g.has_edge(u, v) {
        return Err(format!("({ou}, {ov}) is not an edge").into());
    }
    let dot = esd_graph::dot::ego_network_dot(&g, u, v, |x| Some(original[x as usize].to_string()));
    match &opts.output {
        Some(path) => {
            std::fs::write(path, &dot)
                .map_err(|e| Error::from(e).context(format!("cannot write {path}")))?;
            let sizes = esd_core::score::component_sizes(&g, u, v);
            println!("wrote {path}: {} components {:?}", sizes.len(), sizes);
        }
        None => print!("{dot}"),
    }
    Ok(())
}

fn explain(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    let [_, ou, ov] = opts.positional.as_slice() else {
        return Err("explain needs <graph.txt> <u> <v>".into());
    };
    let parse = |t: &str| t.parse::<u64>().map_err(|e| format!("bad id {t}: {e}"));
    let (ou, ov) = (parse(ou)?, parse(ov)?);
    let find = |o: u64| {
        original
            .iter()
            .position(|&x| x == o)
            .map(|d| d as u32)
            .ok_or_else(|| format!("vertex {o} not in the graph"))
    };
    let (u, v) = (find(ou)?, find(ov)?);
    let ex = esd_core::explain::explain_edge(&g, u, v)
        .ok_or_else(|| format!("({ou}, {ov}) is not an edge"))?;
    println!(
        "edge ({ou}, {ov}): {} common neighbours, {} context(s)",
        ex.common_neighbors.len(),
        ex.components.len()
    );
    for (i, comp) in ex.components.iter().enumerate() {
        let names: Vec<String> = comp
            .iter()
            .map(|&w| original[w as usize].to_string())
            .collect();
        println!("  context {}: {}", i + 1, names.join(", "));
    }
    for (i, &score) in ex.scores_by_tau.iter().enumerate() {
        println!(
            "  τ = {}: score {} (CN bound {}, min-degree bound {})",
            i + 1,
            score,
            ex.common_neighbor_bound(i as u32 + 1),
            ex.min_degree_bound
        );
    }
    Ok(())
}

/// Streaming maintenance on stdin: the same [`Session`] logic as `esd
/// serve`, run inline on the calling thread (`workers: 0`), so every
/// update/query response carries its per-op latency and epoch.
fn stream(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 0,
            pipeline_threads: opts.pipeline_threads.max(1),
            ..ServiceConfig::default()
        },
    );
    let session = Session::new(service.handle(), Arc::new(IdMap::from_original(original)));
    println!(
        "ready: {} vertices, {} edges (+ u v | - u v | ? k tau | family [name] | metrics | telemetry | quit)",
        g.num_vertices(),
        g.num_edges()
    );
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        match session.handle_line(&line) {
            LineOutcome::Respond(text) => {
                print!("{text}");
                std::io::stdout().flush()?;
            }
            LineOutcome::Quit => break,
        }
    }
    service.shutdown();
    Ok(())
}

/// TCP query service: the engine behind `stream`, behind a worker pool and
/// an accept loop. With `--shards S` (S > 1) the same server runs over a
/// [`ShardedService`] — `S` engines, per-shard WAL subdirectories, the
/// identical protocol. Runs until stdin sees `quit` or EOF, then prints
/// the final metrics registry.
fn serve(opts: &Options) -> Result<(), Error> {
    let (g, original) = load_graph(opts)?;
    let ids = Arc::new(IdMap::from_original(original));
    let per_shard = ServiceConfig {
        workers: opts.threads,
        pipeline_threads: opts.pipeline_threads.max(1),
        durability: durability_config(opts)?,
        ..ServiceConfig::default()
    };
    if opts.shards > 1 {
        let service = ShardedService::try_start(
            &g,
            &ShardConfig {
                shards: opts.shards,
                per_shard,
            },
        )
        .map_err(|e| Error::from(e).context("cannot open durable state"))?;
        for (i, report) in service.recovery_reports().into_iter().enumerate() {
            if let Some(report) = report {
                print_recovery(&format!("shard {i}: "), report);
            }
        }
        let handle = service.handle();
        let server = Server::start(("127.0.0.1", opts.port), service.handle(), ids)
            .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
        serve_until_quit(&server, opts, opts.shards)?;
        server.stop();
        print!("{}", handle.metrics_text());
        service.shutdown();
        return Ok(());
    }
    let service = Service::try_start(&g, &per_shard)
        .map_err(|e| Error::from(e).context("cannot open durable state"))?;
    if let Some(report) = service.recovery_report() {
        print_recovery("", report);
    }
    let server = Server::start(("127.0.0.1", opts.port), service.handle(), ids)
        .map_err(|e| format!("cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    serve_until_quit(&server, opts, 1)?;
    server.stop();
    print!("{}", service.handle().metrics_text());
    service.shutdown();
    Ok(())
}

fn print_recovery(prefix: &str, report: &RecoveryReport) {
    println!(
        "{prefix}recovered durable state: epoch {} (checkpoint {}, {} WAL record(s) replayed{})",
        report.recovered_epoch,
        report.checkpoint_epoch,
        report.wal_records_replayed,
        if report.wal_truncated {
            ", torn tail truncated"
        } else {
            ""
        }
    );
}

/// Prints the listening banner and blocks on stdin until `quit` or EOF.
fn serve_until_quit(server: &Server, opts: &Options, shards: u32) -> Result<(), Error> {
    println!(
        "listening on {} ({} shard(s) × {} worker thread(s); protocol: + u v | - u v | ? k tau | family [name] | hello | shards | metrics | telemetry | quit)",
        server.local_addr(),
        shards,
        opts.threads
    );
    // Piped stdout is block-buffered; tests (and scripts) need the banner
    // before the first connection attempt.
    std::io::stdout().flush()?;
    let stdin = std::io::stdin();
    for line in stdin.lock().lines() {
        let line = line?;
        if matches!(line.trim(), "quit" | "q" | "exit") {
            break;
        }
    }
    Ok(())
}

/// Translates the `--wal-dir` / `--checkpoint-interval` / `--ack` flags
/// into a [`DurabilityConfig`]; `None` when `--wal-dir` was not given.
fn durability_config(opts: &Options) -> Result<Option<DurabilityConfig>, Error> {
    let Some(dir) = &opts.wal_dir else {
        return Ok(None);
    };
    let mut cfg = DurabilityConfig::new(dir);
    cfg.ack_policy = match opts.ack.as_str() {
        "fsync" => AckPolicy::Fsync,
        "enqueue" => AckPolicy::Enqueue,
        other => return Err(format!("unknown --ack {other:?} (fsync|enqueue)").into()),
    };
    if opts.checkpoint_interval == 0 {
        return Err("--checkpoint-interval must be at least 1".into());
    }
    cfg.checkpoint_interval = opts.checkpoint_interval;
    Ok(Some(cfg))
}

/// Offline recovery: loads the newest valid checkpoint chain from a
/// durable directory, replays the WAL tail, prints the report, and — with
/// `-o` — exports the recovered state as a frozen ESDX index.
fn recover(opts: &Options) -> Result<(), Error> {
    let dir = opts
        .positional
        .first()
        .ok_or("missing durable directory argument")?;
    let recovered = esd_serve::durability::recover(std::path::Path::new(dir))
        .map_err(|e| Error::from(e).context(format!("cannot recover {dir}")))?
        .ok_or_else(|| {
            // A dir without durable state is a runtime failure (exit 1),
            // not a usage mistake — don't take the String → Usage lift.
            Error::from(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("{dir} holds no valid durable state"),
            ))
        })?;
    let report = &recovered.report;
    println!("recovered {dir}:");
    println!("  checkpoint epoch        {}", report.checkpoint_epoch);
    println!("  wal records replayed    {}", report.wal_records_replayed);
    println!("  wal segments scanned    {}", report.wal_segments);
    println!(
        "  wal torn tail           {}",
        if report.wal_truncated {
            "yes (truncated at last valid record)"
        } else {
            "no"
        }
    );
    println!(
        "  invalid checkpoints     {}",
        report.skipped_invalid_checkpoints
    );
    println!("  recovered epoch         {}", report.recovered_epoch);
    let g = recovered.index.graph();
    println!(
        "  state                   {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    );
    if let Some(out) = &opts.output {
        let frozen = esd_core::index::FrozenEsdIndex::build(&g.to_graph());
        frozen
            .save(out)
            .map_err(|e| Error::from(e).context(format!("cannot write {out}")))?;
        println!(
            "wrote {out} ({} lists, {} entries)",
            frozen.num_lists(),
            frozen.total_entries()
        );
    }
    Ok(())
}
