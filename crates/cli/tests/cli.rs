//! End-to-end tests of the `esd` binary: every subcommand over temp files,
//! including error paths.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Stdio};

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_esd"))
}

fn temp_dir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("esd_cli_test_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The paper's Fig 1(a) graph as an edge list with offset original ids
/// (so the dense relabelling is exercised).
fn write_fig1(dir: &std::path::Path) -> PathBuf {
    let (g, _) = esd_core::fixtures::fig1();
    let path = dir.join("fig1.txt");
    let mut text = String::from("# fig 1(a)\n");
    for e in g.edges() {
        text.push_str(&format!("{} {}\n", e.u + 100, e.v + 100));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn stats_reports_counts() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let out = bin()
        .args(["stats", graph.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("n            16"), "{text}");
    assert!(text.contains("m            40"), "{text}");
}

#[test]
fn topk_prints_original_ids_for_every_algo() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let mut outputs = Vec::new();
    for algo in ["online", "online+", "index"] {
        let out = bin()
            .args([
                "topk",
                graph.to_str().unwrap(),
                "-k",
                "3",
                "--tau",
                "2",
                "--algo",
                algo,
            ])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "{algo}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let text = String::from_utf8(out.stdout).unwrap();
        assert!(text.contains("score 2"), "{algo}: {text}");
        // Original ids are offset by 100.
        assert!(
            text.contains("(105, 106)") || text.contains("(107, 108)"),
            "{algo}: {text}"
        );
        outputs.push(text);
    }
    assert_eq!(outputs[0], outputs[1]);
    // Index output has a different header line order? No — identical results.
    assert_eq!(
        outputs[0].lines().skip(1).collect::<Vec<_>>(),
        outputs[2].lines().skip(1).collect::<Vec<_>>()
    );
}

#[test]
fn build_then_query_roundtrip() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let index = dir.join("fig1.esdx");
    let out = bin()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(index.exists());
    assert!(dir.join("fig1.esdx.ids").exists());

    let out = bin()
        .args(["query", index.to_str().unwrap(), "-k", "3", "--tau", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    // τ=5 answers: (u,p), (u,q), (p,q) = dense (11,13),(11,14),(13,14) → +100.
    assert!(text.contains("(111, 113)"), "{text}");
    assert!(text.contains("(113, 114)"), "{text}");
}

#[test]
fn stream_updates_and_queries() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let mut child = bin()
        .args(["stream", graph.to_str().unwrap()])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // Example 7: delete (u,k) = original (111, 110); then query τ=3.
    let stdin = child.stdin.as_mut().unwrap();
    writeln!(stdin, "- 111 110").unwrap();
    writeln!(stdin, "? 5 3").unwrap();
    writeln!(stdin, "- 111 110").unwrap(); // now a no-op
    writeln!(stdin, "bogus line").unwrap();
    writeln!(stdin, "quit").unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("- (111, 110): ok"), "{text}");
    assert!(text.contains("- (111, 110): no-op"), "{text}");
    assert!(text.contains("(109, 110)"), "(j,k) appears in H(3): {text}");
    assert!(text.contains("unrecognised"), "{text}");
}

/// Without the `.ids` sidecar, `query` still succeeds: it warns on stderr
/// and prints dense ids (fig1's original ids are dense ids + 100).
#[test]
fn query_without_ids_sidecar_warns_and_uses_dense_ids() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let index = dir.join("nosidecar.esdx");
    let out = bin()
        .args([
            "build",
            graph.to_str().unwrap(),
            "-o",
            index.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    std::fs::remove_file(dir.join("nosidecar.esdx.ids")).unwrap();

    let out = bin()
        .args(["query", index.to_str().unwrap(), "-k", "3", "--tau", "5"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("warning"), "{err}");
    assert!(err.contains(".ids not found"), "{err}");
    let text = String::from_utf8(out.stdout).unwrap();
    // Same answers as build_then_query_roundtrip, minus the +100 offset.
    assert!(text.contains("(11, 13)"), "{text}");
    assert!(text.contains("(13, 14)"), "{text}");
}

/// `esd serve` end to end: bind an ephemeral port, query and update over
/// TCP with original ids, then shut down via stdin and check the final
/// metrics dump.
#[test]
fn serve_answers_over_tcp() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let mut child = bin()
        .args([
            "serve",
            graph.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    // The banner names the bound address (port 0 → ephemeral).
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    assert!(banner.starts_with("listening on "), "{banner}");
    let addr = banner
        .trim_start_matches("listening on ")
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    // The server greets with the protocol banner before the first request.
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    assert_eq!(hello, "# esd-protocol/2 shards=1\n");
    writeln!(conn, "? 3 3").unwrap();
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "unexpected EOF");
        let done = line.starts_with("# ");
        lines.push(line);
        if done {
            break;
        }
    }
    let text = lines.concat();
    // Original (offset) ids, and the framing summary line.
    assert!(text.contains("(109, 110)"), "{text}");
    assert!(text.contains("result(s)"), "{text}");
    writeln!(conn, "- 111 110").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("- (111, 110): ok"), "{line}");
    writeln!(conn, "quit").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "bye");

    // `quit` on stdin stops the server and dumps final metrics.
    child.stdin.as_mut().unwrap().write_all(b"quit\n").unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    assert!(rest.contains("queries_served"), "{rest}");
    assert!(rest.contains("updates_applied"), "{rest}");
}

/// `esd serve --shards 2` speaks the identical protocol: the banner
/// advertises the shard count, query summaries carry the epoch vector,
/// and answers match what the unsharded server gives.
#[test]
fn sharded_serve_answers_over_tcp() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let mut child = bin()
        .args([
            "serve",
            graph.to_str().unwrap(),
            "--port",
            "0",
            "--threads",
            "1",
            "--shards",
            "2",
        ])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    let mut child_out = BufReader::new(child.stdout.take().unwrap());
    let mut banner = String::new();
    child_out.read_line(&mut banner).unwrap();
    assert!(banner.starts_with("listening on "), "{banner}");
    assert!(banner.contains("2 shard(s)"), "{banner}");
    let addr = banner
        .trim_start_matches("listening on ")
        .split_whitespace()
        .next()
        .unwrap()
        .to_string();

    let mut conn = TcpStream::connect(&addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let mut hello = String::new();
    reader.read_line(&mut hello).unwrap();
    assert_eq!(hello, "# esd-protocol/2 shards=2\n");
    writeln!(conn, "? 3 3").unwrap();
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "unexpected EOF");
        let done = line.starts_with("# ");
        lines.push(line);
        if done {
            break;
        }
    }
    let text = lines.concat();
    // The same answers the unsharded server gives, with an epoch vector.
    assert!(text.contains("(109, 110)"), "{text}");
    assert!(text.contains("epoch [0, 0]"), "{text}");
    writeln!(conn, "- 111 110").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("- (111, 110): ok"), "{line}");
    assert!(line.contains("epoch [1, 1]"), "{line}");
    writeln!(conn, "shards").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line, "# shards=2 epochs=[1, 1]\n");
    writeln!(conn, "quit").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "bye");

    child.stdin.as_mut().unwrap().write_all(b"quit\n").unwrap();
    let status = child.wait().unwrap();
    assert!(status.success());
    let mut rest = String::new();
    std::io::Read::read_to_string(&mut child_out, &mut rest).unwrap();
    assert!(rest.contains("-- shard 1 --"), "{rest}");
}

#[test]
fn ego_renders_dot() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    // (f, g) = dense (5, 6) → original (105, 106): two ego components.
    let out = bin()
        .args(["ego", graph.to_str().unwrap(), "105", "106"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let dot = String::from_utf8(out.stdout).unwrap();
    assert!(dot.contains("graph ego"), "{dot}");
    assert!(
        dot.contains("cluster_1") && !dot.contains("cluster_2"),
        "{dot}"
    );
    // Writing to a file reports the component sizes.
    let path = dir.join("ego.dot");
    let out = bin()
        .args([
            "ego",
            graph.to_str().unwrap(),
            "105",
            "106",
            "-o",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("2 components [2, 2]"));
    assert!(path.exists());
    // Non-edge is rejected.
    let out = bin()
        .args(["ego", graph.to_str().unwrap(), "100", "115"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn explain_breaks_down_scores() {
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    // (j, k) = original (109, 110): contexts {h,i} and {u,v,p,q}.
    let out = bin()
        .args(["explain", graph.to_str().unwrap(), "109", "110"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8(out.stdout).unwrap();
    assert!(text.contains("6 common neighbours"), "{text}");
    assert!(text.contains("2 context(s)"), "{text}");
    assert!(
        text.contains("111, 112, 113, 114"),
        "the K6 context: {text}"
    );
    assert!(text.contains("τ = 4: score 1"), "{text}");
    // Non-edge rejected.
    let out = bin()
        .args(["explain", graph.to_str().unwrap(), "100", "115"])
        .output()
        .unwrap();
    assert!(!out.status.success());
}

#[test]
fn error_paths() {
    // Unknown subcommand.
    let out = bin().args(["frobnicate"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));
    // Missing file.
    let out = bin()
        .args(["stats", "/nonexistent/graph.txt"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Bad tau.
    let dir = temp_dir();
    let graph = write_fig1(&dir);
    let out = bin()
        .args(["topk", graph.to_str().unwrap(), "--tau", "0"])
        .output()
        .unwrap();
    assert!(!out.status.success());
    // Corrupt index file.
    let bogus = dir.join("bogus.esdx");
    std::fs::write(&bogus, b"not an index").unwrap();
    let out = bin()
        .args(["query", bogus.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("ESDX"));
}

/// The exit-code policy (`esd::Error::exit_code`), table-driven over the
/// real binary: usage mistakes exit 2 and print the help text after the
/// error line; runtime failures exit 1 and do NOT spam the usage block.
#[test]
fn exit_code_policy_table() {
    let dir = temp_dir();
    let graph_path = write_fig1(&dir);
    let graph = graph_path.to_str().unwrap();
    let corrupt = dir.join("corrupt.esdx");
    std::fs::write(&corrupt, b"definitely not an index").unwrap();
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json {").unwrap();

    struct Case {
        name: &'static str,
        args: Vec<String>,
        code: i32,
        usage: bool,
    }
    let case = |name, args: &[&str], code, usage| Case {
        name,
        args: args.iter().map(|s| (*s).to_string()).collect(),
        code,
        usage,
    };
    let cases = [
        // Usage mistakes: exit 2, the help text follows the error line.
        case("no subcommand", &[], 2, true),
        case("unknown subcommand", &["frobnicate"], 2, true),
        case("missing positional", &["stats"], 2, true),
        case("unknown flag", &["topk", graph, "--frobnicate"], 2, true),
        case("flag needs value", &["topk", graph, "-k"], 2, true),
        case("tau zero", &["topk", graph, "--tau", "0"], 2, true),
        case("bad suite", &["bench", "--suite", "bogus"], 2, true),
        case("zero reps", &["bench", "--reps", "0"], 2, true),
        // Runtime failures: exit 1, no usage spam.
        case(
            "missing graph file",
            &["stats", "/nonexistent/esd/g.txt"],
            1,
            false,
        ),
        case(
            "corrupt index",
            &["query", corrupt.to_str().unwrap()],
            1,
            false,
        ),
        case(
            "garbage bench report",
            &["bench", "--check", garbage.to_str().unwrap()],
            1,
            false,
        ),
    ];
    for c in &cases {
        let out = bin().args(&c.args).output().unwrap();
        let stderr = String::from_utf8_lossy(&out.stderr);
        assert_eq!(
            out.status.code(),
            Some(c.code),
            "{}: wrong exit code\nstderr: {stderr}",
            c.name
        );
        assert!(
            stderr.contains("error:"),
            "{}: every failure names itself\nstderr: {stderr}",
            c.name
        );
        assert_eq!(
            stderr.contains("usage:"),
            c.usage,
            "{}: usage help iff usage error\nstderr: {stderr}",
            c.name
        );
    }
}

#[test]
fn bench_report_round_trips_through_check() {
    let dir = temp_dir();
    let path = dir.join("BENCH_smoke.json");
    // Produce a smoke report (1 rep keeps this test fast).
    let out = bin()
        .args([
            "bench",
            "--suite",
            "smoke",
            "--reps",
            "1",
            "--threads",
            "2",
            "-o",
            path.to_str().unwrap(),
        ])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = std::fs::read_to_string(&path).unwrap();
    assert!(text.contains("\"esd-bench/v1\""), "{text}");
    assert!(text.contains("\"build_parallel\""), "{text}");
    assert!(text.contains("\"work_balance\""), "{text}");
    // The default CLI build arms telemetry, so stage rows must be present.
    assert!(text.contains("\"build.enumerate\""), "{text}");
    assert!(text.contains("\"cliques.enumerated\""), "{text}");

    // The validator accepts the freshly written report…
    let out = bin()
        .args(["bench", "--check", path.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("OK"));

    // …and rejects a corrupted one, with a nonzero exit for CI.
    let broken = dir.join("broken.json");
    std::fs::write(
        &broken,
        text.replace("\"esd-bench/v1\"", "\"esd-bench/v0\""),
    )
    .unwrap();
    let out = bin()
        .args(["bench", "--check", broken.to_str().unwrap()])
        .output()
        .unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("schema"));

    // A file that is not JSON at all is a DATA failure: exit 1, no usage
    // help — the request was well-formed, the report wasn't.
    let garbage = dir.join("garbage.json");
    std::fs::write(&garbage, "not json {").unwrap();
    let out = bin()
        .args(["bench", "--check", garbage.to_str().unwrap()])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("invalid bench report"), "{stderr}");
    assert!(!stderr.contains("usage:"), "{stderr}");

    // Unknown suite names are flagged before any work happens.
    let out = bin().args(["bench", "--suite", "bogus"]).output().unwrap();
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("--suite"));
}

#[test]
fn bench_human_summary_prints_a_table() {
    let out = bin()
        .args(["bench", "--suite", "smoke", "--reps", "1", "--threads", "2"])
        .output()
        .unwrap();
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("benchmark"), "{text}");
    assert!(text.contains("online_topk"), "{text}");
    assert!(text.contains("telemetry: enabled"), "{text}");
}
