//! Subgraph extraction and random sampling (the Exp-5 scalability workload).

use crate::{Graph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// Subgraph induced by `keep` (sorted vertex ids are not required). Vertices
/// are relabelled densely in the order given; returns the subgraph and the
/// mapping `new id -> old id`.
pub fn induced(g: &Graph, keep: &[VertexId]) -> (Graph, Vec<VertexId>) {
    let mut new_id = vec![u32::MAX; g.num_vertices()];
    for (i, &v) in keep.iter().enumerate() {
        assert!(
            new_id[v as usize] == u32::MAX,
            "duplicate vertex {v} in induced set"
        );
        new_id[v as usize] = i as u32;
    }
    let mut b = GraphBuilder::new(keep.len());
    for e in g.edges() {
        let (nu, nv) = (new_id[e.u as usize], new_id[e.v as usize]);
        if nu != u32::MAX && nv != u32::MAX {
            b.add_edge(nu, nv);
        }
    }
    (b.build(), keep.to_vec())
}

/// Keeps each edge independently with probability `fraction` (the paper's
/// "randomly picking 20%–80% of the edges"). The vertex set is unchanged.
pub fn sample_edges(g: &Graph, fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&fraction));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5A3B);
    let mut b = GraphBuilder::new(g.num_vertices());
    for e in g.edges() {
        if rng.gen::<f64>() < fraction {
            b.add_edge(e.u, e.v);
        }
    }
    b.build()
}

/// Induces on a uniformly random `fraction` of the vertices (the paper's
/// vertex-sampled scalability variant). Returns the relabelled subgraph.
pub fn sample_vertices(g: &Graph, fraction: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&fraction));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x7E57);
    let keep: Vec<VertexId> = g
        .vertices()
        .filter(|_| rng.gen::<f64>() < fraction)
        .collect();
    induced(g, &keep).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn induced_triangle() {
        let g = generators::complete(5);
        let (sub, map) = induced(&g, &[1, 3, 4]);
        assert_eq!(sub.num_vertices(), 3);
        assert_eq!(sub.num_edges(), 3);
        assert_eq!(map, vec![1, 3, 4]);
    }

    #[test]
    fn induced_empty_set() {
        let g = generators::complete(4);
        let (sub, _) = induced(&g, &[]);
        assert_eq!(sub.num_vertices(), 0);
        assert_eq!(sub.num_edges(), 0);
    }

    #[test]
    #[should_panic(expected = "duplicate vertex")]
    fn induced_rejects_duplicates() {
        let g = generators::complete(4);
        let _ = induced(&g, &[1, 1]);
    }

    #[test]
    fn edge_sampling_extremes_and_ratio() {
        let g = generators::erdos_renyi(200, 0.1, 1);
        assert_eq!(sample_edges(&g, 0.0, 2).num_edges(), 0);
        assert_eq!(sample_edges(&g, 1.0, 2).num_edges(), g.num_edges());
        let half = sample_edges(&g, 0.5, 2);
        let ratio = half.num_edges() as f64 / g.num_edges() as f64;
        assert!((0.35..0.65).contains(&ratio), "ratio = {ratio}");
        // Sampled edges are a subset of the original.
        for e in half.edges() {
            assert!(g.has_edge(e.u, e.v));
        }
    }

    #[test]
    fn vertex_sampling_shrinks_graph() {
        let g = generators::barabasi_albert(300, 3, 4);
        let half = sample_vertices(&g, 0.5, 3);
        assert!(half.num_vertices() < g.num_vertices());
        assert!(half.num_edges() < g.num_edges());
    }

    #[test]
    fn sampling_is_deterministic() {
        let g = generators::erdos_renyi(100, 0.2, 6);
        assert_eq!(
            sample_edges(&g, 0.4, 9).edges(),
            sample_edges(&g, 0.4, 9).edges()
        );
    }
}
