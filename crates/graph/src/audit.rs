//! Structural invariant auditing for the graph substrate.
//!
//! Every graph structure exposes a `validate()` method returning a list of
//! typed, located [`GraphViolation`]s instead of panicking — an empty list
//! means every invariant holds. The validators re-derive each invariant from
//! first principles (they never trust a cached field to check another cached
//! field sourced from the same computation), so any single corrupted word is
//! caught by at least one check:
//!
//! * [`Graph::validate`] — CSR offsets monotone and bounded, adjacency lists
//!   strictly sorted, symmetric, self-loop free, and in exact bijection with
//!   the canonical edge array; `forward_offsets` equal to the recomputed
//!   partition points.
//! * [`DynamicGraph::validate`] — the same adjacency invariants for the
//!   mutable representation, plus the cached edge count.
//!
//! The `strict-invariants` cargo feature (also active in this crate's own
//! unit tests) runs these validators at construction boundaries and panics
//! with the full violation report on failure.

use crate::{DynamicGraph, Edge, Graph, VertexId};

/// One violated invariant of a graph structure, with its location.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphViolation {
    /// `offsets` does not start at 0.
    OffsetsStart {
        /// The first offset found.
        actual: usize,
    },
    /// `offsets[vertex] > offsets[vertex + 1]`.
    OffsetsNotMonotone {
        /// The vertex whose range is reversed.
        vertex: VertexId,
    },
    /// The terminal offset does not equal the adjacency array length.
    OffsetsTerminal {
        /// Expected terminal offset (adjacency length).
        expected: usize,
        /// Terminal offset found.
        actual: usize,
    },
    /// A vertex lists itself as a neighbour.
    SelfLoop {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// An adjacency list is not strictly ascending (unsorted or duplicate).
    AdjacencyNotSorted {
        /// The vertex whose list is out of order.
        vertex: VertexId,
        /// Position within the list where order breaks.
        position: usize,
    },
    /// A neighbour id is `>= n`.
    NeighborOutOfBounds {
        /// The vertex whose list contains the bad id.
        vertex: VertexId,
        /// The out-of-bounds neighbour id.
        neighbor: VertexId,
    },
    /// `v ∈ N(u)` but `u ∉ N(v)`.
    AsymmetricAdjacency {
        /// The vertex listing the neighbour.
        u: VertexId,
        /// The neighbour missing the back-reference.
        v: VertexId,
    },
    /// The edge array length disagrees with the adjacency half-sum.
    EdgeCountMismatch {
        /// Edge count implied by the adjacency lists.
        expected: usize,
        /// Stored edge count.
        actual: usize,
    },
    /// A stored edge has `u >= v`.
    EdgeNotCanonical {
        /// Edge id of the non-canonical edge.
        id: usize,
    },
    /// The canonical edge array is not strictly sorted at `id`.
    EdgesNotSorted {
        /// Edge id where order breaks (compared with its predecessor).
        id: usize,
    },
    /// A stored edge does not appear in the adjacency lists.
    EdgeMissingFromAdjacency {
        /// Edge id of the unmatched edge.
        id: usize,
    },
    /// `forward_offsets[vertex]` differs from the recomputed partition point.
    ForwardOffsetMismatch {
        /// Index into `forward_offsets`.
        vertex: VertexId,
        /// Recomputed partition point.
        expected: usize,
        /// Stored value.
        actual: usize,
    },
    /// `forward_offsets` has the wrong length.
    ForwardOffsetsArity {
        /// Expected length (`n + 1`).
        expected: usize,
        /// Actual length.
        actual: usize,
    },
}

impl std::fmt::Display for GraphViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OffsetsStart { actual } => {
                write!(f, "offsets must start at 0, found {actual}")
            }
            Self::OffsetsNotMonotone { vertex } => {
                write!(f, "offsets decrease at vertex {vertex}")
            }
            Self::OffsetsTerminal { expected, actual } => {
                write!(
                    f,
                    "terminal offset is {actual}, adjacency holds {expected} slots"
                )
            }
            Self::SelfLoop { vertex } => write!(f, "vertex {vertex} lists itself as a neighbour"),
            Self::AdjacencyNotSorted { vertex, position } => {
                write!(
                    f,
                    "adjacency of vertex {vertex} not strictly ascending at position {position}"
                )
            }
            Self::NeighborOutOfBounds { vertex, neighbor } => {
                write!(
                    f,
                    "vertex {vertex} lists out-of-bounds neighbour {neighbor}"
                )
            }
            Self::AsymmetricAdjacency { u, v } => {
                write!(f, "{v} ∈ N({u}) but {u} ∉ N({v})")
            }
            Self::EdgeCountMismatch { expected, actual } => {
                write!(
                    f,
                    "edge array holds {actual} edges, adjacency implies {expected}"
                )
            }
            Self::EdgeNotCanonical { id } => write!(f, "edge {id} is not canonical (u >= v)"),
            Self::EdgesNotSorted { id } => write!(f, "edge array not strictly sorted at id {id}"),
            Self::EdgeMissingFromAdjacency { id } => {
                write!(f, "edge {id} is absent from the adjacency lists")
            }
            Self::ForwardOffsetMismatch {
                vertex,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "forward_offsets[{vertex}] is {actual}, recomputation gives {expected}"
                )
            }
            Self::ForwardOffsetsArity { expected, actual } => {
                write!(
                    f,
                    "forward_offsets has length {actual}, expected {expected}"
                )
            }
        }
    }
}

/// Audits the adjacency invariants shared by both graph representations:
/// strictly sorted lists, no self-loops, neighbour ids in bounds.
fn adjacency_violations<'a>(
    n: usize,
    lists: impl Iterator<Item = &'a [VertexId]>,
    out: &mut Vec<GraphViolation>,
) {
    for (u, list) in lists.enumerate() {
        let u = u as VertexId;
        for (i, &w) in list.iter().enumerate() {
            if w == u {
                out.push(GraphViolation::SelfLoop { vertex: u });
            }
            if (w as usize) >= n {
                out.push(GraphViolation::NeighborOutOfBounds {
                    vertex: u,
                    neighbor: w,
                });
            }
            if i > 0 && list[i - 1] >= w {
                out.push(GraphViolation::AdjacencyNotSorted {
                    vertex: u,
                    position: i,
                });
            }
        }
    }
}

impl Graph {
    /// Audits every structural invariant of the CSR representation,
    /// returning all violations found (empty = sound). `O(n + m·log d)`.
    pub fn validate(&self) -> Vec<GraphViolation> {
        let mut out = Vec::new();
        let n = self.num_vertices();

        // Offsets: start at 0, monotone, terminal == neighbour count.
        if self.offsets.first() != Some(&0) {
            out.push(GraphViolation::OffsetsStart {
                actual: self.offsets.first().copied().unwrap_or(usize::MAX),
            });
        }
        for (u, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                out.push(GraphViolation::OffsetsNotMonotone {
                    vertex: u as VertexId,
                });
            }
        }
        if self.offsets.last() != Some(&self.neighbors.len()) {
            out.push(GraphViolation::OffsetsTerminal {
                expected: self.neighbors.len(),
                actual: self.offsets.last().copied().unwrap_or(usize::MAX),
            });
        }
        if !out.is_empty() {
            // Slicing by corrupt offsets below would panic; the offsets
            // violations already locate the fault.
            return out;
        }

        adjacency_violations(n, (0..n as VertexId).map(|u| self.neighbors(u)), &mut out);

        // Symmetry: every directed slot must have its mirror.
        for u in 0..n as VertexId {
            for &w in self.neighbors(u) {
                if (w as usize) < n && self.neighbors(w).binary_search(&u).is_err() {
                    out.push(GraphViolation::AsymmetricAdjacency { u, v: w });
                }
            }
        }

        // Canonical edge array: strictly sorted canonical pairs, in exact
        // bijection with the adjacency lists.
        if 2 * self.edges.len() != self.neighbors.len() {
            out.push(GraphViolation::EdgeCountMismatch {
                expected: self.neighbors.len() / 2,
                actual: self.edges.len(),
            });
        }
        for (id, e) in self.edges.iter().enumerate() {
            if e.u >= e.v {
                out.push(GraphViolation::EdgeNotCanonical { id });
                continue;
            }
            if id > 0 && self.edges[id - 1] >= *e {
                out.push(GraphViolation::EdgesNotSorted { id });
            }
            let present = (e.u as usize) < n
                && (e.v as usize) < n
                && self.neighbors(e.u).binary_search(&e.v).is_ok();
            if !present {
                out.push(GraphViolation::EdgeMissingFromAdjacency { id });
            }
        }

        // forward_offsets must equal the recomputed per-vertex partition
        // points of the edge array.
        if self.forward_offsets.len() != n + 1 {
            out.push(GraphViolation::ForwardOffsetsArity {
                expected: n + 1,
                actual: self.forward_offsets.len(),
            });
        } else {
            let mut expected = 0usize;
            for u in 0..=n {
                while expected < self.edges.len() && (self.edges[expected].u as usize) < u {
                    expected += 1;
                }
                // forward_offsets[u] = first edge id with smaller endpoint >= u.
                if u > 0 && self.forward_offsets[u] != expected {
                    out.push(GraphViolation::ForwardOffsetMismatch {
                        vertex: u as VertexId,
                        expected,
                        actual: self.forward_offsets[u],
                    });
                }
            }
            if self.forward_offsets[0] != 0 {
                out.push(GraphViolation::ForwardOffsetMismatch {
                    vertex: 0,
                    expected: 0,
                    actual: self.forward_offsets[0],
                });
            }
        }
        out
    }
}

impl DynamicGraph {
    /// Audits the mutable adjacency representation: strictly sorted,
    /// self-loop-free, in-bounds, symmetric lists and a correct cached edge
    /// count. Returns all violations found (empty = sound).
    pub fn validate(&self) -> Vec<GraphViolation> {
        let mut out = Vec::new();
        let n = self.num_vertices();
        adjacency_violations(n, (0..n as VertexId).map(|u| self.neighbors(u)), &mut out);
        let mut slots = 0usize;
        for u in 0..n as VertexId {
            slots += self.degree(u);
            for &w in self.neighbors(u) {
                if (w as usize) < n && self.neighbors(w).binary_search(&u).is_err() {
                    out.push(GraphViolation::AsymmetricAdjacency { u, v: w });
                }
            }
        }
        if 2 * self.num_edges() != slots {
            out.push(GraphViolation::EdgeCountMismatch {
                expected: slots / 2,
                actual: self.num_edges(),
            });
        }
        out
    }
}

/// Panics with a formatted report when `violations` is non-empty; the
/// assertion hook used by the `strict-invariants` boundaries.
pub fn assert_clean<V: std::fmt::Display>(structure: &str, violations: &[V]) {
    assert!(
        violations.is_empty(),
        "{structure} failed its invariant audit ({} violation(s)):\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| format!("  - {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// Re-derives an [`Edge`] array's sortedness quickly; shared helper for
/// callers auditing external edge lists.
pub fn edges_strictly_sorted(edges: &[Edge]) -> bool {
    edges.windows(2).all(|w| w[0] < w[1])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn clean_graphs_have_no_violations() {
        for g in [
            Graph::from_edges(0, &[]),
            Graph::from_edges(10, &[(3, 7)]),
            generators::erdos_renyi(60, 0.15, 3),
            generators::complete(8),
        ] {
            assert_eq!(g.validate(), Vec::new());
            assert_eq!(DynamicGraph::from_graph(&g).validate(), Vec::new());
        }
    }

    #[test]
    fn detects_unsorted_adjacency() {
        let mut g = generators::complete(5);
        g.neighbors.swap(0, 1);
        let v = g.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, GraphViolation::AdjacencyNotSorted { vertex: 0, .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_self_loop() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        g.neighbors[0] = 0; // N(0) = [0] instead of [1]
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::SelfLoop { vertex: 0 }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_asymmetry_and_out_of_bounds() {
        let mut g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        g.neighbors[0] = 2; // N(0) = [2] but N(2) has no 0
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::AsymmetricAdjacency { u: 0, v: 2 }),
            "got {v:?}"
        );
        let mut g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        g.neighbors[0] = 99;
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::NeighborOutOfBounds {
                vertex: 0,
                neighbor: 99
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_bad_offsets() {
        let mut g = Graph::from_edges(4, &[(0, 1), (1, 2)]);
        g.offsets[1] = 5; // exceeds offsets[2]
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::OffsetsNotMonotone { vertex: 1 }),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_forward_offset_corruption() {
        let mut g = generators::complete(5);
        g.forward_offsets[2] += 1;
        let v = g.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, GraphViolation::ForwardOffsetMismatch { vertex: 2, .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn detects_edge_array_corruption() {
        let mut g = generators::complete(4);
        g.edges[1] = Edge { u: 3, v: 1 }; // non-canonical
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::EdgeNotCanonical { id: 1 }),
            "got {v:?}"
        );

        let mut g = generators::complete(4);
        g.edges.swap(0, 2);
        let v = g.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, GraphViolation::EdgesNotSorted { .. })),
            "got {v:?}"
        );

        let mut g = Graph::from_edges(5, &[(0, 1), (2, 3)]);
        g.edges[0] = Edge { u: 0, v: 4 }; // points at a pair absent from adjacency
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::EdgeMissingFromAdjacency { id: 0 }),
            "got {v:?}"
        );
    }

    #[test]
    fn dynamic_graph_detects_count_and_symmetry_faults() {
        let mut g = DynamicGraph::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        assert_eq!(g.validate(), Vec::new());
        g.m = 7;
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::EdgeCountMismatch {
                expected: 2,
                actual: 7
            }),
            "got {v:?}"
        );
        let mut g = DynamicGraph::new(3);
        g.insert_edge(0, 1);
        g.adj[1].clear(); // break symmetry; count also off
        let v = g.validate();
        assert!(
            v.contains(&GraphViolation::AsymmetricAdjacency { u: 0, v: 1 }),
            "got {v:?}"
        );
    }

    #[test]
    fn assert_clean_formats_report() {
        assert_clean::<GraphViolation>("graph", &[]);
        let err = std::panic::catch_unwind(|| {
            assert_clean("graph", &[GraphViolation::SelfLoop { vertex: 3 }]);
        })
        .unwrap_err();
        let msg = err.downcast_ref::<String>().unwrap();
        assert!(msg.contains("graph failed"), "got {msg}");
        assert!(msg.contains("vertex 3"), "got {msg}");
    }

    #[test]
    fn sorted_helper() {
        assert!(edges_strictly_sorted(&[Edge::new(0, 1), Edge::new(0, 2)]));
        assert!(!edges_strictly_sorted(&[Edge::new(0, 2), Edge::new(0, 1)]));
    }
}
