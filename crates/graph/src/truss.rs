//! k-truss decomposition.
//!
//! The trussness of an edge is the largest `k` such that the edge survives
//! in the `k`-truss: the maximal subgraph where every edge closes at least
//! `k − 2` triangles. The paper cites truss decomposition (refs \[10\],
//! \[11\]) as the
//! neighbouring cohesive-subgraph machinery; it shares the edge-support
//! kernel with the common-neighbour upper bound, and the experiments use it
//! as an additional edge-importance baseline.

use crate::{triangles, Graph};

/// Trussness of every edge (index = edge id) by support peeling in
/// `O(m^1.5)`-ish time. Edges in no triangle get trussness 2.
pub fn truss_decomposition(g: &Graph) -> Vec<u32> {
    let m = g.num_edges();
    let mut support: Vec<u32> = triangles::edge_support(g);
    let max_support = support.iter().copied().max().unwrap_or(0) as usize;

    // Bucket queue over support values.
    let mut bucket_start = vec![0usize; max_support + 2];
    for &s in &support {
        bucket_start[s as usize + 1] += 1;
    }
    for i in 1..bucket_start.len() {
        bucket_start[i] += bucket_start[i - 1];
    }
    let mut pos = vec![0usize; m];
    let mut order = vec![0u32; m];
    {
        let mut cursor = bucket_start.clone();
        for e in 0..m {
            let s = support[e] as usize;
            pos[e] = cursor[s];
            order[cursor[s]] = e as u32;
            cursor[s] += 1;
        }
    }
    let mut removed = vec![false; m];
    let mut truss = vec![2u32; m];
    let mut k = 2u32;

    // Helper: decrement support of a live edge, keeping buckets consistent.
    let decrement = |e: usize,
                     support: &mut Vec<u32>,
                     pos: &mut Vec<usize>,
                     order: &mut Vec<u32>,
                     bucket_start: &mut Vec<usize>,
                     floor: usize| {
        let s = support[e] as usize;
        if s == 0 {
            return;
        }
        // Swap e with the first edge of its bucket (not yet processed).
        let front = bucket_start[s].max(floor);
        let fe = order[front] as usize;
        let pe = pos[e];
        order.swap(front, pe);
        pos[e] = front;
        pos[fe] = pe;
        bucket_start[s] = front + 1;
        support[e] -= 1;
    };

    for i in 0..m {
        let e = order[i] as usize;
        let s = support[e];
        k = k.max(s + 2);
        truss[e] = k;
        removed[e] = true;
        // Remove e = (u, v): every triangle (u, v, w) loses this edge, so
        // the other two edges lose one support.
        let edge = g.edge(e as u32);
        let (a, b) = if g.degree(edge.u) <= g.degree(edge.v) {
            (edge.u, edge.v)
        } else {
            (edge.v, edge.u)
        };
        for &w in g.neighbors(a) {
            if w == b {
                continue;
            }
            let (Some(e1), Some(e2)) = (g.edge_id(a, w), g.edge_id(b, w)) else {
                continue;
            };
            if removed[e1 as usize] || removed[e2 as usize] {
                continue;
            }
            // Only decrement edges not yet peeled (position after i).
            if pos[e1 as usize] > i {
                decrement(
                    e1 as usize,
                    &mut support,
                    &mut pos,
                    &mut order,
                    &mut bucket_start,
                    i + 1,
                );
            }
            if pos[e2 as usize] > i {
                decrement(
                    e2 as usize,
                    &mut support,
                    &mut pos,
                    &mut order,
                    &mut bucket_start,
                    i + 1,
                );
            }
        }
    }
    truss
}

/// The maximum trussness over all edges (0 for an edgeless graph).
pub fn max_trussness(g: &Graph) -> u32 {
    truss_decomposition(g).into_iter().max().unwrap_or(0)
}

/// Edges of the `k`-truss: the maximal subgraph where every edge has
/// trussness ≥ `k`.
pub fn k_truss_edges(g: &Graph, k: u32) -> Vec<crate::Edge> {
    truss_decomposition(g)
        .iter()
        .enumerate()
        .filter(|&(_, &t)| t >= k)
        .map(|(e, _)| g.edge(e as u32))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    /// Reference implementation: iterate peeling without bucket tricks.
    fn naive_truss(g: &Graph) -> Vec<u32> {
        let m = g.num_edges();
        let mut alive: Vec<bool> = vec![true; m];
        let mut truss = vec![2u32; m];
        let support = |g: &Graph, alive: &[bool], e: usize| -> u32 {
            let edge = g.edge(e as u32);
            g.common_neighbors(edge.u, edge.v)
                .iter()
                .filter(|&&w| {
                    let e1 = g.edge_id(edge.u, w).unwrap() as usize;
                    let e2 = g.edge_id(edge.v, w).unwrap() as usize;
                    alive[e1] && alive[e2]
                })
                .count() as u32
        };
        let mut k = 2u32;
        let mut remaining = m;
        while remaining > 0 {
            // Peel everything with support <= k-2, else bump k.
            let mut peeled_any = true;
            while peeled_any {
                peeled_any = false;
                for e in 0..m {
                    if alive[e] && support(g, &alive, e) + 2 <= k {
                        alive[e] = false;
                        truss[e] = k;
                        remaining -= 1;
                        peeled_any = true;
                    }
                }
            }
            k += 1;
        }
        truss
    }

    #[test]
    fn clique_trussness() {
        // Every edge of K_n has trussness n.
        for n in [3usize, 4, 5, 6] {
            let g = generators::complete(n);
            let t = truss_decomposition(&g);
            assert!(t.iter().all(|&x| x == n as u32), "K{n}: {t:?}");
        }
    }

    #[test]
    fn triangle_free_is_2_truss() {
        let g = generators::cycle(8);
        assert!(truss_decomposition(&g).iter().all(|&t| t == 2));
        assert_eq!(max_trussness(&generators::star(6)), 2);
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(30, 0.25, seed);
            assert_eq!(truss_decomposition(&g), naive_truss(&g), "seed {seed}");
        }
        for seed in 0..3 {
            let g = generators::clique_overlap(40, 30, 6, seed);
            assert_eq!(
                truss_decomposition(&g),
                naive_truss(&g),
                "overlap seed {seed}"
            );
        }
    }

    #[test]
    fn k_truss_is_nested() {
        let g = generators::clique_overlap(60, 50, 6, 1);
        let kmax = max_trussness(&g);
        let mut prev = g.num_edges();
        for k in 2..=kmax {
            let edges = k_truss_edges(&g, k).len();
            assert!(edges <= prev, "k-trusses must be nested");
            prev = edges;
        }
        assert!(k_truss_edges(&g, kmax + 1).is_empty());
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert!(truss_decomposition(&g).is_empty());
        assert_eq!(max_trussness(&g), 0);
    }
}
