//! A mutable adjacency-list graph for the dynamic maintenance algorithms.

use crate::{Edge, Graph, VertexId};

/// An undirected simple graph with sorted adjacency vectors supporting
/// `O(d)` edge insertion and deletion — the substrate of the index
/// maintenance algorithms (§V of the paper).
///
/// # Examples
///
/// ```
/// use esd_graph::DynamicGraph;
///
/// let mut g = DynamicGraph::new(3);
/// assert!(g.insert_edge(0, 1));
/// assert!(!g.insert_edge(1, 0), "already present");
/// assert!(g.remove_edge(0, 1));
/// assert!(!g.remove_edge(0, 1), "already gone");
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynamicGraph {
    pub(crate) adj: Vec<Vec<VertexId>>,
    pub(crate) m: usize,
}

impl DynamicGraph {
    /// An edgeless graph on `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            m: 0,
        }
    }

    /// Copies a static graph into mutable form.
    pub fn from_graph(g: &Graph) -> Self {
        let adj = g.vertices().map(|v| g.neighbors(v).to_vec()).collect();
        Self {
            adj,
            m: g.num_edges(),
        }
    }

    /// Freezes into an immutable CSR [`Graph`].
    pub fn to_graph(&self) -> Graph {
        let mut b = crate::GraphBuilder::with_capacity(self.num_vertices(), self.m);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if (u as VertexId) < v {
                    b.add_edge(u as VertexId, v);
                }
            }
        }
        b.build()
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.m
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.adj[u as usize].len()
    }

    /// Sorted neighbour list of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.adj[u as usize]
    }

    /// `O(log d)` adjacency test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        u != v && self.adj[u as usize].binary_search(&v).is_ok()
    }

    /// Ensures the vertex set covers `v`.
    pub fn ensure_vertex(&mut self, v: VertexId) {
        if v as usize >= self.adj.len() {
            self.adj.resize(v as usize + 1, Vec::new());
        }
    }

    /// Inserts `(u, v)`; returns `false` if already present or a self-loop.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.ensure_vertex(u.max(v));
        match self.adj[u as usize].binary_search(&v) {
            Ok(_) => false,
            Err(pos_u) => {
                self.adj[u as usize].insert(pos_u, v);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect_err("symmetric list out of sync");
                self.adj[v as usize].insert(pos_v, u);
                self.m += 1;
                true
            }
        }
    }

    /// Removes `(u, v)`; returns `false` if absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v || u as usize >= self.adj.len() || v as usize >= self.adj.len() {
            return false;
        }
        match self.adj[u as usize].binary_search(&v) {
            Err(_) => false,
            Ok(pos_u) => {
                self.adj[u as usize].remove(pos_u);
                let pos_v = self.adj[v as usize]
                    .binary_search(&u)
                    .expect("symmetric list out of sync");
                self.adj[v as usize].remove(pos_v);
                self.m -= 1;
                true
            }
        }
    }

    /// Sorted common neighbourhood `N(u) ∩ N(v)`.
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        crate::intersect::intersect_adaptive(self.neighbors(u), self.neighbors(v))
    }

    /// All edges in canonical order.
    pub fn edges(&self) -> Vec<Edge> {
        let mut out = Vec::with_capacity(self.m);
        for (u, nbrs) in self.adj.iter().enumerate() {
            for &v in nbrs {
                if (u as VertexId) < v {
                    out.push(Edge {
                        u: u as VertexId,
                        v,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_static() {
        let g = generators::erdos_renyi(40, 0.2, 5);
        let d = DynamicGraph::from_graph(&g);
        assert_eq!(d.to_graph(), g);
    }

    #[test]
    fn insert_remove_keeps_sorted_symmetric() {
        let mut g = DynamicGraph::new(5);
        g.insert_edge(3, 1);
        g.insert_edge(3, 0);
        g.insert_edge(3, 4);
        assert_eq!(g.neighbors(3), &[0, 1, 4]);
        assert!(g.has_edge(1, 3));
        g.remove_edge(1, 3);
        assert_eq!(g.neighbors(3), &[0, 4]);
        assert!(!g.has_edge(3, 1));
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn self_loop_rejected() {
        let mut g = DynamicGraph::new(2);
        assert!(!g.insert_edge(1, 1));
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn grows_on_demand() {
        let mut g = DynamicGraph::new(0);
        g.insert_edge(7, 2);
        assert_eq!(g.num_vertices(), 8);
        assert!(g.has_edge(2, 7));
    }

    #[test]
    fn remove_out_of_range_is_noop() {
        let mut g = DynamicGraph::new(2);
        assert!(!g.remove_edge(0, 9));
    }

    proptest! {
        #[test]
        fn random_ops_match_btreeset_model(ops in prop::collection::vec((any::<bool>(), 0u32..12, 0u32..12), 0..120)) {
            let mut g = DynamicGraph::new(12);
            let mut model = std::collections::BTreeSet::new();
            for (insert, a, b) in ops {
                if a == b { continue; }
                let key = (a.min(b), a.max(b));
                if insert {
                    prop_assert_eq!(g.insert_edge(a, b), model.insert(key));
                } else {
                    prop_assert_eq!(g.remove_edge(a, b), model.remove(&key));
                }
                prop_assert_eq!(g.num_edges(), model.len());
            }
            let edges: Vec<(u32, u32)> = g.edges().iter().map(|e| (e.u, e.v)).collect();
            let expect: Vec<(u32, u32)> = model.into_iter().collect();
            prop_assert_eq!(edges, expect);
        }
    }
}
