//! Sorted-set intersection kernels.
//!
//! Every hot loop of the ESD algorithms intersects sorted adjacency lists:
//! common neighbourhoods `N(u) ∩ N(v)` (Definition 1), common out-neighbours
//! `N⁺(u) ∩ N⁺(v)` in the 4-clique enumerator, and the common-neighbour upper
//! bound of the online search. Two strategies are provided and an adaptive
//! dispatcher picks between them:
//!
//! * [`intersect_merge`] — linear two-pointer merge, best when the lists have
//!   comparable lengths.
//! * [`intersect_gallop`] — galloping (exponential) search of the longer list
//!   for each element of the shorter, `O(s·log(l/s))`, best for very skewed
//!   length ratios (a low-degree vertex against a hub).

use crate::VertexId;

/// Length ratio above which galloping beats the linear merge. The crossover
/// was measured with the `micro` criterion bench; anything in 16–64 performs
/// within noise of each other.
const GALLOP_RATIO: usize = 32;

/// Two-pointer merge intersection of two sorted slices.
pub fn intersect_merge(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection: for each element of the shorter slice, locate it
/// in the (much) longer slice by exponential + binary search.
pub fn intersect_gallop(short: &[VertexId], long: &[VertexId], out: &mut Vec<VertexId>) {
    debug_assert!(short.len() <= long.len());
    let mut lo = 0usize;
    for &x in short {
        // Exponential probe from the current frontier.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        // `long[hi]` (if in range) is >= x, so include it in the window.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= long.len() {
            break;
        }
    }
}

/// Intersects two sorted slices, dispatching on the length ratio.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    if long.len() / short.len() >= GALLOP_RATIO {
        intersect_gallop(short, long, out);
    } else {
        intersect_merge(short, long, out);
    }
}

/// Allocating convenience wrapper around [`intersect_into`].
pub fn intersect_adaptive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

/// `|a ∩ b|` without materialising the intersection.
pub fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len() >= GALLOP_RATIO {
        let mut count = 0;
        let mut lo = 0usize;
        for &x in short {
            let mut step = 1usize;
            let mut hi = lo;
            while hi < long.len() && long[hi] < x {
                lo = hi + 1;
                hi = lo + step;
                step <<= 1;
            }
            let hi = (hi + 1).min(long.len());
            match long[lo..hi].binary_search(&x) {
                Ok(pos) => {
                    count += 1;
                    lo += pos + 1;
                }
                Err(pos) => lo += pos,
            }
            if lo >= long.len() {
                break;
            }
        }
        count
    } else {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn merge_basic() {
        let mut out = Vec::new();
        intersect_merge(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn gallop_basic() {
        let long: Vec<u32> = (0..1000).map(|x| x * 3).collect();
        let mut out = Vec::new();
        intersect_gallop(&[3, 4, 9, 2997, 2998], &long, &mut out);
        assert_eq!(out, vec![3, 9, 2997]);
    }

    #[test]
    fn empty_inputs() {
        assert!(intersect_adaptive(&[], &[1, 2, 3]).is_empty());
        assert!(intersect_adaptive(&[1, 2, 3], &[]).is_empty());
        assert_eq!(intersection_size(&[], &[]), 0);
    }

    #[test]
    fn disjoint_and_identical() {
        assert!(intersect_adaptive(&[1, 3], &[2, 4]).is_empty());
        assert_eq!(intersect_adaptive(&[5, 6, 7], &[5, 6, 7]), vec![5, 6, 7]);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::btree_set(0u32..500, 0..120).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #[test]
        fn all_kernels_match_btreeset(a in sorted_set(), b in sorted_set()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();

            let mut merge = Vec::new();
            intersect_merge(&a, &b, &mut merge);
            prop_assert_eq!(&merge, &expect);

            let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            let mut gallop = Vec::new();
            intersect_gallop(short, long, &mut gallop);
            prop_assert_eq!(&gallop, &expect);

            prop_assert_eq!(&intersect_adaptive(&a, &b), &expect);
            prop_assert_eq!(intersection_size(&a, &b), expect.len());
        }
    }
}
