//! Sorted-set intersection kernels.
//!
//! Every hot loop of the ESD algorithms intersects sorted adjacency lists:
//! common neighbourhoods `N(u) ∩ N(v)` (Definition 1), common out-neighbours
//! `N⁺(u) ∩ N⁺(v)` in the 4-clique enumerator, and the common-neighbour upper
//! bound of the online search. Three strategies are provided and an adaptive
//! dispatcher picks between them:
//!
//! * [`intersect_merge`] — linear two-pointer merge, best when the lists have
//!   comparable lengths and sparse, scattered ids.
//! * [`intersect_gallop`] — galloping (exponential) search of the longer list
//!   for each element of the shorter, `O(s·log(l/s))`, best for very skewed
//!   length ratios (a low-degree vertex against a hub).
//! * [`intersect_bitset`] — blocked-bitset / SWAR kernel: both lists are
//!   walked at 64-id *word* granularity (`id >> 6`), per-word membership
//!   masks are built and `AND`ed, and the surviving bits are emitted. Up to
//!   64 candidates are resolved by one branch-free word operation, which
//!   wins on high-degree vertices whose neighbour ids cluster into dense
//!   runs (community-structured graphs after degree relabelling).
//!
//! [`intersect_into`] / [`intersection_size`] dispatch adaptively using the
//! process-wide [`KernelConfig`]; the crossover constants default to values
//! measured with [`calibrate`] (see each constant's doc) and can be
//! re-measured on the running machine by calling [`calibrate`] yourself —
//! the bench suite does so before timing anything. Each dispatch bumps one
//! of the `intersect.merge` / `intersect.gallop` / `intersect.bitset`
//! telemetry counters (the single owning call site is the dispatcher), so a
//! counter delta tells you exactly which kernels a workload exercised — see
//! `docs/kernels.md` for how to read one.
//!
//! Under the `strict-invariants` feature every non-merge dispatch re-runs
//! [`intersect_merge`] on the same inputs and asserts identical output, so
//! any workload run with the feature armed *proves* kernel agreement on the
//! exact slices it intersected.
//!
//! [`WordTiles`] exposes the bitset kernel's word-blocked layout as a
//! reusable membership structure; the 4-clique enumerator builds one per
//! edge neighbourhood and streams candidate lists through it (see
//! [`crate::cliques`]).

use crate::VertexId;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Length ratio above which galloping beats the linear merge. The default
/// is the [`calibrate`] measurement from the development machine (16, with
/// the 16–64 band within noise per the `micro` criterion bench); calling
/// [`calibrate`] at startup replaces it with a value measured on the
/// running machine via [`set_kernel_config`].
pub const GALLOP_RATIO: usize = 16;

/// Minimum shorter-list length before the bitset kernel is considered.
/// Below this the span arithmetic costs more than the merge it replaces.
pub const BITSET_MIN_LEN: usize = 16;

/// Minimum average number of list elements per 64-id word (across the union
/// span of both lists) for the bitset kernel to be dispatched. [`calibrate`]
/// on the development machine measured the merge→bitset crossover between 2
/// (cold branch predictor, the common case inside a build sweeping many
/// distinct neighbourhoods) and 8 (predictor fully warmed on one repeated
/// input); the default ships the conservative end of that band and a
/// [`calibrate`] / [`set_kernel_config`] call supersedes it.
pub const BITSET_MIN_PER_WORD: usize = 8;

static GALLOP_RATIO_CFG: AtomicUsize = AtomicUsize::new(GALLOP_RATIO);
static BITSET_MIN_LEN_CFG: AtomicUsize = AtomicUsize::new(BITSET_MIN_LEN);
static BITSET_MIN_PER_WORD_CFG: AtomicUsize = AtomicUsize::new(BITSET_MIN_PER_WORD);

/// The crossover thresholds used by the adaptive dispatcher.
///
/// Process-global: [`set_kernel_config`] installs one, [`kernel_config`]
/// reads the current one, [`calibrate`] measures and installs one. All
/// three kernels produce identical results, so changing the config is
/// always safe — it only moves work between kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KernelConfig {
    /// Dispatch to [`intersect_gallop`] when `long.len() / short.len()`
    /// reaches this ratio.
    pub gallop_ratio: usize,
    /// Never dispatch to [`intersect_bitset`] when the shorter list is
    /// shorter than this.
    pub bitset_min_len: usize,
    /// Dispatch to [`intersect_bitset`] when the combined element count
    /// divided by the number of 64-id words spanned reaches this density.
    pub bitset_min_per_word: usize,
}

impl Default for KernelConfig {
    fn default() -> Self {
        Self {
            gallop_ratio: GALLOP_RATIO,
            bitset_min_len: BITSET_MIN_LEN,
            bitset_min_per_word: BITSET_MIN_PER_WORD,
        }
    }
}

/// The current process-wide dispatch thresholds.
#[must_use]
pub fn kernel_config() -> KernelConfig {
    KernelConfig {
        gallop_ratio: GALLOP_RATIO_CFG.load(Ordering::Relaxed).max(1),
        bitset_min_len: BITSET_MIN_LEN_CFG.load(Ordering::Relaxed),
        bitset_min_per_word: BITSET_MIN_PER_WORD_CFG.load(Ordering::Relaxed).max(1),
    }
}

/// Installs new process-wide dispatch thresholds.
pub fn set_kernel_config(cfg: KernelConfig) {
    GALLOP_RATIO_CFG.store(cfg.gallop_ratio.max(1), Ordering::Relaxed);
    BITSET_MIN_LEN_CFG.store(cfg.bitset_min_len, Ordering::Relaxed);
    BITSET_MIN_PER_WORD_CFG.store(cfg.bitset_min_per_word.max(1), Ordering::Relaxed);
}

/// Which kernel the adaptive dispatcher selected for a pair of lists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kernel {
    /// Linear two-pointer merge.
    Merge,
    /// Exponential + binary search of the longer list.
    Gallop,
    /// Word-blocked SWAR mask intersection.
    Bitset,
}

impl Kernel {
    /// The kernel's telemetry-counter suffix (`"merge"` / `"gallop"` /
    /// `"bitset"`).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::Merge => "merge",
            Kernel::Gallop => "gallop",
            Kernel::Bitset => "bitset",
        }
    }
}

/// The kernel the dispatcher would pick for these inputs under the current
/// [`kernel_config`]. Pure — no counters move. Both slices must be
/// non-empty (the dispatcher answers trivially before choosing otherwise).
#[must_use]
pub fn choose_kernel(a: &[VertexId], b: &[VertexId]) -> Kernel {
    debug_assert!(!a.is_empty() && !b.is_empty());
    let cfg = kernel_config();
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if long.len() / short.len() >= cfg.gallop_ratio {
        return Kernel::Gallop;
    }
    if short.len() >= cfg.bitset_min_len {
        let lo = a[0].min(b[0]);
        let hi = (*a.last().expect("non-empty")).max(*b.last().expect("non-empty"));
        let words = ((hi - lo) >> 6) as usize + 1;
        if a.len() + b.len() >= words.saturating_mul(cfg.bitset_min_per_word) {
            return Kernel::Bitset;
        }
    }
    Kernel::Merge
}

/// The one owning call site of the `intersect.*` dispatch counters: every
/// adaptive dispatch (materialising or counting) records its chosen kernel
/// here and nowhere else, so the three counters sum to the number of
/// non-trivial adaptive intersections performed.
#[inline]
fn record_dispatch(kernel: Kernel) {
    let metric = match kernel {
        Kernel::Merge => esd_telemetry::Metric::IntersectMerge,
        Kernel::Gallop => esd_telemetry::Metric::IntersectGallop,
        Kernel::Bitset => esd_telemetry::Metric::IntersectBitset,
    };
    esd_telemetry::add(metric, 1);
}

/// Two-pointer merge intersection of two sorted slices.
pub fn intersect_merge(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Galloping intersection: for each element of the shorter slice, locate it
/// in the (much) longer slice by exponential + binary search.
pub fn intersect_gallop(short: &[VertexId], long: &[VertexId], out: &mut Vec<VertexId>) {
    debug_assert!(short.len() <= long.len());
    let mut lo = 0usize;
    for &x in short {
        // Exponential probe from the current frontier.
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        // `long[hi]` (if in range) is >= x, so include it in the window.
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                out.push(x);
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= long.len() {
            break;
        }
    }
}

/// Blocked-bitset (SWAR) intersection of two sorted slices.
///
/// Both lists are consumed a 64-id word at a time: elements sharing
/// `id >> 6` are gathered into one `u64` membership mask per list, the two
/// masks are `AND`ed, and the set bits of the product are emitted in
/// ascending order. Words present in only one list are skipped without any
/// per-element comparison, and words present in both resolve up to 64
/// membership tests with a single branch-free `&`.
pub fn intersect_bitset(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        let wa = a[i] >> 6;
        let wb = b[j] >> 6;
        if wa < wb {
            i += 1;
            while i < a.len() && a[i] >> 6 < wb {
                i += 1;
            }
        } else if wb < wa {
            j += 1;
            while j < b.len() && b[j] >> 6 < wa {
                j += 1;
            }
        } else {
            let w = wa;
            let mut ma = 0u64;
            while i < a.len() && a[i] >> 6 == w {
                ma |= 1u64 << (a[i] & 63);
                i += 1;
            }
            let mut mb = 0u64;
            while j < b.len() && b[j] >> 6 == w {
                mb |= 1u64 << (b[j] & 63);
                j += 1;
            }
            let mut m = ma & mb;
            while m != 0 {
                let bit = m.trailing_zeros();
                out.push((w << 6) | bit);
                m &= m - 1;
            }
        }
    }
}

/// Re-runs the reference merge kernel and asserts the fast kernel's output
/// matches — the `strict-invariants` proof that every dispatch is
/// result-identical to [`intersect_merge`].
#[cfg(feature = "strict-invariants")]
fn verify_against_merge(a: &[VertexId], b: &[VertexId], kernel: Kernel, got: &[VertexId]) {
    let mut expect = Vec::new();
    intersect_merge(a, b, &mut expect);
    assert!(
        got == expect.as_slice(),
        "{} kernel disagrees with merge: got {got:?}, expected {expect:?}",
        kernel.name()
    );
}

/// Intersects two sorted slices, dispatching per [`choose_kernel`] and
/// recording the chosen kernel in the `intersect.*` telemetry counters.
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    let kernel = choose_kernel(a, b);
    record_dispatch(kernel);
    #[cfg(feature = "strict-invariants")]
    let start = out.len();
    match kernel {
        Kernel::Merge => intersect_merge(short, long, out),
        Kernel::Gallop => intersect_gallop(short, long, out),
        Kernel::Bitset => intersect_bitset(short, long, out),
    }
    #[cfg(feature = "strict-invariants")]
    verify_against_merge(a, b, kernel, &out[start..]);
}

/// Allocating convenience wrapper around [`intersect_into`].
#[must_use]
pub fn intersect_adaptive(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::with_capacity(a.len().min(b.len()));
    intersect_into(a, b, &mut out);
    out
}

fn count_merge(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

fn count_gallop(short: &[VertexId], long: &[VertexId]) -> usize {
    let mut count = 0;
    let mut lo = 0usize;
    for &x in short {
        let mut step = 1usize;
        let mut hi = lo;
        while hi < long.len() && long[hi] < x {
            lo = hi + 1;
            hi = lo + step;
            step <<= 1;
        }
        let hi = (hi + 1).min(long.len());
        match long[lo..hi].binary_search(&x) {
            Ok(pos) => {
                count += 1;
                lo += pos + 1;
            }
            Err(pos) => lo += pos,
        }
        if lo >= long.len() {
            break;
        }
    }
    count
}

/// Counting twin of [`intersect_bitset`]: the `AND`ed word masks are
/// `popcnt`ed instead of expanded, so dense words cost one instruction.
fn count_bitset(a: &[VertexId], b: &[VertexId]) -> usize {
    let (mut i, mut j, mut count) = (0, 0, 0usize);
    while i < a.len() && j < b.len() {
        let wa = a[i] >> 6;
        let wb = b[j] >> 6;
        if wa < wb {
            i += 1;
            while i < a.len() && a[i] >> 6 < wb {
                i += 1;
            }
        } else if wb < wa {
            j += 1;
            while j < b.len() && b[j] >> 6 < wa {
                j += 1;
            }
        } else {
            let w = wa;
            let mut ma = 0u64;
            while i < a.len() && a[i] >> 6 == w {
                ma |= 1u64 << (a[i] & 63);
                i += 1;
            }
            let mut mb = 0u64;
            while j < b.len() && b[j] >> 6 == w {
                mb |= 1u64 << (b[j] & 63);
                j += 1;
            }
            count += (ma & mb).count_ones() as usize;
        }
    }
    count
}

/// `|a ∩ b|` without materialising the intersection. Dispatches and counts
/// exactly like [`intersect_into`].
#[must_use]
pub fn intersection_size(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    let kernel = choose_kernel(a, b);
    record_dispatch(kernel);
    let count = match kernel {
        Kernel::Merge => count_merge(short, long),
        Kernel::Gallop => count_gallop(short, long),
        Kernel::Bitset => count_bitset(short, long),
    };
    #[cfg(feature = "strict-invariants")]
    assert_eq!(
        count,
        count_merge(a, b),
        "{} counting kernel disagrees with merge",
        kernel.name()
    );
    count
}

/// A word-blocked membership set over sorted vertex ids — the bitset
/// kernel's layout, reusable across many probes.
///
/// Each *tile* is a `(id >> 6, u64 mask)` pair; tiles are stored sorted and
/// contiguously (two parallel arrays), so probing a sorted candidate list
/// walks both sequentially — the cache-conscious replacement for the old
/// size-`n` generation-stamped scratch array in the 4-clique enumerator,
/// whose probes were random accesses into an array as large as the graph.
#[derive(Debug, Default)]
pub struct WordTiles {
    words: Vec<u32>,
    masks: Vec<u64>,
}

impl WordTiles {
    /// An empty tile set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty tile set with room for `words` tiles.
    #[must_use]
    pub fn with_capacity(words: usize) -> Self {
        Self {
            words: Vec::with_capacity(words),
            masks: Vec::with_capacity(words),
        }
    }

    /// Rebuilds the tiles from a sorted id slice, reusing the allocations.
    pub fn build(&mut self, sorted: &[VertexId]) {
        self.words.clear();
        self.masks.clear();
        for &x in sorted {
            let w = x >> 6;
            let bit = 1u64 << (x & 63);
            match self.words.last() {
                Some(&last) if last == w => {
                    *self.masks.last_mut().expect("parallel arrays") |= bit;
                }
                _ => {
                    self.words.push(w);
                    self.masks.push(bit);
                }
            }
        }
    }

    /// Number of (non-empty) tiles.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether the set holds no ids at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Membership test for one id (binary search over the tiles).
    #[must_use]
    pub fn contains(&self, x: VertexId) -> bool {
        self.words
            .binary_search(&(x >> 6))
            .is_ok_and(|t| self.masks[t] & (1u64 << (x & 63)) != 0)
    }

    /// Streams the members of `sorted ∩ self` to `f` in ascending order.
    ///
    /// Sequential two-pointer walk over the candidate list and the tile
    /// array; with both sides sorted the per-candidate cost is amortised
    /// `O(1)` with contiguous memory traffic only.
    pub fn intersect_sorted(&self, sorted: &[VertexId], mut f: impl FnMut(VertexId)) {
        let mut t = 0usize;
        for &x in sorted {
            let w = x >> 6;
            while t < self.words.len() && self.words[t] < w {
                t += 1;
            }
            if t == self.words.len() {
                return;
            }
            if self.words[t] == w && self.masks[t] & (1u64 << (x & 63)) != 0 {
                f(x);
            }
        }
    }
}

/// Measures the merge/gallop and merge/bitset crossovers on the running
/// machine, installs the result via [`set_kernel_config`], and returns it.
///
/// Takes a few milliseconds. The bench suite calls this before timing
/// anything so reported numbers use machine-tuned dispatch; long-running
/// services may call it once at startup. The synthetic workloads mirror
/// the shapes the dispatcher distinguishes: a short list against ever
/// longer ones (gallop), and equal-length lists of increasing per-word
/// density (bitset).
pub fn calibrate() -> KernelConfig {
    let cfg = KernelConfig {
        gallop_ratio: calibrate_gallop_ratio(),
        bitset_min_per_word: calibrate_bitset_density(),
        ..KernelConfig::default()
    };
    set_kernel_config(cfg);
    cfg
}

/// Best-of-3 wall time of 16 runs of `f` (which returns a size so the
/// optimiser cannot delete the work).
fn best_time_ns(mut f: impl FnMut() -> usize) -> u64 {
    let mut best = u64::MAX;
    for _ in 0..3 {
        let start = std::time::Instant::now();
        let mut sink = 0usize;
        for _ in 0..16 {
            sink = sink.wrapping_add(f());
        }
        let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        std::hint::black_box(sink);
        best = best.min(ns);
    }
    best
}

fn calibrate_gallop_ratio() -> usize {
    // A 64-element list against longer and longer ones; every short element
    // is present in the long list, spread evenly. Materialising kernels are
    // timed (not the counting twins) because neighbourhood construction —
    // the dominant workload — materialises.
    let short_len = 64usize;
    let mut out: Vec<VertexId> = Vec::new();
    for ratio in [4usize, 8, 16, 32, 64, 128] {
        let long: Vec<VertexId> = (0..(short_len * ratio) as u32).collect();
        let short: Vec<VertexId> = (0..short_len as u32).map(|i| i * ratio as u32).collect();
        let merge = best_time_ns(|| {
            out.clear();
            intersect_merge(&short, &long, &mut out);
            out.len()
        });
        let gallop = best_time_ns(|| {
            out.clear();
            intersect_gallop(&short, &long, &mut out);
            out.len()
        });
        if gallop < merge {
            return ratio;
        }
    }
    GALLOP_RATIO
}

/// `splitmix64` — a tiny deterministic mixer for the calibration workloads
/// (pseudorandom membership defeats the branch predictor the way real,
/// non-periodic adjacency data does; a periodic pattern would flatter the
/// merge kernel).
fn splitmix(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn calibrate_bitset_density() -> usize {
    // Two ~2048-element lists drawn pseudorandomly from a span sized to
    // hit a target *combined* per-word density. The smallest density where
    // the word kernel wins becomes the dispatch threshold.
    for density in [2usize, 4, 8, 16, 32, 64] {
        // Each id joins each list with probability density/128, so the two
        // lists together average `density` elements per 64-id word.
        let span = 2048 * 128 / density;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for id in 0..span as u32 {
            let h = splitmix(u64::from(id));
            if h & 127 < density as u64 {
                a.push(id);
            }
            if (h >> 8) & 127 < density as u64 {
                b.push(id);
            }
        }
        let mut out: Vec<VertexId> = Vec::new();
        let merge = best_time_ns(|| {
            out.clear();
            intersect_merge(&a, &b, &mut out);
            out.len()
        });
        let bitset = best_time_ns(|| {
            out.clear();
            intersect_bitset(&a, &b, &mut out);
            out.len()
        });
        if bitset < merge {
            return density;
        }
    }
    // The word kernel never won: effectively disable it.
    65
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    #[test]
    fn merge_basic() {
        let mut out = Vec::new();
        intersect_merge(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
        assert_eq!(out, vec![3, 7]);
    }

    #[test]
    fn gallop_basic() {
        let long: Vec<u32> = (0..1000).map(|x| x * 3).collect();
        let mut out = Vec::new();
        intersect_gallop(&[3, 4, 9, 2997, 2998], &long, &mut out);
        assert_eq!(out, vec![3, 9, 2997]);
    }

    #[test]
    fn bitset_basic() {
        let mut out = Vec::new();
        intersect_bitset(&[1, 3, 5, 7, 64, 65], &[2, 3, 4, 7, 9, 65, 700], &mut out);
        assert_eq!(out, vec![3, 7, 65]);
        assert_eq!(
            count_bitset(&[1, 3, 5, 7, 64, 65], &[2, 3, 4, 7, 9, 65, 700]),
            3
        );
    }

    #[test]
    fn bitset_handles_word_gaps_and_max_ids() {
        let a = vec![0, 63, 64, 127, u32::MAX - 1, u32::MAX];
        let b = vec![63, 100, 127, 128, u32::MAX];
        let mut out = Vec::new();
        intersect_bitset(&a, &b, &mut out);
        assert_eq!(out, vec![63, 127, u32::MAX]);
        assert_eq!(count_bitset(&a, &b), 3);
    }

    #[test]
    fn empty_inputs() {
        assert!(intersect_adaptive(&[], &[1, 2, 3]).is_empty());
        assert!(intersect_adaptive(&[1, 2, 3], &[]).is_empty());
        assert_eq!(intersection_size(&[], &[]), 0);
        let mut out = Vec::new();
        intersect_bitset(&[], &[1], &mut out);
        intersect_bitset(&[1], &[], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn disjoint_and_identical() {
        assert!(intersect_adaptive(&[1, 3], &[2, 4]).is_empty());
        assert_eq!(intersect_adaptive(&[5, 6, 7], &[5, 6, 7]), vec![5, 6, 7]);
    }

    #[test]
    fn dispatcher_picks_each_kernel_under_forced_thresholds() {
        let saved = kernel_config();
        // Skewed lengths → gallop under the default ratio.
        let long: Vec<u32> = (0..4096).collect();
        assert_eq!(choose_kernel(&[5, 9], &long), Kernel::Gallop);
        // Dense balanced lists → bitset once the density threshold allows.
        set_kernel_config(KernelConfig {
            bitset_min_per_word: 1,
            ..saved
        });
        let dense: Vec<u32> = (0..256).collect();
        assert_eq!(choose_kernel(&dense, &dense), Kernel::Bitset);
        // Sparse balanced lists → merge.
        let sparse: Vec<u32> = (0..256).map(|i| i * 1000).collect();
        assert_eq!(choose_kernel(&sparse, &sparse), Kernel::Merge);
        set_kernel_config(saved);
        assert_eq!(kernel_config(), saved);
    }

    #[test]
    fn word_tiles_membership_and_streaming() {
        let members = vec![3u32, 64, 65, 120, 500];
        let mut tiles = WordTiles::new();
        assert!(tiles.is_empty());
        tiles.build(&members);
        assert_eq!(tiles.len(), 3, "3, {{64,65,120}}, 500 span three words");
        for &m in &members {
            assert!(tiles.contains(m));
        }
        assert!(!tiles.contains(4));
        assert!(!tiles.contains(501));
        let mut seen = Vec::new();
        tiles.intersect_sorted(&[0, 3, 64, 66, 120, 499, 500, 501], |x| seen.push(x));
        assert_eq!(seen, vec![3, 64, 120, 500]);
        // Rebuilding reuses the allocation and replaces the contents.
        tiles.build(&[7]);
        assert_eq!(tiles.len(), 1);
        assert!(!tiles.contains(3));
    }

    #[test]
    fn calibrate_installs_a_sane_config() {
        let saved = kernel_config();
        let cfg = calibrate();
        assert_eq!(cfg, kernel_config());
        assert!(cfg.gallop_ratio >= 1);
        assert!((1..=65).contains(&cfg.bitset_min_per_word));
        set_kernel_config(saved);
    }

    fn sorted_set() -> impl Strategy<Value = Vec<u32>> {
        prop::collection::btree_set(0u32..500, 0..120).prop_map(|s| s.into_iter().collect())
    }

    proptest! {
        #[test]
        fn all_kernels_match_btreeset(a in sorted_set(), b in sorted_set()) {
            let sa: BTreeSet<u32> = a.iter().copied().collect();
            let sb: BTreeSet<u32> = b.iter().copied().collect();
            let expect: Vec<u32> = sa.intersection(&sb).copied().collect();

            let mut merge = Vec::new();
            intersect_merge(&a, &b, &mut merge);
            prop_assert_eq!(&merge, &expect);

            let (short, long) = if a.len() <= b.len() { (&a, &b) } else { (&b, &a) };
            let mut gallop = Vec::new();
            intersect_gallop(short, long, &mut gallop);
            prop_assert_eq!(&gallop, &expect);

            let mut bitset = Vec::new();
            intersect_bitset(&a, &b, &mut bitset);
            prop_assert_eq!(&bitset, &expect);

            prop_assert_eq!(&intersect_adaptive(&a, &b), &expect);
            prop_assert_eq!(intersection_size(&a, &b), expect.len());

            let mut tiles = WordTiles::new();
            tiles.build(&a);
            let mut streamed = Vec::new();
            tiles.intersect_sorted(&b, |x| streamed.push(x));
            prop_assert_eq!(&streamed, &expect);
        }
    }
}
