//! Safe construction of [`Graph`] values.

use crate::{Edge, Graph, VertexId};

/// Accumulates edges, then produces a canonical simple [`Graph`].
///
/// The builder silently drops self-loops and duplicate edges (in either
/// orientation), matching how the paper's datasets — raw SNAP edge lists —
/// are conventionally cleaned.
///
/// # Examples
///
/// ```
/// use esd_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, dropped
/// b.add_edge(2, 2); // self-loop, dropped
/// let g = b.build();
/// assert_eq!(g.num_edges(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<Edge>,
    dropped_self_loops: usize,
}

impl GraphBuilder {
    /// A builder for a graph on the vertex set `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            edges: Vec::new(),
            dropped_self_loops: 0,
        }
    }

    /// Pre-reserves space for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        Self {
            n,
            edges: Vec::with_capacity(m),
            dropped_self_loops: 0,
        }
    }

    /// Adds an undirected edge; orientation and duplicates don't matter.
    /// Self-loops are counted and dropped. Endpoints may exceed the initial
    /// `n`; the vertex set grows to cover them.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) {
        if u == v {
            self.dropped_self_loops += 1;
            return;
        }
        self.n = self.n.max(u.max(v) as usize + 1);
        self.edges.push(Edge::new(u, v));
    }

    /// Number of self-loops dropped so far.
    pub fn dropped_self_loops(&self) -> usize {
        self.dropped_self_loops
    }

    /// Number of edge insertions recorded (before deduplication).
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Finalises the graph: sorts, deduplicates and freezes into CSR.
    pub fn build(mut self) -> Graph {
        let _span = esd_telemetry::span(esd_telemetry::Stage::GraphCsr);
        self.edges.sort_unstable();
        self.edges.dedup();
        let g = Graph::from_sorted_canonical_edges(self.n, self.edges);
        #[cfg(any(test, feature = "strict-invariants"))]
        crate::audit::assert_clean("Graph (post-build)", &g.validate());
        g
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_vertex_set() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(4, 9);
        let g = b.build();
        assert_eq!(g.num_vertices(), 10);
    }

    #[test]
    fn tracks_dropped_self_loops() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(1, 1);
        b.add_edge(0, 0);
        b.add_edge(0, 1);
        assert_eq!(b.dropped_self_loops(), 2);
        assert_eq!(b.raw_edge_count(), 1);
    }

    #[test]
    fn dedups_both_orientations() {
        let mut b = GraphBuilder::new(5);
        for _ in 0..3 {
            b.add_edge(2, 4);
            b.add_edge(4, 2);
        }
        assert_eq!(b.build().num_edges(), 1);
    }
}
