//! Vertex orderings and DAG orientation.
//!
//! The improved index construction (Algorithm 3) enumerates 4-cliques on the
//! DAG obtained by orienting each edge from the lower-ranked to the
//! higher-ranked endpoint under the paper's *degree ordering* `≺`
//! (increasing degree, ties by id — §II). A *degeneracy ordering* is also
//! provided: it yields the graph's degeneracy `δ` (Table I) and an
//! alternative orientation with out-degrees bounded by `δ`.

use crate::{Graph, VertexId};

/// The paper's total order `≺` on vertices: `u ≺ v` iff
/// `d(u) < d(v)`, or `d(u) == d(v)` and `u < v`.
#[derive(Debug, Clone)]
pub struct DegreeOrder {
    /// `rank[v]` = position of `v` in the order (0 = smallest).
    rank: Vec<u32>,
}

impl DegreeOrder {
    /// Computes the degree ordering of `g`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut verts: Vec<VertexId> = (0..n as VertexId).collect();
        verts.sort_unstable_by_key(|&v| (g.degree(v), v));
        let mut rank = vec![0u32; n];
        for (pos, &v) in verts.iter().enumerate() {
            rank[v as usize] = pos as u32;
        }
        Self { rank }
    }

    /// Rank of `v` (0-based, smaller = earlier in `≺`).
    #[inline]
    pub fn rank(&self, v: VertexId) -> u32 {
        self.rank[v as usize]
    }

    /// True iff `u ≺ v`.
    #[inline]
    pub fn precedes(&self, u: VertexId, v: VertexId) -> bool {
        self.rank[u as usize] < self.rank[v as usize]
    }
}

/// A degeneracy ordering computed by iteratively peeling minimum-degree
/// vertices (the standard bucket-queue core decomposition).
#[derive(Debug, Clone)]
pub struct DegeneracyOrder {
    /// Peeling order: `order[i]` is the `i`-th removed vertex.
    pub order: Vec<VertexId>,
    /// `rank[v]` = position of `v` in `order`.
    pub rank: Vec<u32>,
    /// Core number of each vertex.
    pub core: Vec<u32>,
    /// The graph degeneracy `δ = max core number`.
    pub degeneracy: u32,
}

impl DegeneracyOrder {
    /// Computes the degeneracy ordering of `g` in `O(n + m)`.
    pub fn new(g: &Graph) -> Self {
        let n = g.num_vertices();
        let mut deg: Vec<usize> = (0..n as VertexId).map(|v| g.degree(v)).collect();
        let max_deg = deg.iter().copied().max().unwrap_or(0);

        // Bucket queue: vertices grouped by current degree.
        let mut bucket_start = vec![0usize; max_deg + 2];
        for &d in &deg {
            bucket_start[d + 1] += 1;
        }
        for i in 1..bucket_start.len() {
            bucket_start[i] += bucket_start[i - 1];
        }
        let mut pos = vec![0usize; n];
        let mut vert = vec![0 as VertexId; n];
        {
            let mut cursor = bucket_start.clone();
            for v in 0..n as VertexId {
                let d = deg[v as usize];
                pos[v as usize] = cursor[d];
                vert[cursor[d]] = v;
                cursor[d] += 1;
            }
        }
        // bucket_start[d] = first index in `vert` of a vertex with degree >= d.
        let mut core = vec![0u32; n];
        let mut degeneracy = 0u32;
        let mut current = 0u32;
        for i in 0..n {
            let v = vert[i];
            current = current.max(deg[v as usize] as u32);
            core[v as usize] = current;
            degeneracy = degeneracy.max(current);
            for &w in g.neighbors(v) {
                if pos[w as usize] > i {
                    let dw = deg[w as usize];
                    // Swap w to the front of its bucket, then shrink the bucket.
                    let bucket_front = bucket_start[dw].max(i + 1);
                    let front_vertex = vert[bucket_front];
                    let pw = pos[w as usize];
                    vert.swap(bucket_front, pw);
                    pos[w as usize] = bucket_front;
                    pos[front_vertex as usize] = pw;
                    bucket_start[dw] = bucket_front + 1;
                    deg[w as usize] -= 1;
                }
            }
        }
        let mut rank = vec![0u32; n];
        for (i, &v) in vert.iter().enumerate() {
            rank[v as usize] = i as u32;
        }
        Self {
            order: vert,
            rank,
            core,
            degeneracy,
        }
    }
}

/// A DAG orientation of an undirected graph: each edge points from the
/// lower-ranked to the higher-ranked endpoint of a total vertex order.
///
/// Out-neighbour lists are sorted by vertex id, so common out-neighbourhoods
/// can be computed with the [`crate::intersect`] kernels — the inner kernel
/// of the 4-clique enumerator.
#[derive(Debug, Clone)]
pub struct OrientedGraph {
    offsets: Vec<usize>,
    targets: Vec<VertexId>,
}

impl OrientedGraph {
    /// Orients `g` by the paper's degree ordering `≺` (§II).
    pub fn by_degree(g: &Graph) -> Self {
        let _span = esd_telemetry::span(esd_telemetry::Stage::GraphOrient);
        let order = DegreeOrder::new(g);
        Self::by_rank(g, |v| order.rank(v))
    }

    /// Orients `g` by a degeneracy ordering; out-degrees are then bounded by
    /// the degeneracy `δ`.
    pub fn by_degeneracy(g: &Graph) -> Self {
        let _span = esd_telemetry::span(esd_telemetry::Stage::GraphOrient);
        let order = DegeneracyOrder::new(g);
        let rank = order.rank;
        Self::by_rank(g, move |v| rank[v as usize])
    }

    /// Orients each edge from lower to higher `rank`.
    pub fn by_rank(g: &Graph, rank: impl Fn(VertexId) -> u32) -> Self {
        let n = g.num_vertices();
        let mut out_deg = vec![0usize; n];
        for e in g.edges() {
            let src = if rank(e.u) < rank(e.v) { e.u } else { e.v };
            out_deg[src as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &out_deg {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets.clone();
        let mut targets = vec![0 as VertexId; g.num_edges()];
        for e in g.edges() {
            let (src, dst) = if rank(e.u) < rank(e.v) {
                (e.u, e.v)
            } else {
                (e.v, e.u)
            };
            targets[cursor[src as usize]] = dst;
            cursor[src as usize] += 1;
        }
        for u in 0..n {
            targets[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        Self { offsets, targets }
    }

    /// Number of vertices.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of directed edges (equals the undirected edge count).
    pub fn num_edges(&self) -> usize {
        self.targets.len()
    }

    /// Sorted out-neighbour list `N⁺(u)`.
    #[inline]
    pub fn out_neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.targets[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// Out-degree `d⁺(u)`.
    #[inline]
    pub fn out_degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Maximum out-degree (bounded by `2α - 1` for the degree ordering and by
    /// `δ` for the degeneracy ordering).
    pub fn max_out_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.out_degree(u))
            .max()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn degree_order_matches_paper_rule() {
        // Degrees: 0 -> 1, 1 -> 2, 2 -> 3, 3 -> 2.
        let g = Graph::from_edges(4, &[(0, 2), (1, 2), (1, 3), (2, 3)]);
        let ord = DegreeOrder::new(&g);
        assert!(ord.precedes(0, 1));
        assert!(ord.precedes(1, 3), "equal degree broken by id");
        assert!(ord.precedes(3, 2));
        assert!(!ord.precedes(2, 0));
    }

    #[test]
    fn orientation_is_acyclic_and_complete() {
        let g = generators::erdos_renyi(60, 0.12, 7);
        let dag = OrientedGraph::by_degree(&g);
        assert_eq!(dag.num_edges(), g.num_edges());
        let ord = DegreeOrder::new(&g);
        let mut seen = 0;
        for u in g.vertices() {
            for &v in dag.out_neighbors(u) {
                assert!(ord.precedes(u, v), "edge must follow the order");
                assert!(g.has_edge(u, v));
                seen += 1;
            }
        }
        assert_eq!(seen, g.num_edges());
    }

    #[test]
    fn degeneracy_of_clique_and_tree() {
        let k5 = generators::complete(5);
        assert_eq!(DegeneracyOrder::new(&k5).degeneracy, 4);
        let path = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        assert_eq!(DegeneracyOrder::new(&path).degeneracy, 1);
        let empty = Graph::from_edges(3, &[]);
        assert_eq!(DegeneracyOrder::new(&empty).degeneracy, 0);
    }

    #[test]
    fn degeneracy_ordering_invariant() {
        // Every vertex has at most `core(v)` neighbours later in the order,
        // and out-degrees under the orientation are <= degeneracy.
        let g = generators::barabasi_albert(300, 4, 11);
        let ord = DegeneracyOrder::new(&g);
        for v in g.vertices() {
            let later = g
                .neighbors(v)
                .iter()
                .filter(|&&w| ord.rank[w as usize] > ord.rank[v as usize])
                .count();
            assert!(later as u32 <= ord.core[v as usize]);
        }
        let dag = OrientedGraph::by_degeneracy(&g);
        assert!(dag.max_out_degree() as u32 <= ord.degeneracy);
    }

    #[test]
    fn core_numbers_on_known_graph() {
        // Triangle + pendant: triangle vertices core 2, pendant core 1.
        let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let ord = DegeneracyOrder::new(&g);
        assert_eq!(ord.core, vec![2, 2, 2, 1]);
        assert_eq!(ord.degeneracy, 2);
    }
}
