//! Breadth-first traversal and connected components.

use crate::{Graph, VertexId};

/// Connected components of the whole graph.
///
/// Returns `(labels, sizes)`: `labels[v]` is the component id of `v` (dense,
/// in discovery order) and `sizes[c]` the number of vertices in component `c`.
pub fn connected_components(g: &Graph) -> (Vec<u32>, Vec<u32>) {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut sizes = Vec::new();
    let mut queue = std::collections::VecDeque::new();
    for s in 0..n as VertexId {
        if labels[s as usize] != u32::MAX {
            continue;
        }
        let c = sizes.len() as u32;
        sizes.push(0);
        labels[s as usize] = c;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            sizes[c as usize] += 1;
            for &w in g.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = c;
                    queue.push_back(w);
                }
            }
        }
    }
    (labels, sizes)
}

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &Graph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[source as usize] = 0;
    let mut queue = std::collections::VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == u32::MAX {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Connected components of the subgraph induced by `members` — the kernel of
/// the paper's `BFS(G_{N(uv)}, τ)` procedure (Algorithm 1, lines 16–21).
///
/// `members` must be sorted. Returns the sorted multiset of component sizes.
/// Adjacency inside the induced subgraph is tested by intersecting each
/// member's neighbour list with `members`, so the cost is
/// `O(Σ_{w ∈ members} min(d(w), |members|))` — the bound used by Theorem 2.
pub fn induced_component_sizes(g: &Graph, members: &[VertexId]) -> Vec<u32> {
    debug_assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "members must be sorted+unique"
    );
    let k = members.len();
    if k == 0 {
        return Vec::new();
    }
    // Local ids via binary search in `members`.
    let mut visited = vec![false; k];
    let mut sizes = Vec::new();
    let mut queue = Vec::new();
    let mut buf = Vec::new();
    for start in 0..k {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push(start);
        let mut size = 0u32;
        while let Some(local) = queue.pop() {
            size += 1;
            let w = members[local];
            buf.clear();
            crate::intersect::intersect_into(g.neighbors(w), members, &mut buf);
            for &x in &buf {
                let lx = members
                    .binary_search(&x)
                    .expect("member of the induced set");
                if !visited[lx] {
                    visited[lx] = true;
                    queue.push(lx);
                }
            }
        }
        sizes.push(size);
    }
    sizes.sort_unstable();
    sizes
}

/// Connected components of the subgraph induced by `members`, as sorted
/// member lists (used by the case studies to *print* each social context;
/// [`induced_component_sizes`] is the cheaper size-only variant).
///
/// `members` must be sorted. Components are returned largest-first, ties by
/// smallest member.
pub fn induced_components(g: &Graph, members: &[VertexId]) -> Vec<Vec<VertexId>> {
    debug_assert!(
        members.windows(2).all(|w| w[0] < w[1]),
        "members must be sorted+unique"
    );
    let k = members.len();
    let mut visited = vec![false; k];
    let mut out: Vec<Vec<VertexId>> = Vec::new();
    let mut queue = Vec::new();
    let mut buf = Vec::new();
    for start in 0..k {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        queue.push(start);
        let mut comp = Vec::new();
        while let Some(local) = queue.pop() {
            comp.push(members[local]);
            buf.clear();
            crate::intersect::intersect_into(g.neighbors(members[local]), members, &mut buf);
            for &x in &buf {
                let lx = members
                    .binary_search(&x)
                    .expect("member of the induced set");
                if !visited[lx] {
                    visited[lx] = true;
                    queue.push(lx);
                }
            }
        }
        comp.sort_unstable();
        out.push(comp);
    }
    out.sort_by(|a, b| b.len().cmp(&a.len()).then_with(|| a[0].cmp(&b[0])));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn components_of_two_triangles() {
        let g = Graph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let (labels, sizes) = connected_components(&g);
        assert_eq!(sizes.len(), 3, "two triangles + isolated vertex 6");
        assert_eq!(labels[0], labels[2]);
        assert_ne!(labels[0], labels[3]);
        let mut sorted = sizes.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![1, 3, 3]);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = Graph::from_edges(5, &[(0, 1), (1, 2), (2, 3)]);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, u32::MAX]);
    }

    #[test]
    fn induced_sizes_on_ego_network() {
        // Fig 1(a) style: members {d, e, h, i} with edges (d,e), (h,i) only.
        let g = Graph::from_edges(6, &[(0, 1), (2, 3), (0, 4), (1, 5)]);
        let sizes = induced_component_sizes(&g, &[0, 1, 2, 3]);
        assert_eq!(sizes, vec![2, 2]);
    }

    #[test]
    fn induced_sizes_empty_and_isolated() {
        let g = generators::complete(4);
        assert!(induced_component_sizes(&g, &[]).is_empty());
        // Any single member is an isolated size-1 component.
        assert_eq!(induced_component_sizes(&g, &[2]), vec![1]);
    }

    #[test]
    fn induced_sizes_of_full_clique() {
        let g = generators::complete(6);
        let members: Vec<u32> = (0..6).collect();
        assert_eq!(induced_component_sizes(&g, &members), vec![6]);
    }

    #[test]
    fn induced_components_lists_match_sizes() {
        let g = generators::erdos_renyi(35, 0.1, 8);
        let members: Vec<u32> = (0..35).filter(|v| v % 2 == 0).collect();
        let comps = induced_components(&g, &members);
        let mut sizes: Vec<u32> = comps.iter().map(|c| c.len() as u32).collect();
        sizes.sort_unstable();
        assert_eq!(sizes, induced_component_sizes(&g, &members));
        // Largest-first ordering, disjoint cover of members.
        assert!(comps.windows(2).all(|w| w[0].len() >= w[1].len()));
        let mut all: Vec<u32> = comps.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, members);
        // Members of one component are mutually reachable inside the set.
        for comp in &comps {
            for &v in comp {
                assert!(members.binary_search(&v).is_ok());
            }
        }
    }

    #[test]
    fn induced_matches_global_on_full_vertex_set() {
        let g = generators::erdos_renyi(40, 0.05, 3);
        let members: Vec<u32> = (0..40).collect();
        let mut induced = induced_component_sizes(&g, &members);
        let (_, mut global) = connected_components(&g);
        induced.sort_unstable();
        global.sort_unstable();
        assert_eq!(induced, global);
    }
}
