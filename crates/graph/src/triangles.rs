//! Oriented triangle counting and listing.
//!
//! Triangles are the `k = 3` base case of the clique machinery and also the
//! cheapest sanity check of the orientation: each triangle is discovered
//! exactly once on a DAG orientation.

use crate::{Graph, OrientedGraph, VertexId};

/// Counts triangles using the degree-ordered DAG: `Σ_(u→v) |N⁺(u) ∩ N⁺(v)|`.
pub fn count_triangles(g: &Graph) -> u64 {
    let dag = OrientedGraph::by_degree(g);
    count_triangles_oriented(&dag)
}

/// Counts triangles on an already-oriented DAG.
pub fn count_triangles_oriented(dag: &OrientedGraph) -> u64 {
    let mut count = 0u64;
    for u in 0..dag.num_vertices() as VertexId {
        let nu = dag.out_neighbors(u);
        for &v in nu {
            count += crate::intersect::intersection_size(nu, dag.out_neighbors(v)) as u64;
        }
    }
    count
}

/// Lists each triangle `{a, b, c}` exactly once (vertices in arbitrary order
/// within the callback).
pub fn list_triangles(g: &Graph, mut f: impl FnMut(VertexId, VertexId, VertexId)) {
    let dag = OrientedGraph::by_degree(g);
    let mut buf = Vec::new();
    for u in 0..dag.num_vertices() as VertexId {
        let nu = dag.out_neighbors(u);
        for &v in nu {
            buf.clear();
            crate::intersect::intersect_into(nu, dag.out_neighbors(v), &mut buf);
            for &w in &buf {
                f(u, v, w);
            }
        }
    }
}

/// Per-edge triangle counts (the *support* of each edge); index = edge id.
/// This equals `|N(u) ∩ N(v)|` for each edge `(u, v)` — the quantity the
/// common-neighbour upper bound divides by τ.
pub fn edge_support(g: &Graph) -> Vec<u32> {
    let mut support = vec![0u32; g.num_edges()];
    list_triangles(g, |a, b, c| {
        for (x, y) in [(a, b), (a, c), (b, c)] {
            let id = g.edge_id(x, y).expect("triangle edge exists");
            support[id as usize] += 1;
        }
    });
    support
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;

    fn brute_force_triangles(g: &Graph) -> u64 {
        let mut count = 0;
        for e in g.edges() {
            count += g.common_neighbor_count(e.u, e.v) as u64;
        }
        count / 3
    }

    #[test]
    fn k4_has_four_triangles() {
        let g = generators::complete(4);
        assert_eq!(count_triangles(&g), 4);
    }

    #[test]
    fn triangle_free_graph() {
        let g = Graph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        assert_eq!(count_triangles(&g), 0);
        let mut any = false;
        list_triangles(&g, |_, _, _| any = true);
        assert!(!any);
    }

    #[test]
    fn listing_matches_counting() {
        let g = generators::erdos_renyi(80, 0.1, 42);
        let mut listed = 0u64;
        list_triangles(&g, |a, b, c| {
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
            listed += 1;
        });
        assert_eq!(listed, count_triangles(&g));
        assert_eq!(listed, brute_force_triangles(&g));
    }

    #[test]
    fn edge_support_equals_common_neighbors() {
        let g = generators::erdos_renyi(50, 0.15, 9);
        let support = edge_support(&g);
        for (id, e) in g.edges().iter().enumerate() {
            assert_eq!(support[id] as usize, g.common_neighbor_count(e.u, e.v));
        }
    }

    proptest! {
        #[test]
        fn count_matches_brute_force(seed in 0u64..50, n in 5usize..40, p in 0.0f64..0.4) {
            let g = generators::erdos_renyi(n, p, seed);
            prop_assert_eq!(count_triangles(&g), brute_force_triangles(&g));
        }
    }
}
