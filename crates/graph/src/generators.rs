//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on five SNAP graphs that cannot be redistributed here;
//! `esd-datasets` builds laptop-scale surrogates from these models (see
//! DESIGN.md §7). All generators are deterministic in their `seed`.
//!
//! Models provided:
//! * [`erdos_renyi`] — G(n, p) uniform random graphs.
//! * [`barabasi_albert`] — preferential attachment; heavy-tailed degrees
//!   with pronounced hubs (Youtube-like).
//! * [`rmat`] — recursive-matrix (Kronecker) graphs; skewed, community-free
//!   social-network texture (Pokec/LiveJournal-like).
//! * [`clique_overlap`] — union of many small random cliques ("papers as
//!   author cliques"); collaboration-network texture (DBLP-like).
//! * [`planted_partition`] — dense communities plus sparse inter-community
//!   bridges; used by the DBLP case study.
//! * [`star_forest_mix`] — extreme degree skew with almost no clustering
//!   (WikiTalk-like).
//! * [`complete`], [`star`], [`cycle`], [`path`] — fixed topologies for tests.

use crate::{Graph, GraphBuilder, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;

/// G(n, p): each pair independently an edge with probability `p`.
///
/// Uses geometric skipping, so the cost is `O(n + m)` rather than `O(n²)`
/// for small `p`.
pub fn erdos_renyi(n: usize, p: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if n < 2 || p == 0.0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xE5D0_1111);
    if p >= 1.0 {
        for u in 0..n as VertexId {
            for v in u + 1..n as VertexId {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Skip-sampling over the linearised strict upper triangle.
    let total = n as u64 * (n as u64 - 1) / 2;
    let log_q = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
        let skip = (r.ln() / log_q).floor() as u64;
        idx = idx.saturating_add(skip);
        if idx >= total {
            break;
        }
        // Invert the triangular index (row-major upper triangle).
        let (u, v) = triangle_unrank(idx, n as u64);
        b.add_edge(u as VertexId, v as VertexId);
        idx += 1;
    }
    b.build()
}

/// Maps a linear index in `0..n(n-1)/2` to the pair `(u, v)`, `u < v`,
/// enumerating the strict upper triangle row by row.
fn triangle_unrank(idx: u64, n: u64) -> (u64, u64) {
    // Row u starts at S(u) = u(n-1) - u(u-1)/2 and has n-1-u cells.
    let row_start = |u: u64| u * (n - 1) - u.saturating_sub(1) * u / 2;
    let (mut lo, mut hi) = (0u64, n - 1); // u in [lo, hi)
    while hi - lo > 1 {
        let mid = (lo + hi) / 2;
        if row_start(mid) <= idx {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    let u = lo;
    let v = u + 1 + (idx - row_start(u));
    debug_assert!(v < n);
    (u, v)
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "attachment count must be positive");
    let mut b = GraphBuilder::with_capacity(n, n.saturating_mul(m_attach));
    if n == 0 {
        return b.build();
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBA_BABA);
    // Repeated-endpoints list: sampling a uniform element is sampling
    // proportional to degree.
    let seed_core = (m_attach + 1).min(n);
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    for u in 0..seed_core as VertexId {
        for v in u + 1..seed_core as VertexId {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    for v in seed_core..n {
        let mut targets = std::collections::BTreeSet::new();
        let mut guard = 0;
        while targets.len() < m_attach.min(v) && guard < 50 * m_attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            targets.insert(t);
            guard += 1;
        }
        for &t in &targets {
            b.add_edge(v as VertexId, t);
            endpoints.push(v as VertexId);
            endpoints.push(t);
        }
    }
    b.build()
}

/// R-MAT / Kronecker generator with the classic (a, b, c, d) quadrant
/// probabilities. `scale` is log2 of the vertex count.
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64, f64), seed: u64) -> Graph {
    let (a, bq, c, _d) = probs;
    let n = 1usize << scale;
    let m_target = n * edge_factor;
    let mut rng = StdRng::seed_from_u64(seed ^ 0x4A_7A17);
    let mut b = GraphBuilder::with_capacity(n, m_target);
    for _ in 0..m_target {
        let (mut u, mut v) = (0u64, 0u64);
        for _ in 0..scale {
            u <<= 1;
            v <<= 1;
            let r: f64 = rng.gen();
            if r < a {
                // top-left
            } else if r < a + bq {
                v |= 1;
            } else if r < a + bq + c {
                u |= 1;
            } else {
                u |= 1;
                v |= 1;
            }
        }
        if u != v {
            b.add_edge(u as VertexId, v as VertexId);
        }
    }
    b.build()
}

/// Default R-MAT probabilities used by Graph500 (skewed social texture).
pub const RMAT_SOCIAL: (f64, f64, f64, f64) = (0.57, 0.19, 0.19, 0.05);

/// Collaboration-style graph: `num_groups` random "papers", each a clique on
/// 2..=`max_group` authors sampled with a Zipf-like bias so prolific authors
/// recur (giving the overlapping-clique texture of DBLP).
pub fn clique_overlap(n: usize, num_groups: usize, max_group: usize, seed: u64) -> Graph {
    assert!(max_group >= 2, "groups below size 2 add no edges");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x00DB_01DB);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let mut members = Vec::new();
    for _ in 0..num_groups {
        let size = rng.gen_range(2..=max_group.min(n));
        members.clear();
        let mut set = std::collections::BTreeSet::new();
        while set.len() < size {
            // Mostly uniform authors with a minority of prolific ones
            // (quadratic bias toward low ids). A stronger bias would turn
            // the low-id region into a near-clique and blow the index-size
            // ratio far past the 4–8x the paper reports.
            let r: f64 = rng.gen();
            let v = if rng.gen::<f64>() < 0.25 {
                ((r * r) * n as f64) as usize % n
            } else {
                (r * n as f64) as usize % n
            };
            set.insert(v as VertexId);
        }
        members.extend(set.iter().copied());
        for i in 0..members.len() {
            for j in i + 1..members.len() {
                b.add_edge(members[i], members[j]);
            }
        }
    }
    b.build()
}

/// Planted-partition graph: `communities` equally-sized groups, intra-group
/// edge probability `p_in`, inter-group probability `p_out`.
pub fn planted_partition(n: usize, communities: usize, p_in: f64, p_out: f64, seed: u64) -> Graph {
    assert!(communities >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_FFEE);
    let mut b = GraphBuilder::new(n);
    let group = |v: usize| v * communities / n.max(1);
    for u in 0..n {
        for v in u + 1..n {
            let p = if group(u) == group(v) { p_in } else { p_out };
            if rng.gen::<f64>() < p {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Extreme-skew, low-clustering mix: a few large stars whose leaves are
/// wired by a sparse random matching (WikiTalk-like texture).
pub fn star_forest_mix(n: usize, hubs: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed ^ 0x51A2);
    let mut b = GraphBuilder::new(n);
    if n < 2 {
        return b.build();
    }
    let hubs = hubs.clamp(1, n);
    for v in hubs..n {
        // Attach each non-hub to a random hub; hub 0 is by far the largest.
        let h = if rng.gen::<f64>() < 0.5 {
            0
        } else {
            rng.gen_range(0..hubs)
        };
        b.add_edge(v as VertexId, h as VertexId);
    }
    for _ in 0..extra_edges {
        let u = rng.gen_range(0..n) as VertexId;
        let v = rng.gen_range(0..n) as VertexId;
        if u != v {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Watts–Strogatz small world: a ring lattice where each vertex connects to
/// its `k_half` neighbours on each side, with every edge rewired to a random
/// endpoint with probability `beta`.
pub fn watts_strogatz(n: usize, k_half: usize, beta: f64, seed: u64) -> Graph {
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed ^ 0x5377);
    let mut b = GraphBuilder::with_capacity(n, n * k_half);
    if n < 3 {
        return b.build();
    }
    for u in 0..n {
        for d in 1..=k_half.min((n - 1) / 2) {
            let v = (u + d) % n;
            if rng.gen::<f64>() < beta {
                // Rewire to a uniform non-self endpoint.
                let mut w = rng.gen_range(0..n);
                let mut guard = 0;
                while (w == u) && guard < 16 {
                    w = rng.gen_range(0..n);
                    guard += 1;
                }
                if w != u {
                    b.add_edge(u as VertexId, w as VertexId);
                }
            } else {
                b.add_edge(u as VertexId, v as VertexId);
            }
        }
    }
    b.build()
}

/// Configuration-model graph with a truncated power-law degree sequence
/// `P(d) ∝ d^(-gamma)` over `d ∈ [1, d_cap]`; half-edges are matched
/// uniformly and collisions/self-loops dropped.
pub fn powerlaw_configuration(n: usize, gamma: f64, d_cap: usize, seed: u64) -> Graph {
    assert!(gamma > 1.0, "power-law exponent must exceed 1");
    assert!(d_cap >= 1);
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9_D15C);
    // Inverse-CDF sampling over the truncated support.
    let weights: Vec<f64> = (1..=d_cap).map(|d| (d as f64).powf(-gamma)).collect();
    let total: f64 = weights.iter().sum();
    let mut stubs: Vec<VertexId> = Vec::new();
    for v in 0..n {
        let mut r = rng.gen::<f64>() * total;
        let mut degree = d_cap;
        for (i, w) in weights.iter().enumerate() {
            if r < *w {
                degree = i + 1;
                break;
            }
            r -= w;
        }
        for _ in 0..degree {
            stubs.push(v as VertexId);
        }
    }
    stubs.shuffle(&mut rng);
    let mut b = GraphBuilder::with_capacity(n, stubs.len() / 2);
    for pair in stubs.chunks_exact(2) {
        if pair[0] != pair[1] {
            b.add_edge(pair[0], pair[1]);
        }
    }
    b.build()
}

/// The complete graph `K_n`.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in u + 1..n as VertexId {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// A star with `n - 1` leaves around centre 0.
pub fn star(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// The cycle `C_n`.
pub fn cycle(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    if n >= 3 {
        for v in 0..n as VertexId {
            b.add_edge(v, ((v as usize + 1) % n) as VertexId);
        }
    }
    b.build()
}

/// The path `P_n`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_determinism_and_bounds() {
        let a = erdos_renyi(100, 0.05, 7);
        let b = erdos_renyi(100, 0.05, 7);
        assert_eq!(a.edges(), b.edges(), "same seed, same graph");
        let c = erdos_renyi(100, 0.05, 8);
        assert_ne!(a.edges(), c.edges(), "different seed, different graph");
        // Expected m = p * C(100,2) = 247.5; allow generous slack.
        let m = a.num_edges();
        assert!(m > 120 && m < 400, "m = {m} out of plausible range");
    }

    #[test]
    fn er_extremes() {
        assert_eq!(erdos_renyi(10, 0.0, 1).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, 1).num_edges(), 45);
        assert_eq!(erdos_renyi(0, 0.5, 1).num_vertices(), 0);
        assert_eq!(erdos_renyi(1, 0.5, 1).num_edges(), 0);
    }

    #[test]
    fn triangle_unrank_is_bijective() {
        let n = 23u64;
        let mut seen = std::collections::BTreeSet::new();
        for idx in 0..n * (n - 1) / 2 {
            let (u, v) = triangle_unrank(idx, n);
            assert!(u < v && v < n, "bad pair ({u},{v}) at {idx}");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len() as u64, n * (n - 1) / 2);
    }

    #[test]
    fn ba_is_connected_with_hubs() {
        let g = barabasi_albert(500, 3, 13);
        assert_eq!(g.num_vertices(), 500);
        let (_, sizes) = crate::traversal::connected_components(&g);
        assert_eq!(sizes.len(), 1, "BA graphs are connected");
        assert!(g.max_degree() > 20, "preferential attachment grows hubs");
    }

    #[test]
    fn rmat_within_target() {
        let g = rmat(10, 8, RMAT_SOCIAL, 5);
        assert!(g.num_vertices() <= 1024);
        // Self-loops/duplicates shrink m below the target, never above.
        assert!(g.num_edges() <= 1024 * 8);
        assert!(g.num_edges() > 1024 * 4, "too many collisions");
    }

    #[test]
    fn clique_overlap_has_triangles() {
        let g = clique_overlap(200, 120, 6, 3);
        assert!(crate::triangles::count_triangles(&g) > 50);
    }

    #[test]
    fn planted_partition_is_assortative() {
        let n = 60;
        let g = planted_partition(n, 3, 0.5, 0.01, 9);
        let group = |v: u32| v as usize * 3 / n;
        let (mut intra, mut inter) = (0, 0);
        for e in g.edges() {
            if group(e.u) == group(e.v) {
                intra += 1;
            } else {
                inter += 1;
            }
        }
        assert!(intra > 10 * inter.max(1) / 2, "intra={intra} inter={inter}");
    }

    #[test]
    fn fixed_topologies() {
        assert_eq!(complete(5).num_edges(), 10);
        assert_eq!(star(6).max_degree(), 5);
        assert_eq!(cycle(7).num_edges(), 7);
        assert_eq!(path(4).num_edges(), 3);
        assert_eq!(cycle(2).num_edges(), 0, "no degenerate cycles");
    }

    #[test]
    fn star_forest_mix_is_skewed() {
        let g = star_forest_mix(2000, 5, 200, 21);
        assert!(g.max_degree() > 300, "hub 0 dominates");
        let tri = crate::triangles::count_triangles(&g);
        assert!(tri < 3000, "low clustering expected, got {tri} triangles");
    }

    #[test]
    fn watts_strogatz_zero_beta_is_lattice() {
        let g = watts_strogatz(20, 2, 0.0, 1);
        assert_eq!(g.num_edges(), 40, "ring lattice has n*k_half edges");
        for v in g.vertices() {
            assert_eq!(g.degree(v), 4);
        }
        // Lattices with k_half >= 2 are triangle-rich.
        assert!(crate::triangles::count_triangles(&g) > 0);
    }

    #[test]
    fn watts_strogatz_rewiring_breaks_regularity() {
        let g = watts_strogatz(200, 3, 0.3, 2);
        let degrees: std::collections::BTreeSet<usize> =
            g.vertices().map(|v| g.degree(v)).collect();
        assert!(degrees.len() > 1, "rewiring must create degree variance");
        assert!(g.num_edges() <= 600);
        let tiny = watts_strogatz(2, 1, 0.5, 0);
        assert_eq!(tiny.num_edges(), 0);
    }

    #[test]
    fn powerlaw_configuration_has_heavy_tail() {
        let g = powerlaw_configuration(3000, 2.2, 100, 4);
        let dmax = g.max_degree();
        let avg = 2.0 * g.num_edges() as f64 / g.num_vertices() as f64;
        assert!(dmax as f64 > 8.0 * avg, "d_max {dmax} vs avg {avg}");
        // Deterministic.
        assert_eq!(
            powerlaw_configuration(300, 2.2, 50, 9).edges(),
            powerlaw_configuration(300, 2.2, 50, 9).edges()
        );
    }

    #[test]
    #[should_panic(expected = "exponent")]
    fn powerlaw_rejects_bad_gamma() {
        let _ = powerlaw_configuration(10, 0.5, 10, 0);
    }
}
