//! Graph substrate for top-k edge structural diversity search.
//!
//! This crate provides everything the ESD algorithms (crate `esd-core`) need
//! from a graph engine, built from scratch:
//!
//! * [`Graph`] — an immutable CSR graph with sorted adjacency lists and
//!   canonical edge ids, plus [`GraphBuilder`] for safe construction.
//! * [`DynamicGraph`] — a mutable adjacency-vector graph for the index
//!   maintenance algorithms (edge insertion / deletion).
//! * [`ordering`] — the paper's degree ordering `≺`, degeneracy ordering,
//!   and DAG orientation.
//! * [`intersect`] — sorted-set intersection kernels (merge / galloping /
//!   blocked-bitset SWAR), adaptively dispatched with calibrated crossovers.
//! * [`traversal`] — BFS and connected components.
//! * [`triangles`] / [`cliques`] — oriented triangle listing and
//!   Chiba–Nishizeki-style k-clique enumeration (the 4-clique enumerator at
//!   the heart of Algorithm 3).
//! * [`betweenness`] — Brandes edge betweenness (the `BT` case-study baseline).
//! * [`generators`] — deterministic synthetic graph models (ER, BA, RMAT,
//!   clique-overlap collaboration graphs, planted partitions, word networks).
//! * [`io`] — SNAP-style edge-list reading and writing.
//! * [`subgraph`] — random edge / vertex sampling for scalability studies.
//! * [`metrics`] — `n`, `m`, `d_max`, degeneracy and arboricity bounds
//!   (Table I statistics).

#![warn(missing_docs)]

pub mod audit;
pub mod betweenness;
pub mod builder;
pub mod cliques;
pub mod dot;
pub mod dynamic;
pub mod generators;
pub mod graph;
pub mod intersect;
pub mod io;
pub mod metrics;
pub mod ordering;
pub mod subgraph;
pub mod traversal;
pub mod triangles;
pub mod truss;

pub use builder::GraphBuilder;
pub use dynamic::DynamicGraph;
pub use graph::{EdgeId, Graph, VertexId};
pub use ordering::{DegreeOrder, OrientedGraph};

/// An undirected edge as an (unordered) vertex pair, stored canonically with
/// the smaller endpoint first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Edge {
    /// Smaller endpoint.
    pub u: VertexId,
    /// Larger endpoint.
    pub v: VertexId,
}

impl Edge {
    /// Canonicalises `(a, b)` so that `u <= v`.
    ///
    /// # Panics
    /// Panics if `a == b` (self-loops are not valid edges).
    pub fn new(a: VertexId, b: VertexId) -> Self {
        assert_ne!(a, b, "self-loops are not valid edges");
        if a < b {
            Self { u: a, v: b }
        } else {
            Self { u: b, v: a }
        }
    }

    /// The endpoint that is not `x`.
    ///
    /// # Panics
    /// Panics if `x` is not an endpoint of this edge.
    pub fn other(&self, x: VertexId) -> VertexId {
        if x == self.u {
            self.v
        } else {
            assert_eq!(x, self.v, "vertex {x} is not an endpoint of {self:?}");
            self.u
        }
    }

    /// Packs the edge into a single `u64` key (useful for hash maps).
    pub fn key(&self) -> u64 {
        (u64::from(self.u) << 32) | u64::from(self.v)
    }

    /// Inverse of [`Self::key`].
    pub fn from_key(key: u64) -> Self {
        Self {
            u: (key >> 32) as VertexId,
            v: key as u32,
        }
    }
}

impl std::fmt::Display for Edge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "({}, {})", self.u, self.v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edge_is_canonical() {
        assert_eq!(Edge::new(5, 2), Edge::new(2, 5));
        assert_eq!(Edge::new(5, 2).u, 2);
        assert_eq!(Edge::new(5, 2).v, 5);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn edge_rejects_self_loop() {
        let _ = Edge::new(3, 3);
    }

    #[test]
    fn edge_other_endpoint() {
        let e = Edge::new(1, 9);
        assert_eq!(e.other(1), 9);
        assert_eq!(e.other(9), 1);
    }

    #[test]
    fn edge_key_roundtrip() {
        let e = Edge::new(123_456, 789);
        assert_eq!(Edge::from_key(e.key()), e);
    }
}
