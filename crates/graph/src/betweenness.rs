//! Brandes' algorithm for edge betweenness centrality.
//!
//! The paper's case studies (Exp-7/8) compare the top-k structural diversity
//! edges against a betweenness baseline `BT`. Exact edge betweenness is
//! `O(nm)`; a pivot-sampled estimator is provided for larger graphs.

use crate::{Graph, VertexId};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::collections::VecDeque;

/// Exact edge betweenness: for each edge, the sum over vertex pairs `(s, t)`
/// of the fraction of shortest `s`–`t` paths passing through it. Index =
/// edge id. Each unordered pair is counted once.
pub fn edge_betweenness(g: &Graph) -> Vec<f64> {
    let sources: Vec<VertexId> = g.vertices().collect();
    let mut scores = accumulate(g, &sources);
    // Brandes accumulates each unordered pair twice (once per endpoint as
    // source); halve for the conventional normalisation.
    for s in &mut scores {
        *s /= 2.0;
    }
    scores
}

/// Sampled edge betweenness using `pivots` random BFS sources, scaled by
/// `n / pivots` so magnitudes are comparable with the exact values.
pub fn edge_betweenness_sampled(g: &Graph, pivots: usize, seed: u64) -> Vec<f64> {
    let n = g.num_vertices();
    if n == 0 || pivots == 0 {
        return vec![0.0; g.num_edges()];
    }
    let mut rng = StdRng::seed_from_u64(seed ^ 0xB27);
    let mut sources: Vec<VertexId> = g.vertices().collect();
    sources.shuffle(&mut rng);
    sources.truncate(pivots.min(n));
    let scale = n as f64 / sources.len() as f64 / 2.0;
    let mut scores = accumulate(g, &sources);
    for s in &mut scores {
        *s *= scale;
    }
    scores
}

/// One Brandes dependency accumulation pass per source.
fn accumulate(g: &Graph, sources: &[VertexId]) -> Vec<f64> {
    let n = g.num_vertices();
    let mut scores = vec![0.0f64; g.num_edges()];
    let mut dist = vec![i32::MAX; n];
    let mut sigma = vec![0.0f64; n];
    let mut delta = vec![0.0f64; n];
    let mut order: Vec<VertexId> = Vec::with_capacity(n);
    let mut queue = VecDeque::new();

    for &s in sources {
        dist.fill(i32::MAX);
        sigma.fill(0.0);
        delta.fill(0.0);
        order.clear();
        dist[s as usize] = 0;
        sigma[s as usize] = 1.0;
        queue.push_back(s);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            let dv = dist[v as usize];
            for &w in g.neighbors(v) {
                if dist[w as usize] == i32::MAX {
                    dist[w as usize] = dv + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dv + 1 {
                    sigma[w as usize] += sigma[v as usize];
                }
            }
        }
        // Reverse BFS order: accumulate dependencies onto predecessor edges.
        for &w in order.iter().rev() {
            let dw = dist[w as usize];
            for &v in g.neighbors(w) {
                if dist[v as usize] + 1 == dw {
                    let c = sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
                    let id = g.edge_id(v, w).expect("edge exists");
                    scores[id as usize] += c;
                    delta[v as usize] += c;
                }
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn path_betweenness() {
        // Path 0-1-2-3: middle edge carries pairs {0,1,2}x{3} etc.
        // Edge (1,2) lies on s-t shortest paths for pairs (0,2),(0,3),(1,2),(1,3) = 4.
        let g = generators::path(4);
        let bt = edge_betweenness(&g);
        let mid = g.edge_id(1, 2).unwrap() as usize;
        assert!((bt[mid] - 4.0).abs() < 1e-9, "got {}", bt[mid]);
        let end = g.edge_id(0, 1).unwrap() as usize;
        assert!((bt[end] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn symmetric_graph_symmetric_scores() {
        let g = generators::cycle(6);
        let bt = edge_betweenness(&g);
        for w in bt.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "cycle edges are equivalent");
        }
    }

    #[test]
    fn barbell_bridge_dominates() {
        // Two K4s joined by a single bridge: the bridge has the highest score.
        let mut edges = Vec::new();
        for u in 0..4u32 {
            for v in u + 1..4 {
                edges.push((u, v));
                edges.push((u + 4, v + 4));
            }
        }
        edges.push((0, 4));
        let g = Graph::from_edges(8, &edges);
        let bt = edge_betweenness(&g);
        let bridge = g.edge_id(0, 4).unwrap() as usize;
        let max = bt.iter().cloned().fold(f64::MIN, f64::max);
        assert!((bt[bridge] - max).abs() < 1e-9, "bridge must rank first");
        assert!(
            (bt[bridge] - 16.0).abs() < 1e-9,
            "4x4 pairs cross the bridge"
        );
    }

    #[test]
    fn disconnected_components_do_not_interact() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]);
        let bt = edge_betweenness(&g);
        assert!((bt[0] - 1.0).abs() < 1e-9);
        assert!((bt[1] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn sampled_with_all_pivots_matches_exact() {
        let g = generators::erdos_renyi(40, 0.15, 11);
        let exact = edge_betweenness(&g);
        let sampled = edge_betweenness_sampled(&g, g.num_vertices(), 1);
        for (a, b) in exact.iter().zip(&sampled) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    mod properties {
        use super::super::*;
        use crate::generators;
        use proptest::prelude::*;

        /// Brute-force edge betweenness by enumerating all shortest paths
        /// with per-pair BFS counting.
        fn brute_force(g: &Graph) -> Vec<f64> {
            let n = g.num_vertices();
            let mut scores = vec![0.0; g.num_edges()];
            for s in 0..n as u32 {
                for t in s + 1..n as u32 {
                    // σ_st and, per edge, σ_st(e).
                    let dist = crate::traversal::bfs_distances(g, s);
                    if dist[t as usize] == u32::MAX {
                        continue;
                    }
                    // Count paths via DP from s.
                    let mut sigma = vec![0f64; n];
                    sigma[s as usize] = 1.0;
                    let mut order: Vec<u32> = (0..n as u32)
                        .filter(|&v| dist[v as usize] != u32::MAX)
                        .collect();
                    order.sort_by_key(|&v| dist[v as usize]);
                    for &v in &order {
                        for &w in g.neighbors(v) {
                            if dist[w as usize] == dist[v as usize] + 1 {
                                sigma[w as usize] += sigma[v as usize];
                            }
                        }
                    }
                    // Paths through edge (v,w) from s to t: v on a shortest
                    // path prefix, w exactly one step deeper, suffix count
                    // from w to t.
                    let dist_t = crate::traversal::bfs_distances(g, t);
                    let mut sigma_t = vec![0f64; n];
                    sigma_t[t as usize] = 1.0;
                    let mut order_t: Vec<u32> = (0..n as u32)
                        .filter(|&v| dist_t[v as usize] != u32::MAX)
                        .collect();
                    order_t.sort_by_key(|&v| dist_t[v as usize]);
                    for &v in &order_t {
                        for &w in g.neighbors(v) {
                            if dist_t[w as usize] == dist_t[v as usize] + 1 {
                                sigma_t[w as usize] += sigma_t[v as usize];
                            }
                        }
                    }
                    let d_st = dist[t as usize] as f64;
                    let total = sigma[t as usize];
                    for (id, e) in g.edges().iter().enumerate() {
                        for (a, b) in [(e.u, e.v), (e.v, e.u)] {
                            if dist[a as usize] != u32::MAX
                                && dist_t[b as usize] != u32::MAX
                                && dist[a as usize] as f64 + 1.0 + dist_t[b as usize] as f64 == d_st
                            {
                                scores[id] += sigma[a as usize] * sigma_t[b as usize] / total;
                            }
                        }
                    }
                }
            }
            scores
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]
            #[test]
            fn brandes_matches_brute_force(n in 4usize..14, p in 0.2f64..0.7, seed in 0u64..100) {
                let g = generators::erdos_renyi(n, p, seed);
                let fast = edge_betweenness(&g);
                let slow = brute_force(&g);
                for (i, (a, b)) in fast.iter().zip(&slow).enumerate() {
                    prop_assert!((a - b).abs() < 1e-6, "edge {i}: {a} vs {b}");
                }
            }

            /// Σ over edges of betweenness = Σ over connected pairs of d(s,t)
            /// (every shortest path contributes its length in edge-visits).
            #[test]
            fn total_mass_equals_sum_of_distances(n in 3usize..20, p in 0.1f64..0.6, seed in 0u64..100) {
                let g = generators::erdos_renyi(n, p, seed);
                let total: f64 = edge_betweenness(&g).iter().sum();
                let mut dist_sum = 0f64;
                for s in 0..n as u32 {
                    for (t, &d) in crate::traversal::bfs_distances(&g, s).iter().enumerate() {
                        if t as u32 > s && d != u32::MAX {
                            dist_sum += d as f64;
                        }
                    }
                }
                prop_assert!((total - dist_sum).abs() < 1e-6, "{total} vs {dist_sum}");
            }
        }
    }

    #[test]
    fn empty_graph_ok() {
        let g = Graph::from_edges(0, &[]);
        assert!(edge_betweenness(&g).is_empty());
        assert!(edge_betweenness_sampled(&g, 5, 0).is_empty());
    }
}
