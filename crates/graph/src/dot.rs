//! Graphviz DOT export.
//!
//! The paper's case-study figures (Figs 12–13) are drawings of edge
//! ego-networks with the connected components visually grouped. This module
//! renders any graph — and specifically ego-networks with per-component
//! colouring — as DOT text for `dot`/`neato`.

use crate::{traversal, Graph, VertexId};

/// Colour palette cycled over components (Graphviz X11 scheme names).
const PALETTE: [&str; 8] = [
    "indianred1",
    "lightskyblue",
    "palegreen3",
    "plum",
    "goldenrod1",
    "lightsalmon",
    "aquamarine3",
    "gray80",
];

/// Escapes a label for a quoted DOT string.
fn escape(label: &str) -> String {
    label.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Renders the whole graph as a DOT document. `label` maps a vertex to its
/// display name (`None` falls back to the numeric id).
pub fn to_dot(g: &Graph, label: impl Fn(VertexId) -> Option<String>) -> String {
    let mut out =
        String::from("graph G {\n  node [shape=ellipse, style=filled, fillcolor=white];\n");
    for v in g.vertices() {
        let name = label(v).unwrap_or_else(|| v.to_string());
        out.push_str(&format!("  n{v} [label=\"{}\"];\n", escape(&name)));
    }
    for e in g.edges() {
        out.push_str(&format!("  n{} -- n{};\n", e.u, e.v));
    }
    out.push_str("}\n");
    out
}

/// Renders the ego-network of `(u, v)` in the style of the paper's Figs
/// 12–13: the endpoint pair as doubled boxes, each connected component of
/// the common neighbourhood filled with its own colour.
pub fn ego_network_dot(
    g: &Graph,
    u: VertexId,
    v: VertexId,
    label: impl Fn(VertexId) -> Option<String>,
) -> String {
    let name = |x: VertexId| escape(&label(x).unwrap_or_else(|| x.to_string()));
    let members = g.common_neighbors(u, v);
    let components = traversal::induced_components(g, &members);

    let mut out = String::from("graph ego {\n  layout=neato;\n  overlap=false;\n");
    out.push_str(&format!(
        "  n{u} [label=\"{}\", shape=box, peripheries=2, style=filled, fillcolor=white];\n",
        name(u)
    ));
    out.push_str(&format!(
        "  n{v} [label=\"{}\", shape=box, peripheries=2, style=filled, fillcolor=white];\n",
        name(v)
    ));
    out.push_str(&format!("  n{u} -- n{v} [penwidth=2];\n"));
    for (ci, comp) in components.iter().enumerate() {
        let color = PALETTE[ci % PALETTE.len()];
        out.push_str(&format!("  subgraph cluster_{ci} {{\n    style=invis;\n"));
        for &w in comp {
            out.push_str(&format!(
                "    n{w} [label=\"{}\", style=filled, fillcolor={color}];\n",
                name(w)
            ));
        }
        out.push_str("  }\n");
        // Edges inside the component.
        for (i, &a) in comp.iter().enumerate() {
            for &b in &comp[i + 1..] {
                if g.has_edge(a, b) {
                    out.push_str(&format!("  n{a} -- n{b};\n"));
                }
            }
        }
    }
    // Spokes from the endpoints to every member, drawn faintly.
    for &w in &members {
        out.push_str(&format!("  n{u} -- n{w} [color=gray70];\n"));
        out.push_str(&format!("  n{v} -- n{w} [color=gray70];\n"));
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn dot_contains_all_vertices_and_edges() {
        let g = generators::complete(4);
        let dot = to_dot(&g, |_| None);
        for v in 0..4 {
            assert!(dot.contains(&format!("n{v} [label=\"{v}\"]")), "{dot}");
        }
        assert_eq!(dot.matches(" -- ").count(), 6);
        assert!(dot.starts_with("graph G {"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn labels_and_escaping() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let dot = to_dot(&g, |v| Some(format!("say \"{v}\"")));
        assert!(dot.contains("say \\\"0\\\""), "{dot}");
    }

    #[test]
    fn ego_dot_groups_components() {
        // A gadget whose edge (0,1) has common neighbours {2,3} (edge) and
        // {4,5} (edge) — two ego-network components.
        let g = Graph::from_edges(
            6,
            &[
                (0, 1),
                (0, 2),
                (0, 3),
                (0, 4),
                (0, 5),
                (1, 2),
                (1, 3),
                (1, 4),
                (1, 5),
                (2, 3),
                (4, 5),
            ],
        );
        let dot = ego_network_dot(&g, 0, 1, |_| None);
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("cluster_1"));
        assert!(!dot.contains("cluster_2"), "exactly two components");
        assert!(dot.contains("peripheries=2"));
        // The component-internal edges (2,3) and (4,5) are present.
        assert!(dot.contains("n2 -- n3"));
        assert!(dot.contains("n4 -- n5"));
    }

    #[test]
    fn ego_dot_empty_neighborhood() {
        let g = Graph::from_edges(2, &[(0, 1)]);
        let dot = ego_network_dot(&g, 0, 1, |_| None);
        assert!(!dot.contains("cluster_"), "no components to draw");
        assert!(dot.contains("n0 -- n1"));
    }
}
