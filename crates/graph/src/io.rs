//! Reading and writing SNAP-style edge lists.
//!
//! The paper's datasets are SNAP text files: one `u<ws>v` pair per line,
//! `#`-prefixed comment lines, arbitrary (possibly sparse) vertex ids. The
//! reader relabels ids densely in first-appearance order, mirroring the
//! conventional preprocessing.

use crate::{Graph, GraphBuilder, VertexId};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Errors raised while parsing an edge-list stream.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A data line that is not two whitespace-separated integers.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
}

impl std::fmt::Display for IoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse { line, content } => {
                write!(f, "line {line}: expected `u v`, got {content:?}")
            }
        }
    }
}

impl std::error::Error for IoError {}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

/// Parses a SNAP-style edge list from any reader. Lines starting with `#` or
/// `%` and blank lines are skipped; vertex ids are relabelled densely.
/// Returns the graph and the mapping `dense id -> original id`.
pub fn read_edge_list(reader: impl Read) -> Result<(Graph, Vec<u64>), IoError> {
    let mut b = GraphBuilder::new(0);
    let mut relabel: HashMap<u64, VertexId> = HashMap::new();
    let mut original = Vec::new();
    let dense = |raw: u64, relabel: &mut HashMap<u64, VertexId>, original: &mut Vec<u64>| {
        *relabel.entry(raw).or_insert_with(|| {
            original.push(raw);
            (original.len() - 1) as VertexId
        })
    };
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with('%') {
            continue;
        }
        let mut it = trimmed.split_whitespace();
        let parse = |tok: Option<&str>| tok.and_then(|t| t.parse::<u64>().ok());
        match (parse(it.next()), parse(it.next())) {
            (Some(u), Some(v)) => {
                let du = dense(u, &mut relabel, &mut original);
                let dv = dense(v, &mut relabel, &mut original);
                b.add_edge(du, dv);
            }
            _ => {
                return Err(IoError::Parse {
                    line: lineno + 1,
                    content: trimmed.to_string(),
                })
            }
        }
    }
    Ok((b.build(), original))
}

/// Loads a SNAP-style edge-list file. See [`read_edge_list`].
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<(Graph, Vec<u64>), IoError> {
    read_edge_list(std::fs::File::open(path)?)
}

/// Writes `g` as a `#`-commented edge list compatible with [`read_edge_list`].
pub fn write_edge_list(g: &Graph, writer: impl Write) -> std::io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# undirected graph: {} vertices, {} edges",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        writeln!(w, "{}\t{}", e.u, e.v)?;
    }
    w.flush()
}

/// Saves `g` to a file. See [`write_edge_list`].
pub fn save_edge_list(g: &Graph, path: impl AsRef<Path>) -> std::io::Result<()> {
    write_edge_list(g, std::fs::File::create(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn parses_snap_format() {
        let text = "# comment\n% other comment\n\n10 20\n20 30\n10 20\n30 10\n";
        let (g, original) = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
        assert_eq!(original, vec![10, 20, 30]);
    }

    #[test]
    fn rejects_garbage_with_line_number() {
        let text = "1 2\n3 x\n";
        match read_edge_list(text.as_bytes()) {
            Err(IoError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_one_token_line() {
        assert!(read_edge_list("42\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_input_is_empty_graph() {
        let (g, original) = read_edge_list("".as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 0);
        assert!(original.is_empty());
    }

    #[test]
    fn roundtrip_preserves_structure() {
        let g = generators::erdos_renyi(50, 0.1, 77);
        let mut buf = Vec::new();
        write_edge_list(&g, &mut buf).unwrap();
        let (g2, _) = read_edge_list(buf.as_slice()).unwrap();
        assert_eq!(g.num_edges(), g2.num_edges());
        // Relabelled in first-appearance order, which differs from id order
        // only when isolated vertices exist; compare degree multisets.
        let mut d1: Vec<usize> = g
            .vertices()
            .map(|v| g.degree(v))
            .filter(|&d| d > 0)
            .collect();
        let mut d2: Vec<usize> = g2.vertices().map(|v| g2.degree(v)).collect();
        d1.sort_unstable();
        d2.sort_unstable();
        assert_eq!(d1, d2);
    }

    #[test]
    fn file_roundtrip() {
        let g = generators::complete(4);
        let dir = std::env::temp_dir().join("esd_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("k4.txt");
        save_edge_list(&g, &path).unwrap();
        let (g2, _) = load_edge_list(&path).unwrap();
        assert_eq!(g2.num_edges(), 6);
        std::fs::remove_file(&path).ok();
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes never panic the parser: they either parse as
            /// a graph or return a structured error.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..400)) {
                let _ = read_edge_list(bytes.as_slice());
            }

            /// Arbitrary *numeric* edge lists always parse, and round-trip
            /// through write/read preserving the edge count.
            #[test]
            fn numeric_lines_roundtrip(pairs in prop::collection::vec((0u64..50, 0u64..50), 0..60)) {
                let text: String = pairs.iter().map(|(a, b)| format!("{a}\t{b}\n")).collect();
                let (g, _) = read_edge_list(text.as_bytes()).expect("numeric lines parse");
                let mut buf = Vec::new();
                write_edge_list(&g, &mut buf).unwrap();
                let (g2, _) = read_edge_list(buf.as_slice()).unwrap();
                prop_assert_eq!(g.num_edges(), g2.num_edges());
            }
        }
    }

    #[test]
    fn missing_file_is_io_error() {
        match load_edge_list("/nonexistent/esd/file.txt") {
            Err(IoError::Io(_)) => {}
            other => panic!("expected io error, got {other:?}"),
        }
    }
}
