//! Graph statistics: the Table I columns plus arboricity bounds.

use crate::ordering::DegeneracyOrder;
use crate::Graph;

/// Summary statistics of a graph (the columns of the paper's Table I).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphStats {
    /// Number of vertices `n`.
    pub n: usize,
    /// Number of edges `m`.
    pub m: usize,
    /// Maximum degree `d_max`.
    pub d_max: usize,
    /// Degeneracy `δ` (max core number).
    pub degeneracy: u32,
    /// Lower bound on the arboricity `α`: `⌈m / (n - 1)⌉` on the densest
    /// trivial witness (the whole graph); `α ≥ ⌈(δ+1)/2⌉` also holds.
    pub arboricity_lower: u32,
    /// Upper bound on the arboricity: `α ≤ δ` (a degeneracy ordering
    /// partitions the edges into `δ` forests).
    pub arboricity_upper: u32,
}

impl GraphStats {
    /// Computes all statistics of `g` in `O(n + m)`.
    pub fn compute(g: &Graph) -> Self {
        let n = g.num_vertices();
        let m = g.num_edges();
        let degeneracy = DegeneracyOrder::new(g).degeneracy;
        let whole_graph_density = if n >= 2 {
            ((m + n - 2) / (n - 1)) as u32 // ceil(m / (n-1))
        } else {
            0
        };
        let half_core = degeneracy.div_ceil(2).max(u32::from(m > 0));
        Self {
            n,
            m,
            d_max: g.max_degree(),
            degeneracy,
            arboricity_lower: whole_graph_density.max(half_core),
            arboricity_upper: degeneracy.max(u32::from(m > 0)),
        }
    }
}

impl std::fmt::Display for GraphStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "n={} m={} d_max={} δ={} α∈[{},{}]",
            self.n,
            self.m,
            self.d_max,
            self.degeneracy,
            self.arboricity_lower,
            self.arboricity_upper
        )
    }
}

/// `Σ_(u,v)∈E min(d(u), d(v))` — the Chiba–Nishizeki quantity bounded by
/// `O(αm)`; this is the exact total size of all common neighbourhood arrays
/// the ESDIndex may touch, reported next to the index size in Fig 6(a).
pub fn sum_min_degree(g: &Graph) -> u64 {
    g.edges()
        .iter()
        .map(|e| g.degree(e.u).min(g.degree(e.v)) as u64)
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn clique_stats() {
        let g = generators::complete(6);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 15);
        assert_eq!(s.d_max, 5);
        assert_eq!(s.degeneracy, 5);
        // α(K6) = 3; the bounds must bracket it.
        assert!(s.arboricity_lower <= 3 && 3 <= s.arboricity_upper);
    }

    #[test]
    fn tree_stats() {
        let g = generators::path(10);
        let s = GraphStats::compute(&g);
        assert_eq!(s.degeneracy, 1);
        assert_eq!(s.arboricity_lower, 1);
        assert_eq!(s.arboricity_upper, 1, "a tree is one forest");
    }

    #[test]
    fn empty_and_single() {
        let s = GraphStats::compute(&Graph::from_edges(0, &[]));
        assert_eq!((s.n, s.m, s.d_max), (0, 0, 0));
        let s1 = GraphStats::compute(&Graph::from_edges(1, &[]));
        assert_eq!(s1.arboricity_upper, 0);
    }

    #[test]
    fn sum_min_degree_on_star() {
        // Star: every edge has min degree 1.
        let g = generators::star(8);
        assert_eq!(sum_min_degree(&g), 7);
    }

    #[test]
    fn bounds_bracket_on_random_graphs() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(60, 0.15, seed);
            let s = GraphStats::compute(&g);
            assert!(s.arboricity_lower <= s.arboricity_upper, "{s}");
        }
    }
}
