//! The immutable CSR graph.

use crate::Edge;

/// Vertex identifier: dense ids in `0..n`.
pub type VertexId = u32;

/// Edge identifier: dense ids in `0..m`, assigned in lexicographic order of
/// the canonical `(min(u,v), max(u,v))` pairs.
pub type EdgeId = u32;

/// An immutable, undirected, simple graph in CSR form.
///
/// Adjacency lists are sorted, enabling `O(log d)` membership tests and
/// linear-merge common-neighbourhood computation, which the ESD algorithms
/// rely on throughout. Build instances with [`crate::GraphBuilder`] (which
/// deduplicates edges and removes self-loops) or [`Graph::from_edges`].
///
/// # Examples
///
/// ```
/// use esd_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
/// assert_eq!(g.num_vertices(), 4);
/// assert_eq!(g.num_edges(), 4);
/// assert_eq!(g.degree(2), 3);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    /// CSR offsets, length `n + 1`.
    pub(crate) offsets: Vec<usize>,
    /// Concatenated sorted adjacency lists, length `2m`.
    pub(crate) neighbors: Vec<VertexId>,
    /// Canonical edges sorted by `(u, v)`; index = [`EdgeId`].
    pub(crate) edges: Vec<Edge>,
    /// For each vertex `u`, the first index into `edges` with smaller endpoint
    /// `u`; length `n + 1`. Enables `O(log d)` edge-id lookups.
    pub(crate) forward_offsets: Vec<usize>,
}

impl Graph {
    /// Builds a graph from an edge list; convenience wrapper over
    /// [`crate::GraphBuilder`]. Self-loops and duplicates are dropped.
    pub fn from_edges(n: usize, edges: &[(VertexId, VertexId)]) -> Self {
        let mut b = crate::GraphBuilder::new(n);
        for &(u, v) in edges {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Internal constructor used by the builder. `edges` must be canonical,
    /// sorted, and deduplicated; endpoints must be `< n`.
    pub(crate) fn from_sorted_canonical_edges(n: usize, edges: Vec<Edge>) -> Self {
        debug_assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be sorted+dedup"
        );
        let mut degree = vec![0usize; n];
        for e in &edges {
            assert!((e.v as usize) < n, "edge {e} out of bounds for n = {n}");
            degree[e.u as usize] += 1;
            degree[e.v as usize] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0);
        for d in &degree {
            offsets.push(offsets.last().unwrap() + d);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![0 as VertexId; 2 * edges.len()];
        // Edges are sorted by (u, v); a forward pass fills u's list in order,
        // and v's list also ends up sorted because for fixed v the us arrive
        // in increasing order... which is not guaranteed for the v side, so we
        // sort each list afterwards only if needed. In fact the v-side lists
        // *are* filled in increasing u order (edges sorted by u first), and
        // u-side lists in increasing v order, but the two interleave, so a
        // final per-list sort keeps this simple and O(m log d_max).
        for e in &edges {
            neighbors[cursor[e.u as usize]] = e.v;
            cursor[e.u as usize] += 1;
            neighbors[cursor[e.v as usize]] = e.u;
            cursor[e.v as usize] += 1;
        }
        for u in 0..n {
            neighbors[offsets[u]..offsets[u + 1]].sort_unstable();
        }
        let mut forward_offsets = Vec::with_capacity(n + 1);
        forward_offsets.push(0);
        let mut idx = 0;
        for u in 0..n as VertexId {
            while idx < edges.len() && edges[idx].u == u {
                idx += 1;
            }
            forward_offsets.push(idx);
        }
        Self {
            offsets,
            neighbors,
            edges,
            forward_offsets,
        }
    }

    /// Number of vertices `n`.
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges `m`.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Degree of `u`.
    #[inline]
    pub fn degree(&self, u: VertexId) -> usize {
        self.offsets[u as usize + 1] - self.offsets[u as usize]
    }

    /// Maximum degree over all vertices (0 for the empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices() as VertexId)
            .map(|u| self.degree(u))
            .max()
            .unwrap_or(0)
    }

    /// Sorted neighbour list of `u`.
    #[inline]
    pub fn neighbors(&self, u: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[u as usize]..self.offsets[u as usize + 1]]
    }

    /// `O(log d)` adjacency test.
    #[inline]
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        // Probe the smaller adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Canonical edge id of `(u, v)`, if present.
    #[inline]
    pub fn edge_id(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let e = Edge::new(u, v);
        let lo = self.forward_offsets[e.u as usize];
        let hi = self.forward_offsets[e.u as usize + 1];
        self.edges[lo..hi]
            .binary_search_by_key(&e.v, |edge| edge.v)
            .ok()
            .map(|pos| (lo + pos) as EdgeId)
    }

    /// The edge with id `id`.
    #[inline]
    pub fn edge(&self, id: EdgeId) -> Edge {
        self.edges[id as usize]
    }

    /// All canonical edges in id order.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Iterates over all vertex ids.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.num_vertices() as VertexId
    }

    /// Sorted common neighbourhood `N(u) ∩ N(v)` of an edge or vertex pair.
    ///
    /// This is the vertex set of the edge ego-network `G_{N(uv)}`
    /// (Definition 1 of the paper).
    pub fn common_neighbors(&self, u: VertexId, v: VertexId) -> Vec<VertexId> {
        crate::intersect::intersect_adaptive(self.neighbors(u), self.neighbors(v))
    }

    /// Size of `N(u) ∩ N(v)` without materialising the set.
    pub fn common_neighbor_count(&self, u: VertexId, v: VertexId) -> usize {
        crate::intersect::intersection_size(self.neighbors(u), self.neighbors(v))
    }

    /// Total bytes of the CSR payload (used by the Fig 6(a) size report).
    pub fn byte_size(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<usize>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.edges.len() * std::mem::size_of::<Edge>()
            + self.forward_offsets.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle_plus_pendant() -> Graph {
        Graph::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)])
    }

    #[test]
    fn csr_layout() {
        let g = triangle_plus_pendant();
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0, 2]);
        assert_eq!(g.neighbors(2), &[0, 1, 3]);
        assert_eq!(g.neighbors(3), &[2]);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn edge_ids_are_lexicographic() {
        let g = triangle_plus_pendant();
        // Canonical edges sorted: (0,1) (0,2) (1,2) (2,3)
        assert_eq!(g.edge_id(1, 0), Some(0));
        assert_eq!(g.edge_id(0, 2), Some(1));
        assert_eq!(g.edge_id(2, 1), Some(2));
        assert_eq!(g.edge_id(3, 2), Some(3));
        assert_eq!(g.edge_id(0, 3), None);
        assert_eq!(g.edge_id(1, 1), None);
        for id in 0..g.num_edges() as EdgeId {
            let e = g.edge(id);
            assert_eq!(g.edge_id(e.u, e.v), Some(id));
        }
    }

    #[test]
    fn duplicate_and_self_loop_edges_dropped() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 0), (0, 1), (2, 2)]);
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(2), 0);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::from_edges(0, &[]);
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn isolated_vertices() {
        let g = Graph::from_edges(10, &[(3, 7)]);
        assert_eq!(g.num_vertices(), 10);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(5), &[] as &[VertexId]);
    }

    #[test]
    fn common_neighbors_of_triangle_edge() {
        let g = triangle_plus_pendant();
        assert_eq!(g.common_neighbors(0, 1), vec![2]);
        assert_eq!(g.common_neighbors(2, 3), Vec::<VertexId>::new());
        assert_eq!(g.common_neighbor_count(0, 1), 1);
    }

    #[test]
    fn vertex_set_grows_to_cover_endpoints() {
        let g = Graph::from_edges(2, &[(0, 5)]);
        assert_eq!(g.num_vertices(), 6);
        assert!(g.has_edge(0, 5));
    }
}
