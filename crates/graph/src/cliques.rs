//! Clique enumeration.
//!
//! The improved index construction (Algorithm 3) is powered by Observation 1
//! of the paper: `{u, v, w1, w2}` is a 4-clique iff `(w1, w2)` is an edge of
//! the ego-network `G_{N(uv)}`. [`FourCliqueEnumerator`] lists each 4-clique
//! of the graph exactly once on a degree-ordered DAG in `O(α²m)`
//! (Chiba–Nishizeki). A generic recursive k-clique lister
//! ([`list_k_cliques`]) is provided as well; the 4-clique path is a
//! specialised, allocation-free version of it.

use crate::intersect::WordTiles;
use crate::{Graph, OrientedGraph, VertexId};

/// Reusable state for 4-clique enumeration over one oriented graph.
///
/// The enumerator visits each 4-clique `{u, v, w1, w2}` exactly once with
/// `u ≺ v ≺ w1' , w2'` in DAG order; within the callback, `u → v` is a
/// directed edge and `w1, w2` are common out-neighbours of both with
/// `w1 → w2` directed. The membership test "is `w2` a common out-neighbour"
/// walks a [`WordTiles`] tiling of the common neighbourhood — a compact
/// sorted array of `(word, 64-bit mask)` tiles rebuilt per edge — against
/// each sorted `N⁺(w1)` CSR slice, so every probe is a sequential scan of
/// two small contiguous arrays rather than a random access into a
/// size-`n` stamp array (the previous layout, whose cache misses dominated
/// on large graphs). Allocations are reused across edges.
#[derive(Debug)]
pub struct FourCliqueEnumerator {
    tiles: WordTiles,
    common: Vec<VertexId>,
}

impl FourCliqueEnumerator {
    /// Creates scratch state for graphs with up to `n` vertices (`n` sizes
    /// the tile capacity: a common neighbourhood can span at most
    /// `n / 64 + 1` words).
    pub fn new(n: usize) -> Self {
        Self {
            tiles: WordTiles::with_capacity(n / 64 + 1),
            common: Vec::new(),
        }
    }

    /// Enumerates the 4-cliques hanging off the single directed edge
    /// `(u, v)`: all pairs `w1, w2 ∈ N⁺(u) ∩ N⁺(v)` with `w1 → w2`.
    ///
    /// This per-edge granularity is what both the sequential builder and the
    /// edge-parallel builder (PESDIndex+) iterate over.
    #[inline]
    pub fn for_edge(
        &mut self,
        dag: &OrientedGraph,
        u: VertexId,
        v: VertexId,
        mut f: impl FnMut(VertexId, VertexId),
    ) {
        self.common.clear();
        crate::intersect::intersect_into(
            dag.out_neighbors(u),
            dag.out_neighbors(v),
            &mut self.common,
        );
        if self.common.len() < 2 {
            return;
        }
        self.tiles.build(&self.common);
        // The clique counter is owned by this loop — and only this loop — so
        // every caller (sequential build, parallel workers, plain counting)
        // shares one definition. Counted locally, recorded in one add.
        //
        // Emission order matters: pairs grouped by `w1` (in `common` order)
        // with `w2` ascending within each group — the sequential builder
        // caches per-`w1` state on exactly that grouping.
        let mut emitted = 0u64;
        for &w1 in &self.common {
            self.tiles.intersect_sorted(dag.out_neighbors(w1), |w2| {
                emitted += 1;
                f(w1, w2);
            });
        }
        esd_telemetry::add(esd_telemetry::Metric::CliquesEnumerated, emitted);
    }

    /// Enumerates every 4-clique of the graph exactly once as
    /// `(u, v, w1, w2)`.
    pub fn enumerate(
        &mut self,
        dag: &OrientedGraph,
        mut f: impl FnMut(VertexId, VertexId, VertexId, VertexId),
    ) {
        for u in 0..dag.num_vertices() as VertexId {
            // The borrow checker dislikes `self.for_edge` capturing `f` while
            // iterating `dag`; out-neighbour slices are copied per edge head.
            let out_u: &[VertexId] = dag.out_neighbors(u);
            for idx in 0..out_u.len() {
                let v = dag.out_neighbors(u)[idx];
                self.for_edge(dag, u, v, |w1, w2| f(u, v, w1, w2));
            }
        }
    }
}

/// Counts all 4-cliques of `g`.
pub fn count_four_cliques(g: &Graph) -> u64 {
    let dag = OrientedGraph::by_degree(g);
    let mut enumerator = FourCliqueEnumerator::new(g.num_vertices());
    let mut count = 0u64;
    enumerator.enumerate(&dag, |_, _, _, _| count += 1);
    count
}

/// Lists each k-clique of `g` exactly once (vertices passed in DAG order).
///
/// Generic Chiba–Nishizeki-style recursion on the degree-ordered DAG; runs in
/// `O(k · m · α^(k-2))`. `k` must be at least 1.
pub fn list_k_cliques(g: &Graph, k: usize, mut f: impl FnMut(&[VertexId])) {
    assert!(k >= 1, "clique size must be positive");
    if k == 1 {
        for v in g.vertices() {
            f(&[v]);
        }
        return;
    }
    let dag = OrientedGraph::by_degree(g);
    let mut prefix = Vec::with_capacity(k);
    // Candidate sets per recursion level, reused across the whole run.
    let mut levels: Vec<Vec<VertexId>> = vec![Vec::new(); k];
    for u in 0..dag.num_vertices() as VertexId {
        prefix.push(u);
        levels[1].clear();
        levels[1].extend_from_slice(dag.out_neighbors(u));
        recurse(&dag, k, 1, &mut prefix, &mut levels, &mut f);
        prefix.pop();
    }

    fn recurse(
        dag: &OrientedGraph,
        k: usize,
        depth: usize,
        prefix: &mut Vec<VertexId>,
        levels: &mut [Vec<VertexId>],
        f: &mut impl FnMut(&[VertexId]),
    ) {
        if depth + 1 == k {
            #[allow(
                clippy::needless_range_loop,
                reason = "indexing (not iterating) keeps `levels` free for \
                          the `prefix` mutation inside the loop"
            )]
            for i in 0..levels[depth].len() {
                let w = levels[depth][i];
                prefix.push(w);
                f(prefix);
                prefix.pop();
            }
            return;
        }
        let candidates = std::mem::take(&mut levels[depth]);
        for &w in &candidates {
            let (_, rest) = levels.split_at_mut(depth + 1);
            let next = &mut rest[0];
            next.clear();
            crate::intersect::intersect_into(&candidates, dag.out_neighbors(w), next);
            if next.len() + depth + 1 >= k {
                prefix.push(w);
                recurse(dag, k, depth + 1, prefix, levels, f);
                prefix.pop();
            }
        }
        levels[depth] = candidates;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;
    use proptest::prelude::*;
    use std::collections::BTreeSet;

    fn brute_force_k_cliques(g: &Graph, k: usize) -> BTreeSet<Vec<VertexId>> {
        let n = g.num_vertices();
        let mut found = BTreeSet::new();
        let mut combo: Vec<usize> = (0..k).collect();
        if k > n {
            return found;
        }
        loop {
            let verts: Vec<VertexId> = combo.iter().map(|&i| i as VertexId).collect();
            let is_clique = verts
                .iter()
                .enumerate()
                .all(|(i, &a)| verts[i + 1..].iter().all(|&b| g.has_edge(a, b)));
            if is_clique {
                found.insert(verts);
            }
            // Next combination.
            let mut i = k;
            loop {
                if i == 0 {
                    return found;
                }
                i -= 1;
                if combo[i] != i + n - k {
                    break;
                }
                if i == 0 {
                    return found;
                }
            }
            combo[i] += 1;
            for j in i + 1..k {
                combo[j] = combo[j - 1] + 1;
            }
        }
    }

    #[test]
    fn k5_has_five_four_cliques() {
        let g = generators::complete(5);
        assert_eq!(count_four_cliques(&g), 5);
    }

    #[test]
    fn k6_counts() {
        let g = generators::complete(6);
        assert_eq!(count_four_cliques(&g), 15); // C(6,4)
        let mut fives = 0;
        list_k_cliques(&g, 5, |_| fives += 1);
        assert_eq!(fives, 6); // C(6,5)
        let mut sixes = 0;
        list_k_cliques(&g, 6, |_| sixes += 1);
        assert_eq!(sixes, 1);
    }

    #[test]
    fn four_cliques_are_actual_cliques_and_unique() {
        let g = generators::erdos_renyi(40, 0.25, 17);
        let dag = OrientedGraph::by_degree(&g);
        let mut seen = BTreeSet::new();
        let mut e = FourCliqueEnumerator::new(g.num_vertices());
        e.enumerate(&dag, |u, v, w1, w2| {
            let mut verts = [u, v, w1, w2];
            for i in 0..4 {
                for j in i + 1..4 {
                    assert!(g.has_edge(verts[i], verts[j]), "not a clique");
                }
            }
            verts.sort_unstable();
            assert!(seen.insert(verts), "4-clique emitted twice: {verts:?}");
        });
        let brute = brute_force_k_cliques(&g, 4);
        assert_eq!(seen.len(), brute.len());
    }

    #[test]
    fn no_four_cliques_in_sparse_graphs() {
        let star = generators::star(20);
        assert_eq!(count_four_cliques(&star), 0);
        let cycle = generators::cycle(10);
        assert_eq!(count_four_cliques(&cycle), 0);
    }

    #[test]
    fn k_clique_k1_and_k2() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]);
        let mut vs = Vec::new();
        list_k_cliques(&g, 1, |c| vs.push(c.to_vec()));
        assert_eq!(vs.len(), 3);
        let mut es = 0;
        list_k_cliques(&g, 2, |c| {
            assert!(g.has_edge(c[0], c[1]));
            es += 1;
        });
        assert_eq!(es, 2);
    }

    proptest! {
        #[test]
        fn k_cliques_match_brute_force(seed in 0u64..30, n in 4usize..16, p in 0.2f64..0.8, k in 3usize..6) {
            let g = generators::erdos_renyi(n, p, seed);
            let mut listed = Vec::new();
            list_k_cliques(&g, k, |c| {
                let mut v = c.to_vec();
                v.sort_unstable();
                listed.push(v);
            });
            let as_set: BTreeSet<Vec<VertexId>> = listed.iter().cloned().collect();
            prop_assert_eq!(as_set.len(), listed.len(), "duplicate clique emitted");
            prop_assert_eq!(as_set, brute_force_k_cliques(&g, k));
        }
    }
}
