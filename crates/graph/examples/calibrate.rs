//! Prints the intersection-kernel crossover thresholds measured on this
//! machine (see `docs/kernels.md`):
//!
//! ```text
//! cargo run --release -p esd-graph --example calibrate
//! ```

fn main() {
    let before = esd_graph::intersect::kernel_config();
    let measured = esd_graph::intersect::calibrate();
    println!("default config:  {before:?}");
    println!("measured config: {measured:?}");
}
