//! Differential suite for the intersection kernels: every kernel — and the
//! adaptive dispatcher under every threshold configuration — must agree
//! exactly with `intersect_merge`, which is the reference the
//! `strict-invariants` build also verifies against inline. The clique tests
//! pin the downstream consumer: the `WordTiles`-based 4-clique enumerator
//! must count exactly what the generic k-clique lister counts on generator
//! graphs across densities.

use esd_graph::cliques::{count_four_cliques, list_k_cliques};
use esd_graph::intersect::{
    choose_kernel, intersect_adaptive, intersect_bitset, intersect_gallop, intersect_into,
    intersect_merge, intersection_size, kernel_config, set_kernel_config, KernelConfig, WordTiles,
};
use esd_graph::{generators, VertexId};
use proptest::prelude::*;

/// Runs `f` with the dispatcher forced to the given thresholds, restoring
/// the previous configuration afterwards (the config is process-global).
fn with_config(cfg: KernelConfig, f: impl FnOnce()) {
    let prev = kernel_config();
    set_kernel_config(cfg);
    f();
    set_kernel_config(prev);
}

fn merge(a: &[VertexId], b: &[VertexId]) -> Vec<VertexId> {
    let mut out = Vec::new();
    intersect_merge(a, b, &mut out);
    out
}

/// Asserts that every kernel, both argument orders, agrees with the merge
/// reference on `(a, b)` — including the counting twins.
fn assert_all_kernels_agree(a: &[VertexId], b: &[VertexId]) {
    let expected = merge(a, b);
    for (name, kernel) in [
        (
            "bitset",
            intersect_bitset as fn(&[VertexId], &[VertexId], &mut Vec<VertexId>),
        ),
        ("adaptive", intersect_into),
    ] {
        for (x, y) in [(a, b), (b, a)] {
            let mut got = Vec::new();
            kernel(x, y, &mut got);
            assert_eq!(got, expected, "{name} disagrees with merge");
            assert_eq!(
                intersection_size(x, y),
                expected.len(),
                "intersection_size disagrees with merge"
            );
        }
    }
    // Gallop's contract requires the shorter list first.
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut got = Vec::new();
    intersect_gallop(short, long, &mut got);
    assert_eq!(got, expected, "gallop disagrees with merge");
    assert_eq!(intersect_adaptive(a, b), expected);
}

#[test]
fn adversarial_cases() {
    let empty: &[VertexId] = &[];
    let one = &[7u32][..];
    let identical: Vec<VertexId> = (0..200).map(|x| x * 3).collect();
    let disjoint_a: Vec<VertexId> = (0..200).map(|x| x * 2).collect();
    let disjoint_b: Vec<VertexId> = (0..200).map(|x| x * 2 + 1).collect();
    // A high-degree hub packed densely into few words against a sparse
    // list spread over many words — the case the bitset word-grouping and
    // the gallop jumps both have to get right at word boundaries.
    let dense: Vec<VertexId> = (0..512).collect();
    let sparse: Vec<VertexId> = (0..512).map(|x| x * 67).collect();
    let near_max: Vec<VertexId> = (0..64).map(|x| u32::MAX - 63 + x).collect();

    let cases: &[(&[VertexId], &[VertexId])] = &[
        (empty, empty),
        (empty, one),
        (one, one),
        (one, &identical),
        (&identical, &identical),
        (&disjoint_a, &disjoint_b),
        (&dense, &sparse),
        (&dense, &near_max),
        (&near_max, &near_max),
    ];
    for &(a, b) in cases {
        assert_all_kernels_agree(a, b);
    }
}

#[test]
fn agreement_holds_under_every_dispatch_configuration() {
    let a: Vec<VertexId> = (0..300).map(|x| x * 5).collect();
    let b: Vec<VertexId> = (0..900).map(|x| x * 2).collect();
    let expected = merge(&a, &b);
    // Force each corner of the dispatch space: always-merge, always-gallop,
    // always-bitset, and the defaults. The result must never change — only
    // which kernel computed it (choose_kernel is pure, so we can check
    // which one fired without touching the telemetry registry).
    for cfg in [
        KernelConfig {
            gallop_ratio: usize::MAX,
            bitset_min_len: usize::MAX,
            ..KernelConfig::default()
        },
        KernelConfig {
            gallop_ratio: 1,
            bitset_min_len: usize::MAX,
            ..KernelConfig::default()
        },
        KernelConfig {
            gallop_ratio: usize::MAX,
            bitset_min_len: 1,
            bitset_min_per_word: 0,
        },
        KernelConfig::default(),
    ] {
        with_config(cfg, || {
            let _ = choose_kernel(&a, &b);
            let mut got = Vec::new();
            intersect_into(&a, &b, &mut got);
            assert_eq!(got, expected, "dispatcher broke under {cfg:?}");
            assert_eq!(intersection_size(&a, &b), expected.len());
        });
    }
}

proptest! {
    /// Narrow dense ranges: many ids share a 64-id word, so the bitset
    /// kernel's mask build/drain path does real multi-bit work.
    #[test]
    fn kernels_agree_on_dense_ranges(
        mut a in proptest::collection::btree_set(0u32..256, 0..128),
        mut b in proptest::collection::btree_set(0u32..256, 0..128),
    ) {
        let a: Vec<VertexId> = std::mem::take(&mut a).into_iter().collect();
        let b: Vec<VertexId> = std::mem::take(&mut b).into_iter().collect();
        assert_all_kernels_agree(&a, &b);
    }

    /// Wide sparse ranges up to `u32::MAX`: word indices themselves span
    /// the full 26-bit range, pinning the `(w << 6) | bit` reconstruction.
    #[test]
    fn kernels_agree_on_sparse_ranges(
        mut a in proptest::collection::btree_set(0u32..=u32::MAX, 0..64),
        mut b in proptest::collection::btree_set(0u32..=u32::MAX, 0..64),
    ) {
        let a: Vec<VertexId> = std::mem::take(&mut a).into_iter().collect();
        let b: Vec<VertexId> = std::mem::take(&mut b).into_iter().collect();
        assert_all_kernels_agree(&a, &b);
    }

    /// `WordTiles` streaming must behave exactly like membership in the
    /// built set, in input order.
    #[test]
    fn word_tiles_stream_matches_membership(
        mut base in proptest::collection::btree_set(0u32..2048, 0..256),
        probe in proptest::collection::vec(0u32..2048, 0..256),
    ) {
        let base: Vec<VertexId> = std::mem::take(&mut base).into_iter().collect();
        let mut sorted_probe = probe.clone();
        sorted_probe.sort_unstable();
        sorted_probe.dedup();
        let mut tiles = WordTiles::new();
        tiles.build(&base);
        let mut streamed = Vec::new();
        tiles.intersect_sorted(&sorted_probe, |x| streamed.push(x));
        let expected: Vec<VertexId> = sorted_probe
            .iter()
            .copied()
            .filter(|&x| base.binary_search(&x).is_ok())
            .collect();
        prop_assert_eq!(streamed, expected);
        for &x in &probe {
            prop_assert_eq!(tiles.contains(x), base.binary_search(&x).is_ok());
        }
    }
}

/// The 4-clique enumerator (WordTiles tiling) against the generic k-clique
/// lister (adaptive intersections) — two independent code paths whose
/// counts must match on every graph.
fn assert_clique_counts_agree(g: &esd_graph::Graph) {
    let mut generic = 0u64;
    list_k_cliques(g, 4, |_| generic += 1);
    assert_eq!(count_four_cliques(g), generic);
}

#[test]
fn clique_counts_agree_across_densities() {
    for (n, p) in [(60, 0.05), (60, 0.15), (40, 0.35), (24, 0.6), (16, 0.9)] {
        for seed in 0..3 {
            assert_clique_counts_agree(&generators::erdos_renyi(n, p, seed));
        }
    }
    // Clique-overlap graphs are the worst case for the tiling: large fully
    // dense common neighbourhoods.
    for seed in 0..3 {
        assert_clique_counts_agree(&generators::clique_overlap(80, 8, 12, seed));
    }
    // Skewed degrees exercise the gallop arm inside the enumerator.
    assert_clique_counts_agree(&generators::barabasi_albert(120, 4, 7));
}
