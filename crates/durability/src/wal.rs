//! The append-only, epoch-stamped write-ahead log.
//!
//! ## On-disk format
//!
//! A log is a directory of segment files named
//! `wal-<seq:08>-<first_epoch:016x>.log`. Each segment starts with an
//! 8-byte header (`magic "ESDW"` + `u32` version, little-endian like every
//! integer here) followed by length-prefixed frames:
//!
//! ```text
//! [u32 len] [u32 crc32] [u64 epoch] [payload: len − 8 bytes]
//! ```
//!
//! `len` counts the epoch + payload region; `crc32` (IEEE, see
//! [`crate::crc32`]) covers exactly those `len` bytes. Epochs are strictly
//! increasing across the whole log — each record is one published epoch —
//! which is what lets a reader treat any non-monotone epoch as corruption
//! and lets purge reason about segments from their first-epoch name alone
//! (every record in segment *k* is older than segment *k + 1*'s name).
//!
//! ## Writer
//!
//! [`WalWriter`] appends frames and fsyncs with **group commit**: any
//! number of appends can be outstanding, and a single [`WalWriter::sync`]
//! call — whichever caller gets there first becomes the syncer, everyone
//! else parks on a condvar — makes all of them durable at once. Segments
//! rotate at a size threshold (the outgoing segment is fsynced before the
//! next opens). [`WalWriter::mark`]/[`WalWriter::truncate_to`] give the
//! serving layer transactional appends: a record written for a window
//! that later fails to publish is physically removed, so the log never
//! contains a record for an un-acked batch.
//!
//! ## Reader
//!
//! [`read_dir`] replays segments in order and **stops at the last valid
//! record**: a torn tail, a bit flip, a truncated segment, or an epoch
//! regression ends the replay there (recorded in
//! [`WalReplay::truncated`]) — it never panics and never yields a record
//! that fails its checksum. After a truncated replay, a process that
//! intends to keep appending must call [`repair_dir`] to physically drop
//! the invalid tail *before* opening a writer: the writer starts a fresh
//! segment after the tear, and a later replay would stop at the tear and
//! never reach it.

use crate::crc32::crc32;
use crate::sync::{Condvar, Mutex, Unpoison};
use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment header magic.
pub const MAGIC: &[u8; 4] = b"ESDW";
/// Segment format version.
pub const VERSION: u32 = 1;
/// Segment header length in bytes (magic + version).
pub const HEADER_LEN: u64 = 8;
/// Frame prefix length in bytes (`len` + `crc`).
const FRAME_PREFIX: u64 = 8;
/// Upper bound on one frame's `len` field — anything larger is treated as
/// corruption rather than attempted as an allocation.
const MAX_FRAME_LEN: u32 = 1 << 30;

/// Tuning for [`WalWriter::open`].
#[derive(Debug, Clone, Copy)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the open one reaches this many bytes.
    pub segment_bytes: u64,
}

impl Default for WalOptions {
    fn default() -> Self {
        Self {
            segment_bytes: 8 << 20,
        }
    }
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The publication epoch this record commits.
    pub epoch: u64,
    /// The opaque payload (the serving layer's serialized update batch).
    pub payload: Vec<u8>,
}

/// The result of replaying a log directory.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Every record up to the last valid one, in epoch order.
    pub records: Vec<WalRecord>,
    /// `true` when replay stopped early (torn tail, checksum mismatch,
    /// short frame, bad header, or epoch regression); everything at and
    /// after the first invalid byte was discarded.
    pub truncated: bool,
    /// Number of segment files visited.
    pub segments: usize,
}

/// A resumption point for [`WalWriter::truncate_to`], captured by
/// [`WalWriter::mark`] before a speculative append.
#[derive(Debug, Clone, Copy)]
pub struct WalMark {
    seg_seq: u64,
    seg_len: u64,
    seg_open: bool,
    appended: u64,
    last_epoch: Option<u64>,
}

/// One discovered segment file.
#[derive(Debug, Clone)]
struct Segment {
    seq: u64,
    first_epoch: u64,
    path: PathBuf,
}

/// Parses `wal-<seq:08>-<first_epoch:016x>.log`; `None` for foreign files.
fn parse_segment_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("wal-")?.strip_suffix(".log")?;
    let (seq, epoch) = rest.split_once('-')?;
    if seq.len() != 8 || epoch.len() != 16 {
        return None;
    }
    Some((seq.parse().ok()?, u64::from_str_radix(epoch, 16).ok()?))
}

fn segment_file_name(seq: u64, first_epoch: u64) -> String {
    format!("wal-{seq:08}-{first_epoch:016x}.log")
}

/// All segments in `dir`, sorted by sequence number.
fn list_segments(dir: &Path) -> io::Result<Vec<Segment>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some((seq, first_epoch)) = parse_segment_name(name) {
            out.push(Segment {
                seq,
                first_epoch,
                path: entry.path(),
            });
        }
    }
    out.sort_by_key(|s| s.seq);
    Ok(out)
}

/// Opens the directory itself for fsync (durable rename/create on the
/// containing directory — POSIX requires syncing the parent to persist a
/// new directory entry).
fn open_dir(dir: &Path) -> io::Result<File> {
    File::open(dir)
}

/// Fsyncs the directory entry table so freshly created/renamed file names
/// survive power loss. Best effort on platforms where directories cannot
/// be opened; errors other than permission/unsupported are surfaced.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    match open_dir(dir) {
        Ok(d) => d.sync_all(),
        Err(e) if e.kind() == io::ErrorKind::Unsupported => Ok(()),
        Err(e) => Err(e),
    }
}

#[derive(Debug)]
struct Inner {
    /// The open segment, if one has been created (creation is lazy so a
    /// recover-only process never litters empty segments).
    file: Option<File>,
    seg_seq: u64,
    seg_len: u64,
    /// Records ever appended (logical commit index).
    appended: u64,
    /// Records known durable (fsynced, or in a rotated-and-fsynced
    /// segment).
    durable: u64,
    /// Bytes appended since the last successful full sync — the deferred
    /// (ack-after-enqueue) policy's batching trigger.
    unsynced_bytes: u64,
    /// A sync is in flight outside the lock; contenders park on `synced`.
    syncing: bool,
    /// Bumped by every effective [`WalWriter::truncate_to`]: an fsync that
    /// raced a truncation (its generation no longer matches) proves
    /// nothing about the current tail, so its result must not advance
    /// `durable`.
    truncations: u64,
    /// Set when the on-disk tail may not match this bookkeeping (a failed
    /// truncate). Every subsequent append refuses, so an inconsistent log
    /// is never extended.
    poisoned: bool,
    last_epoch: Option<u64>,
}

/// The appending side of the log. All methods are `&self` and thread-safe;
/// see the module docs for the commit protocol.
#[derive(Debug)]
pub struct WalWriter {
    dir: PathBuf,
    segment_bytes: u64,
    inner: Mutex<Inner>,
    synced: Condvar,
}

impl WalWriter {
    /// Opens `dir` for appending (creating it if missing). Existing
    /// segments are left untouched — the writer always starts a fresh
    /// segment after the highest existing sequence number, so a possibly
    /// torn tail from a previous process is never appended to.
    pub fn open(dir: &Path, opts: WalOptions) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        let next_seq = list_segments(dir)?.last().map_or(0, |s| s.seq + 1);
        Ok(Self {
            dir: dir.to_path_buf(),
            segment_bytes: opts.segment_bytes.max(HEADER_LEN + FRAME_PREFIX),
            inner: Mutex::new(Inner {
                file: None,
                seg_seq: next_seq,
                seg_len: 0,
                appended: 0,
                durable: 0,
                unsynced_bytes: 0,
                syncing: false,
                truncations: 0,
                poisoned: false,
                last_epoch: None,
            }),
            synced: Condvar::new(),
        })
    }

    /// The log directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Captures the current tail position for a later
    /// [`truncate_to`](Self::truncate_to).
    pub fn mark(&self) -> WalMark {
        let inner = self.inner.lock().unpoison();
        WalMark {
            seg_seq: inner.seg_seq,
            seg_len: inner.seg_len,
            seg_open: inner.file.is_some(),
            appended: inner.appended,
            last_epoch: inner.last_epoch,
        }
    }

    /// Appends one record. `epoch` must be strictly greater than every
    /// previously appended epoch. Returns the frame size in bytes. The
    /// record is buffered in the OS page cache until [`sync`](Self::sync)
    /// (or a rotation) makes it durable.
    pub fn append(&self, epoch: u64, payload: &[u8]) -> io::Result<u64> {
        let frame_len = u32::try_from(8 + payload.len())
            .ok()
            .filter(|l| *l <= MAX_FRAME_LEN)
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "payload too large"))?;
        let mut inner = self.inner.lock().unpoison();
        if inner.poisoned {
            return Err(io::Error::other("wal poisoned by an earlier failed abort"));
        }
        if inner.last_epoch.is_some_and(|last| epoch <= last) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "wal epochs must be strictly increasing",
            ));
        }
        if inner.file.is_some() && inner.seg_len >= self.segment_bytes {
            self.rotate(&mut inner)?;
        }
        if inner.file.is_none() {
            self.open_segment(&mut inner, epoch)?;
        }
        let mut frame = Vec::with_capacity(8 + frame_len as usize);
        frame.extend_from_slice(&frame_len.to_le_bytes());
        let mut body = Vec::with_capacity(frame_len as usize);
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(payload);
        frame.extend_from_slice(&crc32(&body).to_le_bytes());
        frame.extend_from_slice(&body);
        inner
            .file
            .as_mut()
            .expect("segment opened above")
            .write_all(&frame)?;
        inner.seg_len += frame.len() as u64;
        inner.unsynced_bytes += frame.len() as u64;
        inner.appended += 1;
        inner.last_epoch = Some(epoch);
        Ok(frame.len() as u64)
    }

    /// Makes every record appended before this call durable (group
    /// commit): if another caller is already fsyncing, this one parks and
    /// is covered by that fsync when possible.
    pub fn sync(&self) -> io::Result<()> {
        let mut inner = self.inner.lock().unpoison();
        let mut target = inner.appended;
        loop {
            // A concurrent truncate_to may have removed records this call
            // set out to cover; what still exists is all there is to sync.
            target = target.min(inner.appended);
            if inner.durable >= target {
                return Ok(());
            }
            if inner.syncing {
                inner = self.synced.wait(inner).unpoison();
                continue;
            }
            let Some(file) = inner.file.as_ref() else {
                // Everything lives in rotated segments, which were fsynced
                // at rotation time.
                inner.durable = inner.appended;
                inner.unsynced_bytes = 0;
                return Ok(());
            };
            let clone = file.try_clone()?;
            let high = inner.appended;
            let generation = inner.truncations;
            inner.syncing = true;
            drop(inner);
            let result = clone.sync_data();
            inner = self.inner.lock().unpoison();
            inner.syncing = false;
            self.synced.notify_all();
            result?;
            if inner.truncations == generation {
                inner.durable = inner.durable.max(high);
                if inner.durable == inner.appended {
                    inner.unsynced_bytes = 0;
                }
            }
            // On a generation mismatch the fsync raced a truncation — it
            // may even have targeted a now-deleted segment file — so its
            // result is discarded and the loop re-evaluates against the
            // shrunken log. Without this, `durable` could run past
            // `appended` and records appended after the truncation would
            // be counted durable without ever being fsynced.
        }
    }

    /// Bytes appended since the last complete [`sync`](Self::sync) — the
    /// deferred-fsync policy batches on this.
    pub fn unsynced_bytes(&self) -> u64 {
        self.inner.lock().unpoison().unsynced_bytes
    }

    /// Records appended so far.
    pub fn appended(&self) -> u64 {
        self.inner.lock().unpoison().appended
    }

    /// Whether a failed abort has poisoned the writer (see
    /// [`truncate_to`](Self::truncate_to)).
    pub fn poisoned(&self) -> bool {
        self.inner.lock().unpoison().poisoned
    }

    /// `(appended, durable)` under one lock acquisition, for invariant
    /// checks: `durable ≤ appended` must hold at every instant.
    #[cfg(test)]
    fn accounting(&self) -> (u64, u64) {
        let inner = self.inner.lock().unpoison();
        (inner.appended, inner.durable)
    }

    /// Physically removes every record appended after `mark` — the abort
    /// half of a transactional append. If the removal itself fails the
    /// writer is **poisoned** (all further appends refuse) because the
    /// on-disk tail can no longer be trusted to contain only acked
    /// records.
    pub fn truncate_to(&self, mark: &WalMark) -> io::Result<()> {
        let mut inner = self.inner.lock().unpoison();
        if inner.appended == mark.appended {
            return Ok(());
        }
        // Invalidate any fsync in flight outside the lock: its result must
        // not advance the durable watermark past records removed here (see
        // `sync`).
        inner.truncations += 1;
        let result = self.truncate_locked(&mut inner, mark);
        if result.is_err() {
            inner.poisoned = true;
        }
        result
    }

    fn truncate_locked(&self, inner: &mut Inner, mark: &WalMark) -> io::Result<()> {
        if inner.seg_seq != mark.seg_seq {
            // Appends since the mark crossed a rotation: drop the newer
            // segments wholesale, then reopen the marked one.
            for seg in list_segments(&self.dir)? {
                if seg.seq > mark.seg_seq {
                    std::fs::remove_file(&seg.path)?;
                }
            }
            inner.file = None;
            inner.seg_seq = mark.seg_seq;
            inner.seg_len = 0;
            if mark.seg_open {
                let seg = list_segments(&self.dir)?
                    .into_iter()
                    .find(|s| s.seq == mark.seg_seq)
                    .ok_or_else(|| io::Error::other("marked wal segment disappeared"))?;
                let file = OpenOptions::new().write(true).open(&seg.path)?;
                inner.file = Some(file);
            }
        } else if !mark.seg_open {
            // The segment was created entirely by the aborted append(s).
            if inner.file.take().is_some() {
                for seg in list_segments(&self.dir)? {
                    if seg.seq == mark.seg_seq {
                        std::fs::remove_file(&seg.path)?;
                    }
                }
            }
            inner.seg_len = 0;
        }
        if let Some(file) = inner.file.as_mut() {
            file.set_len(mark.seg_len)?;
            file.seek(SeekFrom::Start(mark.seg_len))?;
            inner.seg_len = mark.seg_len;
        }
        inner.appended = mark.appended;
        inner.last_epoch = mark.last_epoch;
        inner.durable = inner.durable.min(inner.appended);
        if inner.durable == inner.appended {
            inner.unsynced_bytes = 0;
        }
        // A conservative overestimate of `unsynced_bytes` remains otherwise
        // (the aborted frame's bytes are still counted); it can only make
        // the deferred-fsync policy sync early, never late.
        Ok(())
    }

    /// Deletes every **closed** segment all of whose records have epoch
    /// `≤ epoch` (safe once a checkpoint at `epoch` is durable). Returns
    /// the number of segments removed.
    pub fn purge_up_to(&self, epoch: u64) -> io::Result<usize> {
        let inner = self.inner.lock().unpoison();
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for pair in segments.windows(2) {
            // Every record in `pair[0]` is older than `pair[1]`'s first
            // epoch, so `first_epoch(next) ≤ epoch + 1` bounds them all
            // at ≤ epoch.
            if pair[0].seq < inner.seg_seq && pair[1].first_epoch <= epoch.saturating_add(1) {
                std::fs::remove_file(&pair[0].path)?;
                removed += 1;
            }
        }
        Ok(removed)
    }

    /// Rotates: fsyncs and closes the open segment (advancing the durable
    /// watermark over its records) and bumps the sequence number. The next
    /// append lazily creates the successor.
    fn rotate(&self, inner: &mut Inner) -> io::Result<()> {
        if let Some(file) = inner.file.as_ref() {
            file.sync_data()?;
            inner.durable = inner.appended;
            inner.unsynced_bytes = 0;
        }
        inner.file = None;
        inner.seg_seq += 1;
        inner.seg_len = 0;
        Ok(())
    }

    fn open_segment(&self, inner: &mut Inner, first_epoch: u64) -> io::Result<()> {
        let path = self.dir.join(segment_file_name(inner.seg_seq, first_epoch));
        let mut file = OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&path)?;
        file.write_all(MAGIC)?;
        file.write_all(&VERSION.to_le_bytes())?;
        // Persist the directory entry so the segment name survives a crash
        // that happens before its first fsync.
        sync_dir(&self.dir)?;
        inner.file = Some(file);
        inner.seg_len = HEADER_LEN;
        Ok(())
    }
}

/// Replays every valid record in `dir`, in order, stopping at the first
/// sign of corruption (see [`WalReplay::truncated`]). Only real directory
/// I/O failures return `Err`; corrupted content is handled by stopping.
pub fn read_dir(dir: &Path) -> io::Result<WalReplay> {
    let mut replay = WalReplay::default();
    if !dir.exists() {
        return Ok(replay);
    }
    let mut last_epoch: Option<u64> = None;
    for seg in list_segments(dir)? {
        replay.segments += 1;
        let Ok(mut file) = File::open(&seg.path) else {
            replay.truncated = true;
            return Ok(replay);
        };
        let (clean, _) = read_segment(&mut file, &mut replay, &mut last_epoch);
        if !clean {
            replay.truncated = true;
            // Later segments are unreachable for replay: records must form
            // a prefix of the commit order.
            return Ok(replay);
        }
    }
    Ok(replay)
}

/// Physically truncates the log in `dir` to its valid record prefix: the
/// segment holding the first invalid byte is truncated at that byte (or
/// deleted outright when even its header is bad), every later segment is
/// removed, and the surviving tail plus the directory are fsynced.
/// Returns `true` when anything was removed.
///
/// This is the mandatory companion of recovery-after-a-torn-tail: a new
/// [`WalWriter`] always starts a fresh segment *after* the tear, while
/// [`read_dir`] stops at the *first* invalid byte — so a tear left in
/// place would hide, and a later recovery would silently lose, every
/// record fsynced after the restart. Nothing acked is ever dropped here:
/// appends are strictly sequential, so no valid record can exist beyond
/// the first invalid byte.
pub fn repair_dir(dir: &Path) -> io::Result<bool> {
    if !dir.exists() {
        return Ok(false);
    }
    let segments = list_segments(dir)?;
    let mut scratch = WalReplay::default();
    let mut last_epoch: Option<u64> = None;
    let mut tear: Option<(usize, u64)> = None;
    for (i, seg) in segments.iter().enumerate() {
        let Ok(mut file) = File::open(&seg.path) else {
            tear = Some((i, 0));
            break;
        };
        let (clean, valid_len) = read_segment(&mut file, &mut scratch, &mut last_epoch);
        if !clean {
            tear = Some((i, valid_len));
            break;
        }
    }
    let Some((torn, valid_len)) = tear else {
        return Ok(false);
    };
    // Segments past the tear are unreachable for replay (records must form
    // a prefix of the commit order), so they are pure garbage.
    for seg in &segments[torn + 1..] {
        std::fs::remove_file(&seg.path)?;
    }
    let seg = &segments[torn];
    if valid_len < HEADER_LEN {
        std::fs::remove_file(&seg.path)?;
    } else {
        let file = OpenOptions::new().write(true).open(&seg.path)?;
        file.set_len(valid_len)?;
        file.sync_data()?;
    }
    sync_dir(dir)?;
    Ok(true)
}

/// Reads one segment into `replay`. Returns `(clean, valid_len)`:
/// `clean == false` means replay must stop here, and `valid_len` is the
/// byte length of the segment's valid prefix (`0` when even the header is
/// bad — the whole file is garbage). [`repair_dir`] truncates at exactly
/// this boundary.
fn read_segment(
    file: &mut File,
    replay: &mut WalReplay,
    last_epoch: &mut Option<u64>,
) -> (bool, u64) {
    let mut header = [0u8; HEADER_LEN as usize];
    if read_exact_or_eof(file, &mut header) != ReadOutcome::Full {
        return (false, 0);
    }
    if &header[..4] != MAGIC
        || u32::from_le_bytes([header[4], header[5], header[6], header[7]]) != VERSION
    {
        return (false, 0);
    }
    let mut valid_len = HEADER_LEN;
    loop {
        let mut prefix = [0u8; FRAME_PREFIX as usize];
        match read_exact_or_eof(file, &mut prefix) {
            ReadOutcome::Eof => return (true, valid_len), // clean segment end
            ReadOutcome::Partial => return (false, valid_len),
            ReadOutcome::Full => {}
        }
        let len = u32::from_le_bytes([prefix[0], prefix[1], prefix[2], prefix[3]]);
        let crc = u32::from_le_bytes([prefix[4], prefix[5], prefix[6], prefix[7]]);
        if !(8..=MAX_FRAME_LEN).contains(&len) {
            return (false, valid_len);
        }
        let mut body = vec![0u8; len as usize];
        if read_exact_or_eof(file, &mut body) != ReadOutcome::Full {
            return (false, valid_len);
        }
        if crc32(&body) != crc {
            return (false, valid_len);
        }
        let epoch = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        if last_epoch.is_some_and(|last| epoch <= last) {
            return (false, valid_len);
        }
        *last_epoch = Some(epoch);
        replay.records.push(WalRecord {
            epoch,
            payload: body.split_off(8),
        });
        valid_len += FRAME_PREFIX + u64::from(len);
    }
}

#[derive(Debug, PartialEq, Eq)]
enum ReadOutcome {
    Full,
    Partial,
    Eof,
}

/// `read_exact` that distinguishes a clean EOF (no bytes) from a torn one.
fn read_exact_or_eof(file: &mut File, buf: &mut [u8]) -> ReadOutcome {
    let mut filled = 0;
    while filled < buf.len() {
        match file.read(&mut buf[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    ReadOutcome::Eof
                } else {
                    ReadOutcome::Partial
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => return ReadOutcome::Partial,
        }
    }
    ReadOutcome::Full
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esd_wal_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn roundtrip_and_order() {
        let dir = tmp("roundtrip");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for epoch in 1..=20u64 {
            wal.append(epoch, format!("payload-{epoch}").as_bytes())
                .unwrap();
        }
        wal.sync().unwrap();
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), 20);
        for (i, r) in replay.records.iter().enumerate() {
            assert_eq!(r.epoch, i as u64 + 1);
            assert_eq!(r.payload, format!("payload-{}", i + 1).into_bytes());
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn epochs_must_increase() {
        let dir = tmp("epochs");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        wal.append(5, b"a").unwrap();
        assert!(wal.append(5, b"b").is_err());
        assert!(wal.append(4, b"c").is_err());
        wal.append(6, b"d").unwrap();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_and_purge() {
        let dir = tmp("rotate");
        let wal = WalWriter::open(&dir, WalOptions { segment_bytes: 64 }).unwrap();
        for epoch in 1..=40u64 {
            wal.append(epoch, &[0u8; 16]).unwrap();
        }
        wal.sync().unwrap();
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 1, "small segment size must rotate");
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 40);
        assert!(!replay.truncated);
        // Purge everything a checkpoint at epoch 40 covers: all closed
        // segments go; the open segment stays.
        let removed = wal.purge_up_to(40).unwrap();
        assert_eq!(removed, segments.len() - 1);
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.records.is_empty(), "open segment survives purge");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_to_removes_speculative_records() {
        let dir = tmp("truncate");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        wal.append(1, b"keep").unwrap();
        wal.sync().unwrap();
        let mark = wal.mark();
        wal.append(2, b"abort-me").unwrap();
        wal.truncate_to(&mark).unwrap();
        assert!(!wal.poisoned());
        // The aborted epoch can be re-used: the record is physically gone.
        wal.append(2, b"retried").unwrap();
        wal.sync().unwrap();
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(
            replay
                .records
                .iter()
                .map(|r| r.payload.clone())
                .collect::<Vec<_>>(),
            vec![b"keep".to_vec(), b"retried".to_vec()]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_across_rotation_drops_new_segment() {
        let dir = tmp("truncate_rot");
        let wal = WalWriter::open(&dir, WalOptions { segment_bytes: 32 }).unwrap();
        wal.append(1, &[7u8; 40]).unwrap();
        wal.sync().unwrap();
        let mark = wal.mark();
        // Oversized first record forces the next append into a new segment.
        wal.append(2, b"spill").unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        wal.truncate_to(&mark).unwrap();
        assert_eq!(list_segments(&dir).unwrap().len(), 1);
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 1);
        assert!(!replay.truncated);
        wal.append(2, b"after").unwrap();
        wal.sync().unwrap();
        assert_eq!(read_dir(&dir).unwrap().records.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_fresh_unopened_mark_is_noop() {
        let dir = tmp("truncate_fresh");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        let mark = wal.mark();
        wal.append(1, b"x").unwrap();
        wal.truncate_to(&mark).unwrap();
        assert_eq!(read_dir(&dir).unwrap().records.len(), 0);
        wal.append(1, b"y").unwrap();
        wal.sync().unwrap();
        assert_eq!(read_dir(&dir).unwrap().records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_stops_replay_cleanly() {
        let dir = tmp("torn");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for epoch in 1..=5u64 {
            wal.append(epoch, &[epoch as u8; 24]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let full = std::fs::metadata(&seg.path).unwrap().len();
        // Chop mid-frame: replay keeps the intact prefix, flags truncation.
        let file = OpenOptions::new().write(true).open(&seg.path).unwrap();
        file.set_len(full - 10).unwrap();
        let replay = read_dir(&dir).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bit_flip_stops_replay_at_last_valid() {
        let dir = tmp("flip");
        let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
        for epoch in 1..=3u64 {
            wal.append(epoch, &[0xAB; 16]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&seg.path).unwrap();
        let mid = HEADER_LEN as usize + 40; // inside the second frame
        bytes[mid] ^= 0x01;
        std::fs::write(&seg.path, &bytes).unwrap();
        let replay = read_dir(&dir).unwrap();
        assert!(replay.truncated);
        assert_eq!(replay.records.len(), 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_drops_torn_tail_so_later_records_stay_reachable() {
        let dir = tmp("repair");
        {
            let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
            for epoch in 1..=5u64 {
                wal.append(epoch, &[epoch as u8; 24]).unwrap();
            }
            wal.sync().unwrap();
        }
        // Crash mid-append: the last record is torn.
        let seg = list_segments(&dir).unwrap().pop().unwrap();
        let full = std::fs::metadata(&seg.path).unwrap().len();
        let file = OpenOptions::new().write(true).open(&seg.path).unwrap();
        file.set_len(full - 10).unwrap();
        drop(file);
        assert!(repair_dir(&dir).unwrap());
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated, "the tear is physically gone");
        assert_eq!(replay.records.len(), 4);
        // The second life appends past the repaired tear; without the
        // repair its records would sit behind the tear and be lost by the
        // next replay.
        {
            let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
            wal.append(5, b"second-life").unwrap();
            wal.sync().unwrap();
        }
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), 5);
        assert_eq!(replay.records[4].payload, b"second-life");
        // Idempotent: a clean log repairs to itself.
        assert!(!repair_dir(&dir).unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn repair_deletes_headerless_garbage_and_unreachable_segments() {
        let dir = tmp("repair_garbage");
        let wal = WalWriter::open(&dir, WalOptions { segment_bytes: 64 }).unwrap();
        for epoch in 1..=10u64 {
            wal.append(epoch, &[0x5A; 16]).unwrap();
        }
        wal.sync().unwrap();
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() >= 3, "need a mid-log segment to corrupt");
        // Smash the second segment's header: its whole file becomes
        // garbage, and every segment after it is unreachable for replay.
        std::fs::write(&segments[1].path, b"no").unwrap();
        let before = read_dir(&dir).unwrap();
        assert!(before.truncated);
        assert!(repair_dir(&dir).unwrap());
        let survivors = list_segments(&dir).unwrap();
        assert_eq!(survivors.len(), 1, "garbage + unreachable segments gone");
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records, before.records);
        // Missing directories repair to nothing.
        std::fs::remove_dir_all(&dir).unwrap();
        assert!(!repair_dir(&dir).unwrap());
    }

    #[test]
    fn concurrent_sync_never_outruns_a_truncated_log() {
        // Regression: sync() used to set `durable = max(durable, high)`
        // with a record count captured before dropping the lock for the
        // fsync. A truncate_to racing that fsync could shrink `appended`
        // below `high`, after which records appended post-truncation were
        // counted durable without ever being fsynced.
        let dir = tmp("sync_vs_truncate");
        let wal = crate::sync::Arc::new(
            WalWriter::open(&dir, WalOptions { segment_bytes: 256 }).unwrap(),
        );
        let syncer = {
            let wal = crate::sync::Arc::clone(&wal);
            std::thread::spawn(move || {
                for _ in 0..2_000 {
                    wal.sync().unwrap();
                    let (appended, durable) = wal.accounting();
                    assert!(
                        durable <= appended,
                        "durable watermark outran the log: {durable} > {appended}"
                    );
                }
            })
        };
        let mut epoch = 0u64;
        for _ in 0..300 {
            let mark = wal.mark();
            wal.append(epoch + 1, &[0xAA; 48]).unwrap();
            wal.append(epoch + 2, &[0xBB; 48]).unwrap();
            wal.truncate_to(&mark).unwrap();
            epoch += 1;
            wal.append(epoch, &[0xCC; 16]).unwrap();
        }
        wal.sync().unwrap();
        syncer.join().unwrap();
        assert!(!wal.poisoned());
        let (appended, durable) = wal.accounting();
        assert_eq!(appended, 300);
        assert_eq!(durable, 300, "the final sync covers every survivor");
        let replay = read_dir(&dir).unwrap();
        assert!(!replay.truncated);
        assert_eq!(replay.records.len(), 300);
        assert!(replay.records.iter().all(|r| r.payload == [0xCC; 16]));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_starts_a_fresh_segment() {
        let dir = tmp("reopen");
        {
            let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
            wal.append(1, b"first-life").unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
            wal.append(2, b"second-life").unwrap();
            wal.sync().unwrap();
        }
        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert!(!replay.truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_covers_concurrent_appends() {
        let dir = tmp("group");
        let wal = crate::sync::Arc::new(WalWriter::open(&dir, WalOptions::default()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let wal = crate::sync::Arc::clone(&wal);
            handles.push(std::thread::spawn(move || {
                // Appends race on epochs, so retry on the ordering error;
                // every thread then syncs — group commit means most calls
                // return without issuing their own fsync.
                for i in 0..25u64 {
                    loop {
                        let epoch = wal.appended() + 1;
                        match wal.append(epoch, &[t as u8, i as u8]) {
                            Ok(_) => break,
                            Err(e) if e.kind() == io::ErrorKind::InvalidInput => {}
                            Err(e) => panic!("append failed: {e}"),
                        }
                    }
                    wal.sync().unwrap();
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 100);
        assert!(!replay.truncated);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_and_missing_dirs_replay_empty() {
        let dir = tmp("empty");
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.records.len(), 0);
        assert!(!replay.truncated);
        std::fs::create_dir_all(&dir).unwrap();
        let replay = read_dir(&dir).unwrap();
        assert_eq!(replay.segments, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
