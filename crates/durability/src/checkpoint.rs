//! The checkpoint store: atomic, fsynced, checksummed full/delta
//! checkpoint files with crash-safe chain discovery.
//!
//! ## On-disk format
//!
//! Each checkpoint is one file in the log directory:
//!
//! * `ckpt-<epoch:016x>.full` — a complete state payload at `epoch`;
//! * `ckpt-<base:016x>-<epoch:016x>.delta` — a delta payload that, applied
//!   to the **full** checkpoint at `base`, yields the state at `epoch`.
//!
//! Every delta chains directly off a full checkpoint (never off another
//! delta), so recovery needs at most two files and one bad delta costs one
//! checkpoint interval of extra WAL replay, not the whole chain. The file
//! envelope is:
//!
//! ```text
//! magic "ESDK" | u32 version | u8 kind | u64 base_epoch | u64 epoch
//! | u64 payload_len | payload | u32 crc32
//! ```
//!
//! with the CRC covering everything after the magic. Payloads are opaque
//! bytes — the serving layer encodes them with `esd-core`'s ESDX delta
//! codec, keeping this crate index-family-agnostic.
//!
//! ## Write protocol
//!
//! [`CheckpointStore::write_full`]/[`write_delta`](CheckpointStore::write_delta)
//! write to a temporary sibling, fsync **the file**, rename into place,
//! then fsync **the directory** — the full tmp+rename+fsync dance, so a
//! crash at any byte leaves either the old chain or the complete new file,
//! never a torn checkpoint with a valid name.

use crate::crc32::crc32;
use std::fs::File;
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Checkpoint file magic.
pub const MAGIC: &[u8; 4] = b"ESDK";
/// Checkpoint envelope version.
pub const VERSION: u32 = 1;
/// Upper bound on a checkpoint payload (1 GiB) — larger length fields are
/// treated as corruption.
const MAX_PAYLOAD: u64 = 1 << 30;

/// Whether a checkpoint file carries a complete state or a delta.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckpointKind {
    /// Complete state at `epoch`.
    Full,
    /// Changes from the full checkpoint at `base_epoch` up to `epoch`.
    Delta,
}

/// The newest valid checkpoint chain found by
/// [`CheckpointStore::load_chain`].
#[derive(Debug)]
pub struct LoadedCheckpoint {
    /// Epoch of the full checkpoint the chain starts from.
    pub full_epoch: u64,
    /// Payload of that full checkpoint.
    pub full_payload: Vec<u8>,
    /// The newest valid delta based on that full checkpoint, if any:
    /// `(epoch, payload)`.
    pub delta: Option<(u64, Vec<u8>)>,
    /// Checkpoint files that failed validation and were skipped during
    /// discovery (corruption tolerated, surfaced for observability).
    pub skipped_invalid: usize,
}

impl LoadedCheckpoint {
    /// The epoch the chain restores to (delta epoch if present, else the
    /// full checkpoint's).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.delta.as_ref().map_or(self.full_epoch, |(e, _)| *e)
    }
}

/// A directory of checkpoint files. Cheap to construct; all state is on
/// disk.
#[derive(Debug)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    /// Opens (creating if missing) the checkpoint directory.
    pub fn open(dir: &Path) -> io::Result<Self> {
        std::fs::create_dir_all(dir)?;
        Ok(Self {
            dir: dir.to_path_buf(),
        })
    }

    /// The store directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Durably writes a full checkpoint at `epoch`.
    pub fn write_full(&self, epoch: u64, payload: &[u8]) -> io::Result<PathBuf> {
        self.write(CheckpointKind::Full, epoch, epoch, payload)
    }

    /// Durably writes a delta checkpoint at `epoch` based on the full
    /// checkpoint at `base_epoch`.
    pub fn write_delta(&self, base_epoch: u64, epoch: u64, payload: &[u8]) -> io::Result<PathBuf> {
        self.write(CheckpointKind::Delta, base_epoch, epoch, payload)
    }

    fn write(
        &self,
        kind: CheckpointKind,
        base_epoch: u64,
        epoch: u64,
        payload: &[u8],
    ) -> io::Result<PathBuf> {
        let name = match kind {
            CheckpointKind::Full => format!("ckpt-{epoch:016x}.full"),
            CheckpointKind::Delta => format!("ckpt-{base_epoch:016x}-{epoch:016x}.delta"),
        };
        let mut body = Vec::with_capacity(25 + payload.len());
        body.push(match kind {
            CheckpointKind::Full => 0u8,
            CheckpointKind::Delta => 1u8,
        });
        body.extend_from_slice(&base_epoch.to_le_bytes());
        body.extend_from_slice(&epoch.to_le_bytes());
        body.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        let mut versioned = Vec::with_capacity(4 + body.len() + payload.len());
        versioned.extend_from_slice(&VERSION.to_le_bytes());
        versioned.extend_from_slice(&body);
        versioned.extend_from_slice(payload);
        let crc = crc32(&versioned);

        let path = self.dir.join(&name);
        let tmp = self.dir.join(format!("{name}.tmp"));
        {
            let mut file = File::create(&tmp)?;
            file.write_all(MAGIC)?;
            file.write_all(&versioned)?;
            file.write_all(&crc.to_le_bytes())?;
            // fsync the tmp file BEFORE the rename: rename alone orders the
            // name change, not the data blocks.
            file.sync_data()?;
        }
        std::fs::rename(&tmp, &path)?;
        // fsync the directory AFTER the rename so the new name itself is
        // durable.
        crate::wal::sync_dir(&self.dir)?;
        Ok(path)
    }

    /// Loads the newest valid checkpoint chain: the highest-epoch full
    /// checkpoint that validates, plus the newest valid delta based on it.
    /// Corrupt files are skipped (counted in
    /// [`LoadedCheckpoint::skipped_invalid`]); `None` when no valid full
    /// checkpoint exists.
    pub fn load_chain(&self) -> io::Result<Option<LoadedCheckpoint>> {
        let mut fulls: Vec<(u64, PathBuf)> = Vec::new();
        let mut deltas: Vec<(u64, u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            if let Some(epoch) = parse_full_name(name) {
                fulls.push((epoch, entry.path()));
            } else if let Some((base, epoch)) = parse_delta_name(name) {
                deltas.push((base, epoch, entry.path()));
            }
        }
        fulls.sort_by_key(|(epoch, _)| std::cmp::Reverse(*epoch));
        deltas.sort_by_key(|(_, epoch, _)| std::cmp::Reverse(*epoch));

        let mut skipped = 0;
        for (full_epoch, path) in fulls {
            let Some(full_payload) =
                read_valid(&path, CheckpointKind::Full, full_epoch, full_epoch)
            else {
                skipped += 1;
                continue;
            };
            let mut delta = None;
            for (base, epoch, dpath) in &deltas {
                if *base != full_epoch || *epoch <= full_epoch {
                    continue;
                }
                match read_valid(dpath, CheckpointKind::Delta, *base, *epoch) {
                    Some(payload) => {
                        delta = Some((*epoch, payload));
                        break;
                    }
                    None => skipped += 1,
                }
            }
            return Ok(Some(LoadedCheckpoint {
                full_epoch,
                full_payload,
                delta,
                skipped_invalid: skipped,
            }));
        }
        Ok(None)
    }

    /// Deletes checkpoint files whose end epoch is below `epoch`, plus any
    /// stale `.tmp` leftovers. Returns the number of files removed. Call
    /// with the *previous* full checkpoint's epoch to always retain one
    /// complete fallback generation.
    pub fn purge_older_than(&self, epoch: u64) -> io::Result<usize> {
        let mut removed = 0;
        for entry in std::fs::read_dir(&self.dir)? {
            let entry = entry?;
            let name = entry.file_name();
            let Some(name) = name.to_str() else { continue };
            let stale = if name.starts_with("ckpt-") && name.ends_with(".tmp") {
                true
            } else if let Some(e) = parse_full_name(name) {
                e < epoch
            } else if let Some((_, e)) = parse_delta_name(name) {
                e < epoch
            } else {
                false
            };
            if stale {
                std::fs::remove_file(entry.path())?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

fn parse_full_name(name: &str) -> Option<u64> {
    let hex = name.strip_prefix("ckpt-")?.strip_suffix(".full")?;
    if hex.len() != 16 {
        return None;
    }
    u64::from_str_radix(hex, 16).ok()
}

fn parse_delta_name(name: &str) -> Option<(u64, u64)> {
    let rest = name.strip_prefix("ckpt-")?.strip_suffix(".delta")?;
    let (base, epoch) = rest.split_once('-')?;
    if base.len() != 16 || epoch.len() != 16 {
        return None;
    }
    Some((
        u64::from_str_radix(base, 16).ok()?,
        u64::from_str_radix(epoch, 16).ok()?,
    ))
}

/// Reads and fully validates one checkpoint file: magic, version, kind,
/// epochs matching the file name, payload length, and CRC. `None` on any
/// mismatch — never panics, never returns partially validated bytes.
fn read_valid(path: &Path, kind: CheckpointKind, base_epoch: u64, epoch: u64) -> Option<Vec<u8>> {
    let bytes = std::fs::read(path).ok()?;
    // magic(4) + version(4) + kind(1) + base(8) + epoch(8) + len(8) + crc(4)
    if bytes.len() < 37 || &bytes[..4] != MAGIC {
        return None;
    }
    let crc_stored = u32::from_le_bytes(bytes[bytes.len() - 4..].try_into().ok()?);
    let versioned = &bytes[4..bytes.len() - 4];
    if crc32(versioned) != crc_stored {
        return None;
    }
    if u32::from_le_bytes(versioned[..4].try_into().ok()?) != VERSION {
        return None;
    }
    let body = &versioned[4..];
    let file_kind = match body[0] {
        0 => CheckpointKind::Full,
        1 => CheckpointKind::Delta,
        _ => return None,
    };
    let file_base = u64::from_le_bytes(body[1..9].try_into().ok()?);
    let file_epoch = u64::from_le_bytes(body[9..17].try_into().ok()?);
    let payload_len = u64::from_le_bytes(body[17..25].try_into().ok()?);
    if file_kind != kind || file_base != base_epoch || file_epoch != epoch {
        return None;
    }
    if payload_len > MAX_PAYLOAD || payload_len != (body.len() - 25) as u64 {
        return None;
    }
    Some(body[25..].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("esd_ckpt_{}_{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn full_plus_delta_chain() {
        let dir = tmp("chain");
        let store = CheckpointStore::open(&dir).unwrap();
        assert!(store.load_chain().unwrap().is_none());
        store.write_full(10, b"state@10").unwrap();
        store.write_delta(10, 14, b"delta@14").unwrap();
        store.write_delta(10, 18, b"delta@18").unwrap();
        let chain = store.load_chain().unwrap().unwrap();
        assert_eq!(chain.full_epoch, 10);
        assert_eq!(chain.full_payload, b"state@10");
        assert_eq!(chain.delta, Some((18, b"delta@18".to_vec())));
        assert_eq!(chain.epoch(), 18);
        assert_eq!(chain.skipped_invalid, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_full_wins_and_foreign_deltas_ignored() {
        let dir = tmp("newest");
        let store = CheckpointStore::open(&dir).unwrap();
        store.write_full(10, b"old").unwrap();
        store.write_delta(10, 12, b"old-delta").unwrap();
        store.write_full(20, b"new").unwrap();
        let chain = store.load_chain().unwrap().unwrap();
        assert_eq!(chain.full_epoch, 20);
        assert_eq!(
            chain.delta, None,
            "deltas based on the old full are not chained"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_delta_falls_back_to_full() {
        let dir = tmp("corrupt_delta");
        let store = CheckpointStore::open(&dir).unwrap();
        store.write_full(5, b"base").unwrap();
        let dpath = store.write_delta(5, 9, b"will-corrupt").unwrap();
        let mut bytes = std::fs::read(&dpath).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x80;
        std::fs::write(&dpath, &bytes).unwrap();
        let chain = store.load_chain().unwrap().unwrap();
        assert_eq!(chain.full_epoch, 5);
        assert_eq!(chain.delta, None);
        assert_eq!(chain.skipped_invalid, 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_full_falls_back_to_older_full() {
        let dir = tmp("corrupt_full");
        let store = CheckpointStore::open(&dir).unwrap();
        store.write_full(5, b"older").unwrap();
        store.write_delta(5, 7, b"older-delta").unwrap();
        let fpath = store.write_full(9, b"newer").unwrap();
        let mut bytes = std::fs::read(&fpath).unwrap();
        let last = bytes.len() - 10;
        bytes[last] ^= 0xFF;
        std::fs::write(&fpath, &bytes).unwrap();
        let chain = store.load_chain().unwrap().unwrap();
        assert_eq!(chain.full_epoch, 5);
        assert_eq!(chain.delta, Some((7, b"older-delta".to_vec())));
        assert!(chain.skipped_invalid >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncation_every_length_never_panics_or_validates() {
        let dir = tmp("truncate_all");
        let store = CheckpointStore::open(&dir).unwrap();
        let path = store
            .write_full(3, b"some checkpoint payload bytes")
            .unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for len in 0..bytes.len() {
            std::fs::write(&path, &bytes[..len]).unwrap();
            assert!(
                store.load_chain().unwrap().is_none(),
                "truncated to {len} bytes must not validate"
            );
        }
        std::fs::write(&path, &bytes).unwrap();
        assert!(store.load_chain().unwrap().is_some());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn purge_keeps_the_retained_generation() {
        let dir = tmp("purge");
        let store = CheckpointStore::open(&dir).unwrap();
        store.write_full(5, b"g1").unwrap();
        store.write_delta(5, 7, b"g1d").unwrap();
        store.write_full(10, b"g2").unwrap();
        store.write_delta(10, 12, b"g2d").unwrap();
        let removed = store.purge_older_than(10).unwrap();
        assert_eq!(removed, 2);
        let chain = store.load_chain().unwrap().unwrap();
        assert_eq!(chain.full_epoch, 10);
        assert_eq!(chain.delta, Some((12, b"g2d".to_vec())));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn kind_confusion_is_rejected() {
        // A delta file renamed to look like a full checkpoint must fail
        // validation (kind and epochs are inside the checksummed body).
        let dir = tmp("confusion");
        let store = CheckpointStore::open(&dir).unwrap();
        let dpath = store.write_delta(2, 4, b"delta-bytes").unwrap();
        let fake = dir.join(format!("ckpt-{:016x}.full", 4));
        std::fs::rename(&dpath, &fake).unwrap();
        assert!(store.load_chain().unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
