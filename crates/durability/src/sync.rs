//! The loom-checkable synchronization facade for the durability crate.
//!
//! Mirrors `esd-serve`'s facade: every lock and condvar used by the
//! group-commit machinery is imported from here, never from `std`
//! directly — the `sync-facade` pass of `cargo xtask analyze` enforces
//! it for `crates/durability/src/` exactly as it does for the serve and
//! telemetry crates. In ordinary builds the facade is a zero-cost
//! re-export of `std::sync`; under `RUSTFLAGS="--cfg loom"` it swaps to
//! the model-checker types (file I/O itself is not modelled — only the
//! commit-index bookkeeping around it is).
//!
//! Lock poisoning carries no protocol meaning here: the WAL keeps its own
//! explicit `poisoned` flag for states where the on-disk tail may not
//! match the in-memory bookkeeping, so `PoisonError` is recovered with
//! [`Unpoison::unpoison`] (the `lock-unwrap` analyze pass forbids
//! `unwrap`/`expect` on lock results).

#[cfg(loom)]
pub(crate) use loom::sync::{Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::sync::{Condvar, Mutex};

// Only the test suite shares the writer across threads; the library
// itself hands out `&WalWriter` and leaves ownership to the caller.
#[cfg(all(test, loom))]
pub(crate) use loom::sync::Arc;
#[cfg(all(test, not(loom)))]
pub(crate) use std::sync::Arc;

/// Recovery from lock poisoning: the WAL's explicit `poisoned` flag is the
/// authoritative "state may be torn" signal, so a `PoisonError` on the
/// facade locks is recovered rather than propagated.
pub(crate) trait Unpoison {
    /// The guard (or guard tuple) inside the `LockResult`.
    type Inner;

    /// Unwraps the lock result, recovering the guard from a poisoned
    /// lock instead of panicking.
    fn unpoison(self) -> Self::Inner;
}

impl<G> Unpoison for Result<G, std::sync::PoisonError<G>> {
    type Inner = G;

    fn unpoison(self) -> G {
        self.unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}
