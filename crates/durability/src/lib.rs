//! `esd-durability` — the durability subsystem for the ESD serving stack.
//!
//! A killed serving process used to lose everything since the last manual
//! ESDX persist, and the ESD index is expensive to rebuild from scratch
//! (4-clique enumeration dominates). This crate provides the classic
//! checkpoint + log shape instead:
//!
//! * [`wal`] — an append-only, **epoch-stamped** write-ahead log of opaque
//!   payloads: CRC32-checked length-prefixed frames, group-commit fsync
//!   batching, segment rotation, transactional appends
//!   ([`wal::WalWriter::mark`]/[`wal::WalWriter::truncate_to`]), and a
//!   corruption-tolerant reader that stops at the last valid record.
//! * [`checkpoint`] — an atomic (tmp + file-fsync + rename + dir-fsync)
//!   store of **full** and **delta** checkpoint files with crash-safe
//!   newest-valid-chain discovery.
//! * [`crc32`] — the hand-rolled CRC-32 both formats share (the build
//!   environment is offline; no external crates).
//!
//! The crate is deliberately **index-family-agnostic**: it speaks epochs
//! and byte payloads only. `esd-serve` supplies the payload codecs
//! (serialized update batches for WAL records, `esd-core`'s ESDX delta
//! codec for checkpoints) and drives recovery by replaying WAL records
//! with epoch greater than the loaded checkpoint's through its normal
//! apply pipeline. The same machinery can therefore back the truss-based
//! or parameter-free diversity variants without modification.
//!
//! ```
//! use esd_durability::wal::{read_dir, WalOptions, WalWriter};
//!
//! let dir = std::env::temp_dir().join(format!("esd_durability_doc_{}", std::process::id()));
//! let wal = WalWriter::open(&dir, WalOptions::default()).unwrap();
//! wal.append(1, b"batch-one").unwrap();
//! wal.append(2, b"batch-two").unwrap();
//! wal.sync().unwrap(); // group commit: one fsync covers both
//!
//! let replay = read_dir(&dir).unwrap();
//! assert_eq!(replay.records.len(), 2);
//! assert!(!replay.truncated);
//! std::fs::remove_dir_all(&dir).unwrap();
//! ```

#![warn(missing_docs)]

pub mod checkpoint;
pub mod crc32;
pub(crate) mod sync;
pub mod wal;

pub use checkpoint::{CheckpointKind, CheckpointStore, LoadedCheckpoint};
pub use wal::{
    read_dir, repair_dir, sync_dir, WalMark, WalOptions, WalRecord, WalReplay, WalWriter,
};
