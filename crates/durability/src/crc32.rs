//! CRC-32 (IEEE 802.3, reflected polynomial `0xEDB88320`) — the per-record
//! WAL checksum.
//!
//! Hand-rolled for the same reason `esd-core`'s persist module hand-rolls
//! FNV-1a: the build environment is offline and the algorithm is ~20
//! lines. CRC32 (rather than FNV) is used on the durability path because
//! its burst-error detection matches the failure modes of torn/bit-rotted
//! disk writes, and because it is the conventional choice for WAL frames
//! (readers from other tooling can verify records with any stock CRC32).

/// The 256-entry lookup table for the reflected IEEE polynomial, built at
/// compile time.
const TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// A streaming CRC-32 state; feed bytes with [`Crc32::update`], read the
/// digest with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// A fresh state (all-ones preset, per the standard).
    #[must_use]
    pub const fn new() -> Self {
        Self(0xFFFF_FFFF)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.0;
        for &b in bytes {
            crc = (crc >> 8) ^ TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.0 = crc;
    }

    /// The final (post-inversion) digest.
    #[must_use]
    pub const fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC-32 of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"epoch-stamped frames, checked in pieces";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_digest() {
        let base = b"wal record payload".to_vec();
        let reference = crc32(&base);
        for i in 0..base.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut flipped = base.clone();
                flipped[i] ^= mask;
                assert_ne!(crc32(&flipped), reference, "byte {i} mask {mask:#x}");
            }
        }
    }
}
