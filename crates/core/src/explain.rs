//! Human-readable explanations of an edge's structural diversity.
//!
//! The case studies (Figs 12–13) are all about *why* an edge ranks highly:
//! which shared neighbours form which contexts. [`explain_edge`] packages
//! that evidence — the ego-network's components, the score at every
//! meaningful τ, and the §III upper bounds — for display or for downstream
//! tooling (the CLI's `esd explain`).

use esd_graph::{traversal, Edge, Graph, VertexId};

/// Everything there is to say about one edge's structural diversity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeExplanation {
    /// The edge under scrutiny.
    pub edge: Edge,
    /// Sorted common neighbourhood `N(u) ∩ N(v)`.
    pub common_neighbors: Vec<VertexId>,
    /// Ego-network components, largest first (each sorted).
    pub components: Vec<Vec<VertexId>>,
    /// Score at every τ from 1 to the largest component size (inclusive);
    /// index `i` holds the score at `τ = i + 1`.
    pub scores_by_tau: Vec<u32>,
    /// The min-degree upper bound `min(d(u), d(v))` (§III).
    pub min_degree_bound: u32,
}

impl EdgeExplanation {
    /// The score at threshold `tau` (0 beyond the largest component).
    pub fn score(&self, tau: u32) -> u32 {
        if tau == 0 {
            return self.scores_by_tau.first().copied().unwrap_or(0);
        }
        self.scores_by_tau
            .get(tau as usize - 1)
            .copied()
            .unwrap_or(0)
    }

    /// The common-neighbour upper bound `⌊|N(uv)|/τ⌋` at `tau`.
    pub fn common_neighbor_bound(&self, tau: u32) -> u32 {
        assert!(tau >= 1);
        self.common_neighbors.len() as u32 / tau
    }
}

/// Explains the edge `(u, v)`; `None` if it is not an edge of `g`.
pub fn explain_edge(g: &Graph, u: VertexId, v: VertexId) -> Option<EdgeExplanation> {
    if !g.has_edge(u, v) {
        return None;
    }
    let common_neighbors = g.common_neighbors(u, v);
    let components = traversal::induced_components(g, &common_neighbors);
    let cmax = components.first().map(|c| c.len() as u32).unwrap_or(0);
    let mut sizes: Vec<u32> = components.iter().map(|c| c.len() as u32).collect();
    sizes.sort_unstable();
    let scores_by_tau = (1..=cmax)
        .map(|tau| crate::score::score_from_sizes(&sizes, tau))
        .collect();
    Some(EdgeExplanation {
        edge: Edge::new(u, v),
        common_neighbors,
        components,
        scores_by_tau,
        min_degree_bound: g.degree(u).min(g.degree(v)) as u32,
    })
}

impl std::fmt::Display for EdgeExplanation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "edge {}: {} common neighbours, {} context(s)",
            self.edge,
            self.common_neighbors.len(),
            self.components.len()
        )?;
        for (i, comp) in self.components.iter().enumerate() {
            writeln!(f, "  context {}: {:?}", i + 1, comp)?;
        }
        for (i, &score) in self.scores_by_tau.iter().enumerate() {
            writeln!(
                f,
                "  τ = {}: score {} (CN bound {}, min-degree bound {})",
                i + 1,
                score,
                self.common_neighbor_bound(i as u32 + 1),
                self.min_degree_bound
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;

    #[test]
    fn explains_fg_like_example_2() {
        let (g, n) = fig1();
        let ex = explain_edge(&g, n["f"], n["g"]).unwrap();
        assert_eq!(ex.common_neighbors.len(), 4);
        assert_eq!(ex.components.len(), 2);
        assert_eq!(ex.scores_by_tau, vec![2, 2], "score 2 at τ=1 and τ=2");
        assert_eq!(ex.score(1), 2);
        assert_eq!(ex.score(3), 0, "beyond the largest component");
        assert_eq!(ex.min_degree_bound, 5);
        assert_eq!(ex.common_neighbor_bound(2), 2);
    }

    #[test]
    fn scores_match_direct_computation() {
        let (g, _) = fig1();
        for e in g.edges() {
            let ex = explain_edge(&g, e.u, e.v).unwrap();
            for tau in 1..=7 {
                assert_eq!(
                    ex.score(tau),
                    crate::score::edge_score(&g, e.u, e.v, tau),
                    "{e} τ={tau}"
                );
            }
        }
    }

    #[test]
    fn non_edge_is_none() {
        let (g, n) = fig1();
        assert!(explain_edge(&g, n["a"], n["w"]).is_none());
        assert!(explain_edge(&g, n["a"], n["a"]).is_none());
    }

    #[test]
    fn display_is_complete() {
        let (g, n) = fig1();
        let text = explain_edge(&g, n["j"], n["k"]).unwrap().to_string();
        assert!(text.contains("6 common neighbours"));
        assert!(text.contains("2 context(s)"));
        assert!(text.contains("τ = 4: score 1"));
    }

    #[test]
    fn empty_ego_network() {
        let g = esd_graph::generators::star(5);
        let ex = explain_edge(&g, 0, 1).unwrap();
        assert!(ex.components.is_empty());
        assert!(ex.scores_by_tau.is_empty());
        assert_eq!(ex.score(1), 0);
    }
}
