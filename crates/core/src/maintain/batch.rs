//! The batch-mutation vocabulary shared by every write path: per-update
//! [`UpdateDisposition`]s, the [`BatchStats`] roll-up returned by
//! [`MaintainedIndex::apply_batch`](super::MaintainedIndex::apply_batch) and
//! the pipeline, and the [`MutationBatch`] builder that `esd-serve` and the
//! CLI hand to
//! [`ServiceHandle::submit`](../../../esd_serve/struct.ServiceHandle.html).
//!
//! `MutationBatch` is where intra-batch redundancy dies: an insert followed
//! by a remove of the same edge (or vice versa) cancels to nothing, and a
//! duplicate of a still-pending operation is dropped. Cancellation is sound
//! because the final graph — and therefore, by the ego-network invariant,
//! the final index state — is unchanged by eliding a pair whose net effect
//! on the edge set is zero. Self-loops are deliberately *not* deduplicated:
//! they are structurally invalid and must flow through so the apply path
//! can report them as `rejected` rather than silently vanish.

use super::GraphUpdate;
use esd_graph::{Edge, VertexId};
use std::collections::HashMap;

/// How the apply path handled one update of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDisposition {
    /// The update changed the graph and the index was repaired.
    Applied,
    /// The graph already satisfied the request (duplicate insert, missing
    /// removal, or out-of-range endpoint on a removal).
    Noop,
    /// The update is structurally invalid (a self-loop) and can never apply.
    Rejected,
}

/// Per-batch roll-up of [`UpdateDisposition`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Updates that changed the graph.
    pub applied: usize,
    /// Updates the graph already satisfied.
    pub noop: usize,
    /// Structurally invalid updates.
    pub rejected: usize,
}

impl BatchStats {
    /// Total updates that did not change the graph (`noop + rejected`) —
    /// the quantity the pre-split API reported as "skipped".
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.noop + self.rejected
    }

    /// Tallies a slice of dispositions.
    #[must_use]
    pub fn from_dispositions(dispositions: &[UpdateDisposition]) -> Self {
        let mut stats = BatchStats::default();
        for d in dispositions {
            match d {
                UpdateDisposition::Applied => stats.applied += 1,
                UpdateDisposition::Noop => stats.noop += 1,
                UpdateDisposition::Rejected => stats.rejected += 1,
            }
        }
        stats
    }
}

impl std::ops::AddAssign for BatchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.applied += rhs.applied;
        self.noop += rhs.noop;
        self.rejected += rhs.rejected;
    }
}

/// An ordered, deduplicated batch of [`GraphUpdate`]s — the single mutation
/// vocabulary of the `esd` facade.
///
/// Built up via [`insert`](MutationBatch::insert) /
/// [`remove`](MutationBatch::remove) / [`push`](MutationBatch::push):
/// opposite pending operations on the same edge cancel each other, repeats
/// of a pending operation are dropped, and order among survivors is
/// preserved. [`from_raw`](MutationBatch::from_raw) wraps a update list
/// verbatim (no coalescing) for callers that need exact per-update
/// accounting — the deprecated `apply`/`apply_before` wrappers use it.
///
/// # Examples
///
/// ```
/// use esd_core::maintain::MutationBatch;
///
/// let mut batch = MutationBatch::new();
/// batch.insert(3, 7);
/// batch.remove(3, 7); // cancels the pending insert
/// batch.insert(1, 2);
/// batch.insert(2, 1); // duplicate of pending (1,2) — dropped
/// assert_eq!(batch.len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MutationBatch {
    /// Pending updates; cancelled slots are `None` and compacted on read.
    slots: Vec<Option<GraphUpdate>>,
    /// Canonical edge key → slot index of the pending (un-cancelled)
    /// operation on that edge, if any.
    pending: HashMap<u64, usize>,
    live: usize,
}

impl MutationBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps `updates` verbatim, without any coalescing — every element
    /// reaches the apply path and gets its own disposition.
    #[must_use]
    pub fn from_raw(updates: Vec<GraphUpdate>) -> Self {
        let live = updates.len();
        Self {
            slots: updates.into_iter().map(Some).collect(),
            pending: HashMap::new(),
            live,
        }
    }

    /// Queues an edge insertion (coalescing against pending operations).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.push(GraphUpdate::Insert(u, v))
    }

    /// Queues an edge removal (coalescing against pending operations).
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.push(GraphUpdate::Remove(u, v))
    }

    /// Queues `update`, coalescing against the pending operation on the
    /// same edge: an identical pending op absorbs the new one, an opposite
    /// pending op cancels both. Self-loops bypass coalescing entirely (they
    /// have no canonical edge key and must surface as `rejected`).
    pub fn push(&mut self, update: GraphUpdate) -> &mut Self {
        let (u, v) = update.endpoints();
        if u == v {
            self.slots.push(Some(update));
            self.live += 1;
            return self;
        }
        let key = Edge::new(u, v).key();
        match self.pending.get(&key) {
            Some(&slot) => {
                let prior = self.slots[slot].expect("pending slot is live");
                if prior.is_insert() != update.is_insert() {
                    // Opposite op: net effect on the edge set is zero.
                    self.slots[slot] = None;
                    self.pending.remove(&key);
                    self.live -= 1;
                }
                // Identical op: the pending one already covers it.
            }
            None => {
                self.pending.insert(key, self.slots.len());
                self.slots.push(Some(update));
                self.live += 1;
            }
        }
        self
    }

    /// Number of surviving updates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Whether no updates survive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The surviving updates, in queue order.
    #[must_use]
    pub fn into_updates(self) -> Vec<GraphUpdate> {
        self.slots.into_iter().flatten().collect()
    }

    /// The surviving updates without consuming the batch.
    #[must_use]
    pub fn updates(&self) -> Vec<GraphUpdate> {
        self.slots.iter().copied().flatten().collect()
    }
}

impl From<Vec<GraphUpdate>> for MutationBatch {
    /// Coalescing construction from a plain update list; use
    /// [`MutationBatch::from_raw`] to skip coalescing.
    fn from(updates: Vec<GraphUpdate>) -> Self {
        let mut batch = MutationBatch::new();
        for u in updates {
            batch.push(u);
        }
        batch
    }
}

impl FromIterator<GraphUpdate> for MutationBatch {
    fn from_iter<I: IntoIterator<Item = GraphUpdate>>(iter: I) -> Self {
        let mut batch = MutationBatch::new();
        for u in iter {
            batch.push(u);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::super::MaintainedIndex;
    use super::*;
    use crate::fixtures::fig1;

    #[test]
    fn insert_then_remove_cancels() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).remove(2, 1);
        assert!(b.is_empty());
        assert_eq!(b.into_updates(), Vec::new());
    }

    #[test]
    fn remove_then_insert_cancels() {
        let mut b = MutationBatch::new();
        b.remove(4, 9).insert(4, 9);
        assert!(b.is_empty());
    }

    #[test]
    fn duplicates_are_absorbed_and_order_preserved() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).insert(3, 4).insert(2, 1).remove(5, 6);
        assert_eq!(
            b.updates(),
            vec![
                GraphUpdate::Insert(1, 2),
                GraphUpdate::Insert(3, 4),
                GraphUpdate::Remove(5, 6),
            ]
        );
    }

    #[test]
    fn cancellation_reopens_the_edge_for_later_ops() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).remove(1, 2).insert(1, 2);
        assert_eq!(b.updates(), vec![GraphUpdate::Insert(1, 2)]);
    }

    #[test]
    fn self_loops_flow_through_uncoalesced() {
        let mut b = MutationBatch::new();
        b.insert(5, 5).remove(5, 5).insert(5, 5);
        assert_eq!(b.len(), 3, "self-loops must reach the apply path");
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let stats = index.apply_batch(&b.into_updates());
        assert_eq!((stats.applied, stats.noop, stats.rejected), (0, 0, 3));
    }

    #[test]
    fn from_raw_preserves_every_update() {
        let raw = vec![
            GraphUpdate::Insert(1, 2),
            GraphUpdate::Remove(1, 2),
            GraphUpdate::Insert(1, 2),
        ];
        let b = MutationBatch::from_raw(raw.clone());
        assert_eq!(b.len(), 3);
        assert_eq!(b.into_updates(), raw);
    }

    #[test]
    fn coalesced_batch_matches_raw_batch_final_state() {
        let (g, n) = fig1();
        let raw = vec![
            GraphUpdate::Insert(n["c"], n["d"]),
            GraphUpdate::Remove(n["c"], n["d"]),
            GraphUpdate::Remove(n["u"], n["k"]),
            GraphUpdate::Remove(n["u"], n["k"]),
        ];
        let mut via_raw = MaintainedIndex::new(&g);
        via_raw.apply_batch(&raw);
        let mut via_batch = MaintainedIndex::new(&g);
        let coalesced: MutationBatch = raw.into_iter().collect();
        assert_eq!(coalesced.len(), 1, "insert+remove cancel, dup absorbed");
        via_batch.apply_batch(&coalesced.into_updates());
        assert_eq!(via_raw.component_sizes(), via_batch.component_sizes());
        assert_eq!(via_raw.query(40, 1), via_batch.query(40, 1));
    }

    #[test]
    fn stats_roll_up_and_skipped_compat() {
        let d = [
            UpdateDisposition::Applied,
            UpdateDisposition::Noop,
            UpdateDisposition::Rejected,
            UpdateDisposition::Noop,
        ];
        let stats = BatchStats::from_dispositions(&d);
        assert_eq!((stats.applied, stats.noop, stats.rejected), (1, 2, 1));
        assert_eq!(stats.skipped(), 3);
        let mut sum = BatchStats::default();
        sum += stats;
        sum += stats;
        assert_eq!(sum.applied, 2);
    }

    #[test]
    fn noop_vs_rejected_classification() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let stats = index.apply_batch(&[
            GraphUpdate::Insert(n["f"], n["g"]), // already present → noop
            GraphUpdate::Remove(900, 901),       // out of range → noop
            GraphUpdate::Insert(3, 3),           // self-loop → rejected
            GraphUpdate::Remove(7, 7),           // self-loop → rejected
        ]);
        assert_eq!((stats.applied, stats.noop, stats.rejected), (0, 2, 2));
    }
}
