//! The batch-mutation vocabulary shared by every write path: per-update
//! [`UpdateDisposition`]s, the [`BatchStats`] roll-up returned by
//! [`MaintainedIndex::apply_batch`](super::MaintainedIndex::apply_batch) and
//! the pipeline, and the [`MutationBatch`] builder that `esd-serve` and the
//! CLI hand to
//! [`ServiceHandle::submit`](../../../esd_serve/struct.ServiceHandle.html).
//!
//! `MutationBatch` is where intra-batch redundancy dies: at most one
//! operation per edge survives — the **last** one queued (last-writer-wins).
//! That elision is sound in every initial graph state because insert and
//! remove are idempotent *ensure* operations: the edge's final presence —
//! and therefore, by the ego-network invariant, the final index state — is
//! fully determined by the last operation targeting it, regardless of what
//! came before. Note that an opposite pair must **not** cancel to nothing:
//! for an edge that already exists, insert-then-remove nets to a removal
//! (the insert is a no-op), so the remove has to survive; symmetrically,
//! remove-then-insert of an absent edge nets to an insertion. Self-loops
//! are deliberately *not* deduplicated: they are structurally invalid and
//! must flow through so the apply path can report them as `rejected`
//! rather than silently vanish.

use super::GraphUpdate;
use esd_graph::{Edge, VertexId};
use std::collections::HashMap;

/// How the apply path handled one update of a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateDisposition {
    /// The update changed the graph and the index was repaired.
    Applied,
    /// The graph already satisfied the request (duplicate insert, missing
    /// removal, or out-of-range endpoint on a removal).
    Noop,
    /// The update is structurally invalid (a self-loop) and can never apply.
    Rejected,
}

/// Per-batch roll-up of [`UpdateDisposition`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Updates that changed the graph.
    pub applied: usize,
    /// Updates the graph already satisfied.
    pub noop: usize,
    /// Structurally invalid updates.
    pub rejected: usize,
}

impl BatchStats {
    /// Total updates that did not change the graph (`noop + rejected`) —
    /// the quantity the pre-split API reported as "skipped".
    #[must_use]
    pub fn skipped(&self) -> usize {
        self.noop + self.rejected
    }

    /// Tallies a slice of dispositions.
    #[must_use]
    pub fn from_dispositions(dispositions: &[UpdateDisposition]) -> Self {
        let mut stats = BatchStats::default();
        for d in dispositions {
            match d {
                UpdateDisposition::Applied => stats.applied += 1,
                UpdateDisposition::Noop => stats.noop += 1,
                UpdateDisposition::Rejected => stats.rejected += 1,
            }
        }
        stats
    }
}

impl std::ops::AddAssign for BatchStats {
    fn add_assign(&mut self, rhs: Self) {
        self.applied += rhs.applied;
        self.noop += rhs.noop;
        self.rejected += rhs.rejected;
    }
}

/// An ordered, deduplicated batch of [`GraphUpdate`]s — the single mutation
/// vocabulary of the `esd` facade.
///
/// Built up via [`insert`](MutationBatch::insert) /
/// [`remove`](MutationBatch::remove) / [`push`](MutationBatch::push): only
/// the last-queued operation per edge survives (a newer opposite operation
/// supersedes the pending one in place, a repeat is absorbed), and order
/// among survivors is preserved. [`from_raw`](MutationBatch::from_raw)
/// wraps a update list verbatim (no coalescing) for callers that need
/// exact per-update accounting — the deprecated `apply`/`apply_before`
/// wrappers use it.
///
/// # Examples
///
/// ```
/// use esd_core::maintain::MutationBatch;
///
/// let mut batch = MutationBatch::new();
/// batch.insert(3, 7);
/// batch.remove(3, 7); // supersedes the insert: only the remove survives
/// batch.insert(1, 2);
/// batch.insert(2, 1); // duplicate of pending (1,2) — absorbed
/// assert_eq!(batch.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct MutationBatch {
    /// Surviving updates in first-queued order; at most one per edge
    /// (plus any self-loops, which bypass coalescing).
    updates: Vec<GraphUpdate>,
    /// Canonical edge key → index in `updates` of the pending operation
    /// on that edge, if any.
    pending: HashMap<u64, usize>,
}

impl MutationBatch {
    /// An empty batch.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Wraps `updates` verbatim, without any coalescing — every element
    /// reaches the apply path and gets its own disposition.
    #[must_use]
    pub fn from_raw(updates: Vec<GraphUpdate>) -> Self {
        Self {
            updates,
            pending: HashMap::new(),
        }
    }

    /// Queues an edge insertion (coalescing against pending operations).
    pub fn insert(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.push(GraphUpdate::Insert(u, v))
    }

    /// Queues an edge removal (coalescing against pending operations).
    pub fn remove(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        self.push(GraphUpdate::Remove(u, v))
    }

    /// Queues `update`, coalescing last-writer-wins against the pending
    /// operation on the same edge: the newer operation replaces the pending
    /// one in place (an identical repeat is thereby absorbed). The pending
    /// pair must *not* cancel to nothing — insert and remove are idempotent
    /// ensure-ops, so e.g. insert-then-remove of an edge that already
    /// exists nets to a removal, not a no-op. Self-loops bypass coalescing
    /// entirely (they have no canonical edge key and must surface as
    /// `rejected`).
    pub fn push(&mut self, update: GraphUpdate) -> &mut Self {
        let (u, v) = update.endpoints();
        if u == v {
            self.updates.push(update);
            return self;
        }
        let key = Edge::new(u, v).key();
        match self.pending.get(&key) {
            Some(&slot) => {
                // Last-writer-wins: the edge's final presence is decided
                // entirely by the most recent ensure-op. An identical
                // repeat (same kind, either orientation) is absorbed
                // without disturbing the stored representation.
                if self.updates[slot].is_insert() != update.is_insert() {
                    self.updates[slot] = update;
                }
            }
            None => {
                self.pending.insert(key, self.updates.len());
                self.updates.push(update);
            }
        }
        self
    }

    /// Number of surviving updates.
    #[must_use]
    pub fn len(&self) -> usize {
        self.updates.len()
    }

    /// Whether no updates survive.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.updates.is_empty()
    }

    /// The surviving updates, in queue order.
    #[must_use]
    pub fn into_updates(self) -> Vec<GraphUpdate> {
        self.updates
    }

    /// The surviving updates without consuming the batch.
    #[must_use]
    pub fn updates(&self) -> Vec<GraphUpdate> {
        self.updates.clone()
    }
}

impl From<Vec<GraphUpdate>> for MutationBatch {
    /// Coalescing construction from a plain update list; use
    /// [`MutationBatch::from_raw`] to skip coalescing.
    fn from(updates: Vec<GraphUpdate>) -> Self {
        let mut batch = MutationBatch::new();
        for u in updates {
            batch.push(u);
        }
        batch
    }
}

impl FromIterator<GraphUpdate> for MutationBatch {
    fn from_iter<I: IntoIterator<Item = GraphUpdate>>(iter: I) -> Self {
        let mut batch = MutationBatch::new();
        for u in iter {
            batch.push(u);
        }
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::super::MaintainedIndex;
    use super::*;
    use crate::fixtures::fig1;

    #[test]
    fn insert_then_remove_keeps_the_remove() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).remove(2, 1);
        assert_eq!(b.into_updates(), vec![GraphUpdate::Remove(2, 1)]);
    }

    #[test]
    fn remove_then_insert_keeps_the_insert() {
        let mut b = MutationBatch::new();
        b.remove(4, 9).insert(4, 9);
        assert_eq!(b.into_updates(), vec![GraphUpdate::Insert(4, 9)]);
    }

    #[test]
    fn duplicates_are_absorbed_and_order_preserved() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).insert(3, 4).insert(2, 1).remove(5, 6);
        assert_eq!(
            b.updates(),
            vec![
                GraphUpdate::Insert(1, 2),
                GraphUpdate::Insert(3, 4),
                GraphUpdate::Remove(5, 6),
            ]
        );
    }

    #[test]
    fn each_new_op_supersedes_the_pending_one_in_place() {
        let mut b = MutationBatch::new();
        b.insert(1, 2).remove(1, 2).insert(1, 2);
        assert_eq!(b.updates(), vec![GraphUpdate::Insert(1, 2)]);
        let mut b = MutationBatch::new();
        b.insert(1, 2).insert(3, 4).remove(1, 2);
        // The survivor keeps the edge's original queue position.
        assert_eq!(
            b.updates(),
            vec![GraphUpdate::Remove(1, 2), GraphUpdate::Insert(3, 4)]
        );
    }

    #[test]
    fn self_loops_flow_through_uncoalesced() {
        let mut b = MutationBatch::new();
        b.insert(5, 5).remove(5, 5).insert(5, 5);
        assert_eq!(b.len(), 3, "self-loops must reach the apply path");
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let stats = index.apply_batch(&b.into_updates());
        assert_eq!((stats.applied, stats.noop, stats.rejected), (0, 0, 3));
    }

    #[test]
    fn from_raw_preserves_every_update() {
        let raw = vec![
            GraphUpdate::Insert(1, 2),
            GraphUpdate::Remove(1, 2),
            GraphUpdate::Insert(1, 2),
        ];
        let b = MutationBatch::from_raw(raw.clone());
        assert_eq!(b.len(), 3);
        assert_eq!(b.into_updates(), raw);
    }

    #[test]
    fn coalesced_batch_matches_raw_batch_final_state() {
        let (g, n) = fig1();
        let raw = vec![
            GraphUpdate::Insert(n["c"], n["d"]),
            GraphUpdate::Remove(n["c"], n["d"]),
            GraphUpdate::Remove(n["u"], n["k"]),
            GraphUpdate::Remove(n["u"], n["k"]),
        ];
        let mut via_raw = MaintainedIndex::new(&g);
        via_raw.apply_batch(&raw);
        let mut via_batch = MaintainedIndex::new(&g);
        let coalesced: MutationBatch = raw.into_iter().collect();
        assert_eq!(coalesced.len(), 2, "last op per edge survives");
        via_batch.apply_batch(&coalesced.into_updates());
        assert_eq!(via_raw.component_sizes(), via_batch.component_sizes());
        assert_eq!(via_raw.query(40, 1), via_batch.query(40, 1));
    }

    #[test]
    fn coalescing_is_sound_when_the_edge_pre_exists() {
        // (f, g) already exists in fig1: sequentially, the insert is a
        // no-op and the remove applies — the net effect is a REMOVAL, so
        // cancelling the pair to nothing would silently drop it.
        let (g, n) = fig1();
        let raw = vec![
            GraphUpdate::Insert(n["f"], n["g"]),
            GraphUpdate::Remove(n["f"], n["g"]),
        ];
        let mut via_raw = MaintainedIndex::new(&g);
        let stats = via_raw.apply_batch(&raw);
        assert_eq!((stats.applied, stats.noop), (1, 1));
        let coalesced: MutationBatch = raw.into_iter().collect();
        assert_eq!(
            coalesced.updates(),
            vec![GraphUpdate::Remove(n["f"], n["g"])],
            "the remove must survive"
        );
        let mut via_batch = MaintainedIndex::new(&g);
        via_batch.apply_batch(&coalesced.into_updates());
        assert_eq!(via_raw.graph().edges(), via_batch.graph().edges());
        assert_eq!(via_raw.component_sizes(), via_batch.component_sizes());
        assert_eq!(via_raw.query(40, 1), via_batch.query(40, 1));
    }

    #[test]
    fn coalescing_is_sound_when_the_edge_is_absent() {
        // Symmetric case: (c, d) is absent, so remove-then-insert nets to
        // an INSERTION (the remove is a no-op) — the insert must survive.
        let (g, n) = fig1();
        let raw = vec![
            GraphUpdate::Remove(n["c"], n["d"]),
            GraphUpdate::Insert(n["c"], n["d"]),
        ];
        let mut via_raw = MaintainedIndex::new(&g);
        let stats = via_raw.apply_batch(&raw);
        assert_eq!((stats.applied, stats.noop), (1, 1));
        let coalesced: MutationBatch = raw.into_iter().collect();
        assert_eq!(
            coalesced.updates(),
            vec![GraphUpdate::Insert(n["c"], n["d"])],
            "the insert must survive"
        );
        let mut via_batch = MaintainedIndex::new(&g);
        via_batch.apply_batch(&coalesced.into_updates());
        assert_eq!(via_raw.graph().edges(), via_batch.graph().edges());
        assert_eq!(via_raw.component_sizes(), via_batch.component_sizes());
        assert_eq!(via_raw.query(40, 1), via_batch.query(40, 1));
    }

    #[test]
    fn stats_roll_up_and_skipped_compat() {
        let d = [
            UpdateDisposition::Applied,
            UpdateDisposition::Noop,
            UpdateDisposition::Rejected,
            UpdateDisposition::Noop,
        ];
        let stats = BatchStats::from_dispositions(&d);
        assert_eq!((stats.applied, stats.noop, stats.rejected), (1, 2, 1));
        assert_eq!(stats.skipped(), 3);
        let mut sum = BatchStats::default();
        sum += stats;
        sum += stats;
        assert_eq!(sum.applied, 2);
    }

    #[test]
    fn noop_vs_rejected_classification() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let stats = index.apply_batch(&[
            GraphUpdate::Insert(n["f"], n["g"]), // already present → noop
            GraphUpdate::Remove(900, 901),       // out of range → noop
            GraphUpdate::Insert(3, 3),           // self-loop → rejected
            GraphUpdate::Remove(7, 7),           // self-loop → rejected
        ]);
        assert_eq!((stats.applied, stats.noop, stats.rejected), (0, 2, 2));
    }
}
