//! Dynamic index maintenance (§V): edge insertion (Algorithm 4) and
//! deletion (Algorithm 5).
//!
//! A [`MaintainedIndex`] keeps, alongside the `H(c)` lists, the per-edge
//! disjoint-set forests `M_uv` over each common neighbourhood and the global
//! component-size refcounts. Observations 2–3 of the paper localise an
//! update: only the edges of `Ĝ_{N(uv)}` — the inserted/deleted edge itself,
//! the triangle edges `(u,w)`, `(v,w)` for `w ∈ N(uv)`, and the ego-network
//! edges `(w1,w2)` — can change their structural diversity.
//!
//! Insertion follows Algorithm 4 verbatim: new singletons plus one `Union`
//! per member edge of each new 4-clique. Deletion follows the spirit of
//! Algorithm 5's `Update`: union–find cannot split, so each affected edge's
//! forest is rebuilt from its post-deletion ego-network (the same
//! `O((αγ(n) + log m)·m_uv)` locality as Theorem 9).
//!
//! **Documented deviation from the paper** (see DESIGN.md): when an update
//! introduces a component size `c ∉ C`, the fresh list `H(c)` is seeded as a
//! clone of its successor list `H(c')` before the locally-updated edges are
//! inserted. The paper's Example 7 inserts only the updated edge, which
//! would leave `H(c)` missing every edge of `H(c')` and break queries with
//! `τ ≤ c`; cloning is correct because no unaffected edge can have a
//! component size strictly between `c` and `c'`.

use crate::index::build;
use crate::index::ostree::{RankKey, ScoreTreap};
use crate::ScoredEdge;
use esd_graph::{DynamicGraph, Edge, Graph, VertexId};
use std::collections::{BTreeMap, HashMap};

pub mod batch;
pub mod parallel;

pub use batch::{BatchStats, MutationBatch, UpdateDisposition};
pub use parallel::{PipelineOutcome, PipelineReport};

/// Which slice of the edge space a [`MaintainedIndex`] maintains score
/// state for. The graph replica is always complete — adjacency must be
/// global for ego-network connectivity to be computed correctly — but
/// forests, `H(c)` lists, and refcounts exist only for *owned* edges:
/// those whose canonical key hashes to this slice's shard.
///
/// [`EdgeOwnership::ALL`] (the single-engine default) owns everything and
/// is behaviourally identical to the pre-ownership index. Partitioned
/// ownership is what lets a sharded deployment split the expensive
/// per-edge forest maintenance `1/S` per shard while every shard applies
/// the full mutation stream to its cheap adjacency replica.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EdgeOwnership {
    /// This slice's position in `0..shards`.
    pub shard: u32,
    /// Total number of slices; `1` means sole ownership.
    pub shards: u32,
}

impl EdgeOwnership {
    /// Sole ownership: every edge is owned (the single-engine default).
    pub const ALL: Self = Self {
        shard: 0,
        shards: 1,
    };

    /// Ownership of slice `shard` of `shards`.
    ///
    /// # Panics
    /// If `shards == 0` or `shard >= shards`.
    #[must_use]
    pub fn of(shard: u32, shards: u32) -> Self {
        assert!(shards >= 1, "shard count must be at least 1");
        assert!(shard < shards, "shard {shard} out of range 0..{shards}");
        Self { shard, shards }
    }

    /// The owning shard of a canonical edge key under `shards`-way
    /// partitioning — a fixed splitmix64 finalizer, so the mapping is
    /// stable across runs, platforms, and toolchain versions (per-shard
    /// durability directories depend on it staying put).
    #[must_use]
    pub fn shard_of_key(key: u64, shards: u32) -> u32 {
        if shards <= 1 {
            return 0;
        }
        let mut z = key.wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        #[allow(
            clippy::cast_possible_truncation,
            reason = "z % shards < shards <= u32::MAX"
        )]
        {
            (z % u64::from(shards)) as u32
        }
    }

    /// Whether this slice owns the edge with canonical key `key`.
    #[must_use]
    pub fn owns_key(self, key: u64) -> bool {
        self.shards <= 1 || Self::shard_of_key(key, self.shards) == self.shard
    }
}

/// A per-edge disjoint-set forest over the common neighbourhood, keyed by
/// vertex id — the paper's `M_uv` with its `root` and `count` fields.
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeDsu {
    /// `vertex -> (parent vertex, component size)`; the size is only
    /// meaningful at roots.
    pub(crate) nodes: HashMap<VertexId, (VertexId, u32)>,
}

impl EdgeDsu {
    fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    fn contains(&self, w: VertexId) -> bool {
        self.nodes.contains_key(&w)
    }

    /// Adds `w` as its own singleton component.
    fn insert_singleton(&mut self, w: VertexId) {
        let prev = self.nodes.insert(w, (w, 1));
        debug_assert!(prev.is_none(), "vertex {w} already tracked");
    }

    /// Root of `w`'s component, with path halving.
    fn find(&mut self, w: VertexId) -> VertexId {
        let mut w = w;
        loop {
            let p = self.nodes[&w].0;
            if p == w {
                return w;
            }
            let gp = self.nodes[&p].0;
            self.nodes.get_mut(&w).expect("tracked vertex").0 = gp;
            w = gp;
        }
    }

    /// Merges the components of `a` and `b` (both must be tracked).
    fn union(&mut self, a: VertexId, b: VertexId) {
        let (ra, rb) = (self.find(a), self.find(b));
        if ra == rb {
            return;
        }
        let (ca, cb) = (self.nodes[&ra].1, self.nodes[&rb].1);
        let (big, small) = if ca >= cb { (ra, rb) } else { (rb, ra) };
        self.nodes.get_mut(&small).expect("root").0 = big;
        self.nodes.get_mut(&big).expect("root").1 = ca + cb;
    }

    /// Sorted multiset of component sizes (the edge's `C_uv`).
    pub(crate) fn component_sizes(&self) -> Vec<u32> {
        let mut sizes: Vec<u32> = self
            .nodes
            .iter()
            .filter(|(w, (p, _))| *p == **w)
            .map(|(_, (_, c))| *c)
            .collect();
        sizes.sort_unstable();
        sizes
    }
}

/// One element of an update batch for [`MaintainedIndex::apply_batch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GraphUpdate {
    /// Insert the edge `(u, v)`.
    Insert(VertexId, VertexId),
    /// Remove the edge `(u, v)`.
    Remove(VertexId, VertexId),
}

impl GraphUpdate {
    /// The update's endpoint pair, in the order given at construction.
    #[must_use]
    pub fn endpoints(self) -> (VertexId, VertexId) {
        match self {
            GraphUpdate::Insert(u, v) | GraphUpdate::Remove(u, v) => (u, v),
        }
    }

    /// Whether this is an insertion.
    #[must_use]
    pub fn is_insert(self) -> bool {
        matches!(self, GraphUpdate::Insert(..))
    }
}

/// An ESDIndex that stays consistent under edge insertions and deletions.
///
/// # Examples
///
/// ```
/// use esd_core::maintain::MaintainedIndex;
/// use esd_core::fixtures::fig1;
///
/// let (g, names) = fig1();
/// let mut index = MaintainedIndex::new(&g);
/// let before = index.query(3, 2);
/// assert_eq!(before.len(), 3);
///
/// // Example 7: deleting (u, k) creates a size-3 component for (j, k).
/// index.remove_edge(names["u"], names["k"]);
/// assert!(index.component_sizes().contains(&3));
/// ```
#[derive(Debug, Clone)]
pub struct MaintainedIndex {
    pub(crate) g: DynamicGraph,
    /// `M_uv` per edge (absent when the common neighbourhood is empty).
    pub(crate) forests: HashMap<u64, EdgeDsu>,
    /// `H(c)` per size `c ∈ C`.
    pub(crate) lists: BTreeMap<u32, ScoreTreap>,
    /// `c -> number of edges whose C_uv contains c`. Keys are exactly `C`.
    pub(crate) refcounts: BTreeMap<u32, usize>,
    /// The slice of the edge space this index maintains score state for.
    pub(crate) ownership: EdgeOwnership,
}

impl MaintainedIndex {
    /// Bootstraps the dynamic state from a static graph using the 4-clique
    /// construction (Algorithm 3), then converts the flat forest into
    /// per-edge structures.
    pub fn new(g: &Graph) -> Self {
        Self::new_owned(g, EdgeOwnership::ALL)
    }

    /// Like [`MaintainedIndex::new`], but maintains forests, lists, and
    /// refcounts only for the edges owned under `ownership`; the adjacency
    /// replica is always the complete graph. With [`EdgeOwnership::ALL`]
    /// this is exactly `new`. Sharded deployments give each engine the
    /// same graph with a distinct slice, so the engines' lists partition
    /// the global lists edge-for-edge.
    pub fn new_owned(g: &Graph, ownership: EdgeOwnership) -> Self {
        let artifacts = build::components_by_four_cliques(g);
        let mut forests = HashMap::with_capacity(g.num_edges());
        let mut arena = artifacts.arena;
        for (eid, e) in g.edges().iter().enumerate() {
            if !ownership.owns_key(e.key()) {
                continue;
            }
            let range = &artifacts.nbrs[artifacts.nbr_offsets[eid]..artifacts.nbr_offsets[eid + 1]];
            if range.is_empty() {
                continue;
            }
            let mut dsu = EdgeDsu::default();
            for (i, &w) in range.iter().enumerate() {
                let root_slot = arena.find(eid, i);
                let root_vertex = range[root_slot];
                let count = arena.root_size(eid, root_slot);
                dsu.nodes.insert(w, (root_vertex, count));
            }
            forests.insert(e.key(), dsu);
        }

        let mut refcounts: BTreeMap<u32, usize> = BTreeMap::new();
        for (eid, e) in g.edges().iter().enumerate() {
            if !ownership.owns_key(e.key()) {
                continue;
            }
            let mut sizes = artifacts.components.sizes_of(eid).to_vec();
            sizes.dedup();
            for s in sizes {
                *refcounts.entry(s).or_insert(0) += 1;
            }
        }

        let lists = if ownership == EdgeOwnership::ALL {
            let csizes = build::distinct_sizes(&artifacts.components);
            let mut treaps = vec![ScoreTreap::new(); csizes.len()];
            build::fill_lists(
                g.edges(),
                &artifacts.components,
                &csizes,
                &mut treaps,
                0..csizes.len(),
            );
            csizes.into_iter().zip(treaps).collect()
        } else {
            // Owned-only fill: `C` is the refcount key set; each owned edge
            // joins every list `H(c)` with `c ≤ max(C_uv)` at the same
            // score `restore_entries` would compute. Treap shapes depend
            // only on their key sets, so this matches the incremental path.
            let mut lists: BTreeMap<u32, ScoreTreap> =
                refcounts.keys().map(|&c| (c, ScoreTreap::new())).collect();
            for (eid, e) in g.edges().iter().enumerate() {
                if !ownership.owns_key(e.key()) {
                    continue;
                }
                let sizes = artifacts.components.sizes_of(eid);
                let Some(&cmax) = sizes.last() else { continue };
                for (&c, list) in lists.range_mut(..=cmax) {
                    let score = (sizes.len() - sizes.partition_point(|&s| s < c)) as u32;
                    list.insert(RankKey { score, edge: *e });
                }
            }
            lists
        };

        let index = Self {
            g: DynamicGraph::from_graph(g),
            forests,
            lists,
            refcounts,
            ownership,
        };
        index.strict_audit();
        index
    }

    /// The slice of the edge space this index maintains score state for.
    #[must_use]
    pub fn ownership(&self) -> EdgeOwnership {
        self.ownership
    }

    /// The current graph.
    pub fn graph(&self) -> &DynamicGraph {
        &self.g
    }

    /// The current distinct component sizes `C`, ascending.
    pub fn component_sizes(&self) -> Vec<u32> {
        self.refcounts.keys().copied().collect()
    }

    /// Entry count of `H(c)`, if `c ∈ C`.
    pub fn list_len(&self, c: u32) -> Option<usize> {
        self.lists
            .get(&c)
            .map(super::index::ostree::ScoreTreap::len)
    }

    /// Top-`k` edges at threshold `tau` (same contract as
    /// [`crate::index::EsdIndex::query`]).
    pub fn query(&self, k: usize, tau: u32) -> Vec<ScoredEdge> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        let _span = esd_telemetry::span(esd_telemetry::Stage::QueryTopk);
        match self.lists.range(tau..).next() {
            Some((_, list)) => list.top_k(k),
            None => Vec::new(),
        }
    }

    /// Inserts `(u, v)` and repairs the index (Algorithm 4). Returns `false`
    /// if the edge already exists or is a self-loop.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v {
            return false;
        }
        self.g.ensure_vertex(u.max(v));
        if self.g.has_edge(u, v) {
            return false;
        }
        let _span = esd_telemetry::span(esd_telemetry::Stage::MaintainInsert);
        let nuv = self.g.common_neighbors(u, v);
        let affected = self.affected_edges(u, v, &nuv);
        esd_telemetry::add(
            esd_telemetry::Metric::MaintainAffected,
            affected.len() as u64,
        );
        self.retract_entries(&affected);
        self.mutate_insert(u, v, &nuv);
        self.restore_entries(&affected);
        self.strict_audit();
        true
    }

    /// The graph + forest mutations of Algorithm 4 (no list bookkeeping).
    fn mutate_insert(&mut self, u: VertexId, v: VertexId, nuv: &[VertexId]) {
        self.g.insert_edge(u, v);

        // Algorithm 4 lines 3–9: fresh singletons. Forests are created or
        // grown only for owned edges — non-owned edges belong to another
        // shard's index, which applies the same mutation to its own slice.
        let mut m_uv = EdgeDsu::default();
        for &w in nuv {
            m_uv.insert_singleton(w);
            // v joins N(uw) and u joins N(vw).
            let uw = Edge::new(u, w).key();
            if self.ownership.owns_key(uw) {
                self.forests.entry(uw).or_default().insert_singleton(v);
            }
            let vw = Edge::new(v, w).key();
            if self.ownership.owns_key(vw) {
                self.forests.entry(vw).or_default().insert_singleton(u);
            }
        }
        if !m_uv.is_empty() && self.ownership.owns_key(Edge::new(u, v).key()) {
            self.forests.insert(Edge::new(u, v).key(), m_uv);
        }

        // Algorithm 4 lines 10–19: one union per member edge of each new
        // 4-clique {u, v, w1, w2}.
        let ego = ego_edges(&self.g, nuv);
        esd_telemetry::add(
            esd_telemetry::Metric::MaintainUnionOps,
            6 * ego.len() as u64,
        );
        for (w1, w2) in ego {
            self.union_in(Edge::new(u, v), w1, w2);
            self.union_in(Edge::new(w1, w2), u, v);
            self.union_in(Edge::new(u, w1), v, w2);
            self.union_in(Edge::new(v, w1), u, w2);
            self.union_in(Edge::new(u, w2), v, w1);
            self.union_in(Edge::new(v, w2), u, w1);
        }
    }

    /// Deletes `(u, v)` and repairs the index (Algorithm 5). Returns `false`
    /// if the edge is absent.
    pub fn remove_edge(&mut self, u: VertexId, v: VertexId) -> bool {
        if u == v
            || u as usize >= self.g.num_vertices()
            || v as usize >= self.g.num_vertices()
            || !self.g.has_edge(u, v)
        {
            return false;
        }
        let _span = esd_telemetry::span(esd_telemetry::Stage::MaintainRemove);
        let nuv = self.g.common_neighbors(u, v);
        let affected = self.affected_edges(u, v, &nuv);
        esd_telemetry::add(
            esd_telemetry::Metric::MaintainAffected,
            affected.len() as u64,
        );
        self.retract_entries(&affected);
        self.mutate_remove(u, v, &affected);
        self.restore_entries(&affected);
        self.strict_audit();
        true
    }

    /// The graph + forest mutations of Algorithm 5 (no list bookkeeping).
    fn mutate_remove(&mut self, u: VertexId, v: VertexId, affected: &[u64]) {
        self.g.remove_edge(u, v);
        self.forests.remove(&Edge::new(u, v).key());

        // Union–find cannot split: rebuild every affected forest from its
        // post-deletion ego-network (Algorithm 5's Update, applied per edge).
        for &key in affected {
            let e = Edge::from_key(key);
            if e == Edge::new(u, v) {
                continue;
            }
            self.rebuild_forest(e);
        }
    }

    /// Applies a batch of updates, retracting each affected list entry once
    /// and restoring once at the end — updates with overlapping blast radii
    /// (`Ĝ_{N(uv)}` regions) share the list bookkeeping, which dominates the
    /// per-update cost. Equivalent to applying the updates one by one.
    ///
    /// Returns a [`BatchStats`] classifying every update: `applied`, `noop`
    /// (duplicate insert / missing removal — the graph already satisfies the
    /// request), or `rejected` (structurally invalid: a self-loop).
    pub fn apply_batch(&mut self, updates: &[GraphUpdate]) -> BatchStats {
        let _span = esd_telemetry::span(esd_telemetry::Stage::MaintainBatch);
        let mut retracted: std::collections::HashSet<u64> = std::collections::HashSet::new();
        let mut order: Vec<u64> = Vec::new();
        let mut stats = BatchStats::default();
        for &update in updates {
            match self.classify(update) {
                UpdateDisposition::Rejected => stats.rejected += 1,
                UpdateDisposition::Noop => stats.noop += 1,
                UpdateDisposition::Applied => {
                    let (u, v) = update.endpoints();
                    let nuv = self.g.common_neighbors(u, v);
                    let affected = self.affected_edges(u, v, &nuv);
                    for &key in &affected {
                        if retracted.insert(key) {
                            self.retract_entries(&[key]);
                            order.push(key);
                        }
                    }
                    match update {
                        GraphUpdate::Insert(..) => self.mutate_insert(u, v, &nuv),
                        GraphUpdate::Remove(..) => self.mutate_remove(u, v, &affected),
                    }
                    stats.applied += 1;
                }
            }
        }
        esd_telemetry::add(esd_telemetry::Metric::MaintainAffected, order.len() as u64);
        self.restore_entries(&order);
        self.strict_audit();
        stats
    }

    /// Classifies `update` against the current graph, growing the vertex set
    /// for in-range inserts exactly as the apply path would. Shared by the
    /// sequential batch loop and the pipeline planner so both paths agree on
    /// applied/noop/rejected — and on the side effect that even a no-op
    /// insert of `(u, v)` leaves vertices `u` and `v` allocated.
    pub(crate) fn classify(&mut self, update: GraphUpdate) -> UpdateDisposition {
        match update {
            GraphUpdate::Insert(u, v) => {
                if u == v {
                    return UpdateDisposition::Rejected;
                }
                self.g.ensure_vertex(u.max(v));
                if self.g.has_edge(u, v) {
                    UpdateDisposition::Noop
                } else {
                    UpdateDisposition::Applied
                }
            }
            GraphUpdate::Remove(u, v) => {
                if u == v {
                    UpdateDisposition::Rejected
                } else if u as usize >= self.g.num_vertices()
                    || v as usize >= self.g.num_vertices()
                    || !self.g.has_edge(u, v)
                {
                    UpdateDisposition::Noop
                } else {
                    UpdateDisposition::Applied
                }
            }
        }
    }

    /// Removes a vertex by deleting all its incident edges (the paper notes
    /// vertex updates reduce to edge updates, §V). Returns the number of
    /// edges removed. The id itself remains valid (degree 0).
    pub fn remove_vertex(&mut self, v: VertexId) -> usize {
        if v as usize >= self.g.num_vertices() {
            return 0;
        }
        let updates: Vec<GraphUpdate> = self
            .g
            .neighbors(v)
            .iter()
            .map(|&w| GraphUpdate::Remove(v, w))
            .collect();
        self.apply_batch(&updates).applied
    }

    /// Adds a vertex with the given neighbour set as a batch of insertions.
    /// Returns the number of edges actually added.
    pub fn add_vertex(&mut self, v: VertexId, neighbors: &[VertexId]) -> usize {
        let updates: Vec<GraphUpdate> = neighbors
            .iter()
            .map(|&w| GraphUpdate::Insert(v, w))
            .collect();
        self.apply_batch(&updates).applied
    }

    /// The edge set of `Ĝ_{N(uv)}` (Observations 2–3): the update's blast
    /// radius, as canonical edge keys.
    fn affected_edges(&self, u: VertexId, v: VertexId, nuv: &[VertexId]) -> Vec<u64> {
        let mut keys = Vec::with_capacity(2 * nuv.len() + 1);
        keys.push(Edge::new(u, v).key());
        for &w in nuv {
            keys.push(Edge::new(u, w).key());
            keys.push(Edge::new(v, w).key());
        }
        for (w1, w2) in ego_edges(&self.g, nuv) {
            keys.push(Edge::new(w1, w2).key());
        }
        keys
    }

    /// Removes the affected edges' entries from every list and releases
    /// their size refcounts.
    fn retract_entries(&mut self, affected: &[u64]) {
        let mut dead = Vec::new();
        let mut treap_removes = 0u64;
        for &key in affected {
            let Some(forest) = self.forests.get(&key) else {
                continue;
            };
            let sizes = forest.component_sizes();
            let Some(&cmax) = sizes.last() else { continue };
            let edge = Edge::from_key(key);
            for (&c, list) in self.lists.range_mut(..=cmax) {
                let score = (sizes.len() - sizes.partition_point(|&s| s < c)) as u32;
                let removed = list.remove(&RankKey { score, edge });
                treap_removes += 1;
                debug_assert!(removed, "stale entry for {edge} in H({c})");
            }
            let mut distinct = sizes;
            distinct.dedup();
            for s in distinct {
                let cnt = self.refcounts.get_mut(&s).expect("refcounted size");
                *cnt -= 1;
                if *cnt == 0 {
                    dead.push(s);
                }
            }
        }
        let _ = dead; // Dead sizes are reaped in `restore_entries`, after the
                      // affected edges' new sizes are known (they may revive).
        esd_telemetry::add(esd_telemetry::Metric::TreapRemoves, treap_removes);
    }

    /// Re-inserts the affected edges with their new component sizes,
    /// creating/seeding new lists and dropping dead ones.
    fn restore_entries(&mut self, affected: &[u64]) {
        // New sizes per affected edge; bump refcounts.
        let mut new_sizes: Vec<(Edge, Vec<u32>)> = Vec::with_capacity(affected.len());
        for &key in affected {
            let sizes = self
                .forests
                .get(&key)
                .map(EdgeDsu::component_sizes)
                .unwrap_or_default();
            let mut distinct = sizes.clone();
            distinct.dedup();
            for s in distinct {
                *self.refcounts.entry(s).or_insert(0) += 1;
            }
            if !sizes.is_empty() {
                new_sizes.push((Edge::from_key(key), sizes));
            }
        }

        // Reap dead sizes and their whole lists.
        let dead: Vec<u32> = self
            .refcounts
            .iter()
            .filter(|(_, &cnt)| cnt == 0)
            .map(|(&c, _)| c)
            .collect();
        for c in dead {
            self.refcounts.remove(&c);
            self.lists.remove(&c);
        }

        // Create lists for brand-new sizes, largest first, each seeded from
        // its successor (see the module docs for why this is required).
        let fresh: Vec<u32> = self
            .refcounts
            .keys()
            .rev()
            .copied()
            .filter(|c| !self.lists.contains_key(c))
            .collect();
        for c in fresh {
            let seeded = match self.lists.range(c + 1..).next() {
                Some((_, successor)) => successor.clone(),
                None => ScoreTreap::new(),
            };
            self.lists.insert(c, seeded);
        }

        // Insert the affected edges into every applicable list.
        let mut treap_inserts = 0u64;
        for (edge, sizes) in new_sizes {
            let cmax = *sizes.last().expect("non-empty");
            for (&c, list) in self.lists.range_mut(..=cmax) {
                let score = (sizes.len() - sizes.partition_point(|&s| s < c)) as u32;
                let inserted = list.insert(RankKey { score, edge });
                treap_inserts += 1;
                debug_assert!(inserted, "duplicate entry for {edge} in H({c})");
            }
        }
        esd_telemetry::add(esd_telemetry::Metric::TreapInserts, treap_inserts);
    }

    /// One `Union` in edge `e`'s forest (Algorithm 4's `M_xy.Union`).
    /// No-op for non-owned edges, whose forests live on another shard.
    fn union_in(&mut self, e: Edge, a: VertexId, b: VertexId) {
        if !self.ownership.owns_key(e.key()) {
            return;
        }
        let forest = self
            .forests
            .get_mut(&e.key())
            .expect("forest exists for every 4-clique member edge");
        debug_assert!(forest.contains(a) && forest.contains(b));
        forest.union(a, b);
    }

    /// Recomputes edge `e`'s forest from its current ego-network.
    /// No-op for non-owned edges, whose forests live on another shard.
    fn rebuild_forest(&mut self, e: Edge) {
        if !self.ownership.owns_key(e.key()) {
            return;
        }
        let (forest, union_ops) = compute_forest(&self.g, e);
        esd_telemetry::add(esd_telemetry::Metric::MaintainUnionOps, union_ops);
        match forest {
            Some(dsu) => {
                self.forests.insert(e.key(), dsu);
            }
            None => {
                self.forests.remove(&e.key());
            }
        }
    }

    /// Exhaustive consistency check; used by the differential tests and
    /// debug assertions. Panics on divergence with a full violation report.
    ///
    /// Thin wrapper over [`MaintainedIndex::validate_deep`], which recomputes
    /// every forest's ego-network partition from scratch — equivalent in
    /// strength to the full rebuild comparison it replaced, but reporting
    /// *every* violated invariant with its location rather than stopping at
    /// the first `assert_eq!`.
    pub fn check_consistency(&self) {
        crate::audit::assert_clean("MaintainedIndex", &self.validate_deep());
    }

    /// Structural audit at every maintenance boundary when the
    /// `strict-invariants` feature (or `cfg(test)`) is active; free
    /// otherwise. Uses the shallow [`MaintainedIndex::validate`] — the deep
    /// partition check stays opt-in via [`MaintainedIndex::check_consistency`].
    #[cfg(any(test, feature = "strict-invariants"))]
    fn strict_audit(&self) {
        crate::audit::assert_clean("MaintainedIndex (post-update)", &self.validate());
    }

    /// No-op without `strict-invariants`.
    #[cfg(not(any(test, feature = "strict-invariants")))]
    #[inline(always)]
    fn strict_audit(&self) {}
}

/// Computes edge `e`'s forest from scratch against `g` — the pure-function
/// core of [`MaintainedIndex::rebuild_forest`], shared with the pipeline's
/// parallel recompute workers (which call it against the post-batch graph).
/// Returns `(None, 0)` when the edge is absent or its common neighbourhood
/// is empty (no forest is stored for such edges), otherwise the forest plus
/// the number of union operations performed.
pub(crate) fn compute_forest(g: &DynamicGraph, e: Edge) -> (Option<EdgeDsu>, u64) {
    if e.u as usize >= g.num_vertices() || e.v as usize >= g.num_vertices() || !g.has_edge(e.u, e.v)
    {
        return (None, 0);
    }
    let members = g.common_neighbors(e.u, e.v);
    if members.is_empty() {
        return (None, 0);
    }
    let mut dsu = EdgeDsu::default();
    for &w in &members {
        dsu.insert_singleton(w);
    }
    let ego = ego_edges(g, &members);
    let union_ops = ego.len() as u64;
    for (w1, w2) in ego {
        dsu.union(w1, w2);
    }
    (Some(dsu), union_ops)
}

/// Edges of the subgraph induced by `members` (each unordered pair once),
/// i.e. the ego-network edges used by Algorithms 4–5.
pub(crate) fn ego_edges(g: &DynamicGraph, members: &[VertexId]) -> Vec<(VertexId, VertexId)> {
    let mut out = Vec::new();
    let mut buf = Vec::new();
    for &w1 in members {
        buf.clear();
        esd_graph::intersect::intersect_into(g.neighbors(w1), members, &mut buf);
        for &w2 in &buf {
            if w2 > w1 {
                out.push((w1, w2));
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    #[test]
    fn bootstrap_matches_static_index() {
        let (g, _) = fig1();
        let maintained = MaintainedIndex::new(&g);
        maintained.check_consistency();
        assert_eq!(maintained.component_sizes(), vec![1, 2, 4, 5]);
        assert_eq!(maintained.list_len(4), Some(15));
    }

    #[test]
    fn example6_insertion_of_cd() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        assert!(index.insert_edge(n["c"], n["d"]));
        index.check_consistency();
        // (d,e)'s ego-network becomes one component {b, c, f, g}.
        let sizes = index
            .forests
            .get(&Edge::new(n["d"], n["e"]).key())
            .unwrap()
            .component_sizes();
        assert_eq!(sizes, vec![4]);
    }

    #[test]
    fn example7_deletion_of_uk_creates_h3() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        assert!(index.remove_edge(n["u"], n["k"]));
        index.check_consistency();
        assert!(index.component_sizes().contains(&3), "H(3) must appear");
        // (j,k)'s components are now {h,i} and {v,p,q}.
        let sizes = index
            .forests
            .get(&Edge::new(n["j"], n["k"]).key())
            .unwrap()
            .component_sizes();
        assert_eq!(sizes, vec![2, 3]);
        // And H(3) answers τ=3 queries including edges with size-4+ comps.
        let q3 = index.query(100, 3);
        let q4 = index.query(100, 4);
        assert!(
            q3.len() > q4.len(),
            "H(3) ⊋ H(4): got {} vs {}",
            q3.len(),
            q4.len()
        );
    }

    #[test]
    fn insert_then_remove_roundtrips() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let before = index.query(40, 1);
        index.insert_edge(n["c"], n["d"]);
        index.remove_edge(n["c"], n["d"]);
        index.check_consistency();
        assert_eq!(index.query(40, 1), before);
    }

    #[test]
    fn rejects_duplicates_and_missing() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        assert!(!index.insert_edge(n["f"], n["g"]), "already present");
        assert!(!index.remove_edge(n["a"], n["w"]), "absent");
        assert!(!index.insert_edge(3, 3), "self-loop");
        index.check_consistency();
    }

    #[test]
    fn insert_into_empty_graph_region() {
        let g = Graph::from_edges(4, &[]);
        let mut index = MaintainedIndex::new(&g);
        assert!(index.insert_edge(0, 1));
        assert!(index.insert_edge(7, 2), "grows vertex set");
        index.check_consistency();
        assert!(index.query(5, 1).is_empty(), "no triangles yet");
    }

    #[test]
    fn insertion_creating_new_largest_size() {
        // Fig 1 has max component size 5 (for (u,p),(u,q),(p,q)). Adding a
        // new vertex adjacent to the whole K6 ∪ {w} pushes their largest
        // components past every existing C entry — the new list has no
        // successor to seed from.
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let z = 16u32;
        for name in ["j", "k", "u", "v", "p", "q", "w"] {
            index.insert_edge(z, n[name]);
        }
        index.check_consistency();
        let max = *index.component_sizes().last().unwrap();
        assert!(
            max > 5,
            "a larger component must exist, got C = {:?}",
            index.component_sizes()
        );
    }

    #[test]
    fn deletion_creating_multiple_new_sizes() {
        // Deleting (j,k) splits several ego-networks at once; whatever new
        // sizes appear, consistency must hold.
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        index.remove_edge(n["j"], n["k"]);
        index.check_consistency();
        index.remove_edge(n["u"], n["v"]);
        index.check_consistency();
    }

    #[test]
    fn maintain_on_extreme_topologies() {
        // Star: no triangles at all; complete bipartite: triangle-free but
        // with huge common neighbourhoods; both must survive update storms.
        let star = generators::star(20);
        let mut index = MaintainedIndex::new(&star);
        index.insert_edge(1, 2); // creates a triangle with the hub
        index.check_consistency();
        assert_eq!(index.component_sizes(), vec![1]);
        index.remove_edge(0, 3);
        index.check_consistency();

        let mut b = esd_graph::GraphBuilder::new(8);
        for u in 0..4u32 {
            for v in 4..8u32 {
                b.add_edge(u, v);
            }
        }
        let bipartite = b.build();
        let mut index = MaintainedIndex::new(&bipartite);
        assert!(index.component_sizes().is_empty(), "K4,4 is triangle-free");
        index.insert_edge(0, 1); // now many 4-cliques exist
        index.check_consistency();
        assert!(!index.component_sizes().is_empty());
        index.remove_edge(0, 1);
        index.check_consistency();
        assert!(index.component_sizes().is_empty());
    }

    #[test]
    fn random_update_stream_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(0xE5D);
        let g = generators::erdos_renyi(30, 0.25, 5);
        let mut index = MaintainedIndex::new(&g);
        for step in 0..60 {
            let (a, b) = (rng.gen_range(0..30u32), rng.gen_range(0..30u32));
            if a == b {
                continue;
            }
            if rng.gen_bool(0.5) {
                index.insert_edge(a, b);
            } else {
                index.remove_edge(a, b);
            }
            if step % 5 == 0 {
                index.check_consistency();
            }
        }
        index.check_consistency();
    }

    #[test]
    fn delete_every_edge_until_empty() {
        let g = generators::complete(7);
        let mut index = MaintainedIndex::new(&g);
        let edges: Vec<Edge> = g.edges().to_vec();
        for (i, e) in edges.iter().enumerate() {
            assert!(index.remove_edge(e.u, e.v));
            if i % 4 == 0 {
                index.check_consistency();
            }
        }
        assert!(index.component_sizes().is_empty());
        assert!(index.query(5, 1).is_empty());
    }

    #[test]
    fn batch_equals_sequential_updates() {
        let g = generators::clique_overlap(40, 35, 5, 11);
        let mut rng = StdRng::seed_from_u64(0xBA7C);
        let mut ops = Vec::new();
        for _ in 0..50 {
            let (a, b) = (rng.gen_range(0..40u32), rng.gen_range(0..40u32));
            if a == b {
                continue;
            }
            ops.push(if rng.gen_bool(0.5) {
                GraphUpdate::Insert(a, b)
            } else {
                GraphUpdate::Remove(a, b)
            });
        }
        let mut batched = MaintainedIndex::new(&g);
        let stats = batched.apply_batch(&ops);
        assert_eq!(stats.applied + stats.skipped(), ops.len());
        assert_eq!(stats.rejected, 0, "no self-loops were generated");
        let applied = stats.applied;

        let mut sequential = MaintainedIndex::new(&g);
        let mut seq_applied = 0;
        for &op in &ops {
            let ok = match op {
                GraphUpdate::Insert(a, b) => sequential.insert_edge(a, b),
                GraphUpdate::Remove(a, b) => sequential.remove_edge(a, b),
            };
            seq_applied += usize::from(ok);
        }
        assert_eq!(applied, seq_applied);
        batched.check_consistency();
        assert_eq!(batched.graph().edges(), sequential.graph().edges());
        for tau in [1, 2, 3] {
            assert_eq!(batched.query(50, tau), sequential.query(50, tau), "τ={tau}");
        }
    }

    #[test]
    fn batch_insert_then_remove_same_edge() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let before = index.query(40, 1);
        let stats = index.apply_batch(&[
            GraphUpdate::Insert(n["c"], n["d"]),
            GraphUpdate::Remove(n["c"], n["d"]),
            GraphUpdate::Remove(n["c"], n["d"]), // now missing → noop
        ]);
        assert_eq!((stats.applied, stats.noop, stats.rejected), (2, 1, 0));
        index.check_consistency();
        assert_eq!(index.query(40, 1), before);
    }

    #[test]
    fn vertex_removal_and_readdition() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let w_neighbors: Vec<u32> = g.neighbors(n["w"]).to_vec();
        // Removing w drops the size-5 components of (u,p),(u,q),(p,q).
        assert_eq!(index.remove_vertex(n["w"]), 3);
        index.check_consistency();
        assert_eq!(index.component_sizes(), vec![1, 2, 4], "5 ∉ C without w");
        // Re-adding w restores the original index exactly.
        assert_eq!(index.add_vertex(n["w"], &w_neighbors), 3);
        index.check_consistency();
        assert_eq!(index.component_sizes(), vec![1, 2, 4, 5]);
        assert_eq!(index.list_len(5), Some(3));
        // Out-of-range removal is a no-op.
        assert_eq!(index.remove_vertex(999), 0);
    }

    #[test]
    fn empty_batch_is_noop() {
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        assert_eq!(index.apply_batch(&[]), BatchStats::default());
        index.check_consistency();
    }

    #[test]
    fn shard_of_key_is_stable() {
        // Golden values: per-shard durability directories depend on this
        // mapping never changing across runs, platforms, or toolchains.
        assert_eq!(EdgeOwnership::shard_of_key(0, 4), 3);
        assert_eq!(EdgeOwnership::shard_of_key(1, 4), 1);
        assert_eq!(EdgeOwnership::shard_of_key(2, 4), 2);
        assert_eq!(EdgeOwnership::shard_of_key(6, 4), 0);
        assert_eq!(EdgeOwnership::shard_of_key(2, 2), 0);
        assert_eq!(EdgeOwnership::shard_of_key(3, 2), 1);
        // shards == 1 owns everything without hashing.
        for key in [0u64, 1, u64::MAX] {
            assert_eq!(EdgeOwnership::shard_of_key(key, 1), 0);
            assert!(EdgeOwnership::ALL.owns_key(key));
        }
    }

    #[test]
    fn ownership_partitions_every_key_exactly_once() {
        for shards in [2u32, 3, 4, 7] {
            let slices: Vec<EdgeOwnership> =
                (0..shards).map(|s| EdgeOwnership::of(s, shards)).collect();
            for a in 0..40u32 {
                for b in a + 1..40 {
                    let key = Edge::new(a, b).key();
                    let owners = slices.iter().filter(|o| o.owns_key(key)).count();
                    assert_eq!(owners, 1, "key {key} under {shards} shards");
                }
            }
        }
    }

    /// Merges per-shard results back into a global ranking: the k-way merge
    /// a sharded service performs, in its simplest full-list form.
    fn merge_ranked(mut parts: Vec<Vec<ScoredEdge>>) -> Vec<ScoredEdge> {
        let mut all: Vec<ScoredEdge> = parts.drain(..).flatten().collect();
        all.sort_by(ScoredEdge::ranking_cmp);
        all
    }

    #[test]
    fn sharded_indexes_partition_the_full_index() {
        let g = generators::clique_overlap(40, 35, 5, 11);
        let ops = {
            let mut rng = StdRng::seed_from_u64(0x5AA5);
            let mut ops = Vec::new();
            for _ in 0..50 {
                let (a, b) = (rng.gen_range(0..40u32), rng.gen_range(0..40u32));
                if a == b {
                    continue;
                }
                ops.push(if rng.gen_bool(0.5) {
                    GraphUpdate::Insert(a, b)
                } else {
                    GraphUpdate::Remove(a, b)
                });
            }
            ops
        };
        let mut full = MaintainedIndex::new(&g);
        full.apply_batch(&ops);
        full.check_consistency();

        for shards in [2u32, 4] {
            let mut parts: Vec<MaintainedIndex> = (0..shards)
                .map(|s| MaintainedIndex::new_owned(&g, EdgeOwnership::of(s, shards)))
                .collect();
            for part in &mut parts {
                part.apply_batch(&ops);
                part.check_consistency();
                // Replicas track the full graph regardless of ownership.
                assert_eq!(part.graph().edges(), full.graph().edges());
            }
            for tau in [1u32, 2, 3, 4] {
                let want = full.query(usize::MAX, tau);
                let got = merge_ranked(parts.iter().map(|p| p.query(usize::MAX, tau)).collect());
                assert_eq!(got, want, "shards={shards} τ={tau}");
                // Each shard reports exactly the owned slice of the truth.
                for (s, part) in parts.iter().enumerate() {
                    let own = EdgeOwnership::of(s as u32, shards);
                    let expect: Vec<ScoredEdge> = want
                        .iter()
                        .copied()
                        .filter(|se| own.owns_key(se.edge.key()))
                        .collect();
                    assert_eq!(
                        part.query(usize::MAX, tau),
                        expect,
                        "shard {s}/{shards} τ={tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn sharded_pipeline_matches_sharded_sequential() {
        let g = generators::clique_overlap(30, 25, 4, 7);
        let mut rng = StdRng::seed_from_u64(0x0DD);
        let mut ops = Vec::new();
        for _ in 0..40 {
            let (a, b) = (rng.gen_range(0..30u32), rng.gen_range(0..30u32));
            if a == b {
                continue;
            }
            ops.push(if rng.gen_bool(0.5) {
                GraphUpdate::Insert(a, b)
            } else {
                GraphUpdate::Remove(a, b)
            });
        }
        let own = EdgeOwnership::of(1, 3);
        let mut sequential = MaintainedIndex::new_owned(&g, own);
        sequential.apply_batch(&ops);
        let mut piped = MaintainedIndex::new_owned(&g, own);
        let outcome = piped.apply_batch_parallel(&ops, 2);
        piped.check_consistency();
        assert_eq!(
            outcome.report.recomputed_per_worker.iter().sum::<u64>(),
            outcome.report.recomputed_edges,
            "owned keys recomputed exactly once"
        );
        assert_eq!(piped.graph().edges(), sequential.graph().edges());
        assert_eq!(piped.component_sizes(), sequential.component_sizes());
        for tau in [1, 2, 3] {
            assert_eq!(piped.query(100, tau), sequential.query(100, tau), "τ={tau}");
        }
    }

    #[test]
    fn build_clique_from_scratch_by_insertions() {
        let g = Graph::from_edges(6, &[]);
        let mut index = MaintainedIndex::new(&g);
        for u in 0..6u32 {
            for v in u + 1..6 {
                index.insert_edge(u, v);
            }
        }
        index.check_consistency();
        // Every K6 edge's ego-network is a K4: one size-4 component.
        assert_eq!(index.component_sizes(), vec![4]);
        assert_eq!(index.list_len(4), Some(15));
    }
}
