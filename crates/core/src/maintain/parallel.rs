//! The parallel batch-maintenance pipeline: plan → recompute → commit.
//!
//! [`MaintainedIndex::apply_batch_parallel`] processes an update batch in
//! three phases (DESIGN.md §12):
//!
//! 1. **Plan** (sequential, `pbatch.plan`): walk the batch in order against
//!    the evolving graph — classifying each update exactly as
//!    `apply_batch` would and mutating *only* the adjacency structure —
//!    while computing each applied update's blast radius (the edge set of
//!    `Ĝ_{N(uv)}`, Observations 2–3). Applied updates are partitioned into
//!    conflict-free groups: an update joins every group its blast radius
//!    overlaps (merging them into one when there are several), or starts a
//!    fresh group when it overlaps none. Groups therefore have pairwise
//!    disjoint affected-edge sets — no two groups ever touch the same
//!    forest, which is what licenses phase 2's parallelism. Each affected
//!    edge key is *owned* by the first update that touches it, so every
//!    key is recomputed exactly once.
//! 2. **Recompute** (parallel, `pbatch.recompute`): `std::thread::scope`
//!    workers (the workspace is offline, so the same mechanism as the
//!    parallel index build stands in for rayon) rebuild each owned edge's
//!    forest from the *final* graph via the same
//!    [`compute_forest`](super::compute_forest) kernel the sequential
//!    rebuild path uses. This is a pure function of the post-batch
//!    adjacency structure, so groups can proceed independently in any
//!    order.
//! 3. **Commit** (sequential, `pbatch.commit`): retract every affected
//!    edge's list entries against the *pre-batch* forests in first-discovery
//!    order, install the recomputed forests, and restore entries — the
//!    identical retract/restore bookkeeping as the sequential path.
//!
//! The result is state-identical to sequential `apply_batch`: the per-edge
//! forests invariantly equal the connected-component partition of the
//! edge's ego-network in the current graph (this is exactly what
//! `validate_deep` asserts), so recomputing from the final graph lands on
//! the same partitions the sequential path reaches incrementally; treap
//! shapes depend only on their key sets (deterministic priorities), so
//! identical list contents mean identical structures. Only DSU-internal
//! parent pointers may differ, and those are unobservable.

use super::batch::{BatchStats, UpdateDisposition};
use super::{compute_forest, EdgeDsu, GraphUpdate, MaintainedIndex};
use esd_graph::Edge;
use std::collections::HashSet;

/// Work-balance report from one [`MaintainedIndex::apply_batch_parallel`]
/// call — the pipeline analogue of
/// [`ParallelBuildReport`](crate::index::ParallelBuildReport), surfaced by
/// `esd bench` as the churn benchmark's `work_balance` block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PipelineReport {
    /// Worker threads used by the recompute phase (`0` when the batch
    /// applied nothing and no recompute ran).
    pub threads: usize,
    /// Conflict-free groups formed by the planner.
    pub groups: usize,
    /// Distinct edges whose forests were recomputed (Σ of the per-worker
    /// vector).
    pub recomputed_edges: u64,
    /// Edges recomputed by each worker.
    pub recomputed_per_worker: Vec<u64>,
    /// Union operations performed by each worker.
    pub union_ops_per_worker: Vec<u64>,
}

/// Everything one pipeline run produces: the roll-up, the per-update
/// dispositions (index-aligned with the input batch), and the work-balance
/// report.
#[derive(Debug, Clone)]
pub struct PipelineOutcome {
    /// Applied/noop/rejected totals, identical to what `apply_batch` would
    /// have returned for the same batch.
    pub stats: BatchStats,
    /// One disposition per input update, in input order.
    pub dispositions: Vec<UpdateDisposition>,
    /// Plan/recompute balance numbers.
    pub report: PipelineReport,
}

/// Phase-1 output: dispositions plus the conflict-group structure.
struct BatchPlan {
    dispositions: Vec<UpdateDisposition>,
    /// Affected edge keys in first-discovery order — the retraction (and
    /// restoration) order, identical to the sequential path's.
    order: Vec<u64>,
    /// Keys owned by each conflict-free group (ownership = first group to
    /// touch the key). Concatenated, these are a permutation of `order`.
    owned: Vec<Vec<u64>>,
}

impl MaintainedIndex {
    /// Applies `updates` through the three-phase pipeline using up to
    /// `threads` recompute workers. State-identical to
    /// [`apply_batch`](MaintainedIndex::apply_batch) — same dispositions,
    /// same `H(c)` lists, same component partitions — but the dominant
    /// per-edge forest recomputation runs in parallel across conflict-free
    /// groups. `threads == 1` degenerates to a sequential (but still
    /// phase-split) execution.
    pub fn apply_batch_parallel(
        &mut self,
        updates: &[GraphUpdate],
        threads: usize,
    ) -> PipelineOutcome {
        let threads = threads.max(1);
        let _span = esd_telemetry::span(esd_telemetry::Stage::MaintainBatch);

        let plan = {
            let _plan_span = esd_telemetry::span(esd_telemetry::Stage::PbatchPlan);
            self.plan_batch(updates)
        };

        let (recomputed, per_worker, union_ops_per_worker) = {
            let _rc_span = esd_telemetry::span(esd_telemetry::Stage::PbatchRecompute);
            self.recompute_groups(&plan.owned, threads)
        };

        {
            let _commit_span = esd_telemetry::span(esd_telemetry::Stage::PbatchCommit);
            self.retract_entries(&plan.order);
            for (key, forest) in recomputed {
                match forest {
                    Some(dsu) => {
                        self.forests.insert(key, dsu);
                    }
                    None => {
                        self.forests.remove(&key);
                    }
                }
            }
            self.restore_entries(&plan.order);
        }

        let union_ops: u64 = union_ops_per_worker.iter().sum();
        let recomputed_edges: u64 = plan.owned.iter().map(|g| g.len() as u64).sum();
        esd_telemetry::add(
            esd_telemetry::Metric::MaintainAffected,
            plan.order.len() as u64,
        );
        esd_telemetry::add(esd_telemetry::Metric::MaintainUnionOps, union_ops);
        esd_telemetry::add(esd_telemetry::Metric::PbatchGroups, plan.owned.len() as u64);
        esd_telemetry::add(
            esd_telemetry::Metric::PbatchRecomputedEdges,
            recomputed_edges,
        );
        esd_telemetry::add(esd_telemetry::Metric::PbatchUnionOps, union_ops);
        self.strict_audit();

        PipelineOutcome {
            stats: BatchStats::from_dispositions(&plan.dispositions),
            dispositions: plan.dispositions,
            report: PipelineReport {
                // The recompute phase never spawns more workers than there
                // are owned keys, so report what actually ran.
                threads: per_worker.len(),
                groups: plan.owned.len(),
                recomputed_edges,
                recomputed_per_worker: per_worker,
                union_ops_per_worker,
            },
        }
    }

    /// Phase 1: classify every update against the evolving graph (mutating
    /// only the adjacency structure — forests and lists stay pre-batch) and
    /// partition applied updates into conflict-free groups.
    fn plan_batch(&mut self, updates: &[GraphUpdate]) -> BatchPlan {
        let mut dispositions = Vec::with_capacity(updates.len());
        let mut seen: HashSet<u64> = HashSet::new();
        let mut order: Vec<u64> = Vec::new();
        // Per-group accumulated affected sets (for disjointness tests) and
        // owned keys (for recompute assignment).
        let mut group_keys: Vec<HashSet<u64>> = Vec::new();
        let mut owned: Vec<Vec<u64>> = Vec::new();
        for &update in updates {
            let disposition = self.classify(update);
            dispositions.push(disposition);
            if disposition != UpdateDisposition::Applied {
                continue;
            }
            let (u, v) = update.endpoints();
            let nuv = self.g.common_neighbors(u, v);
            let affected = self.affected_edges(u, v, &nuv);
            // Join every group this blast radius overlaps; overlapping
            // groups merge into one, so groups stay pairwise disjoint.
            let hits: Vec<usize> = group_keys
                .iter()
                .enumerate()
                .filter(|(_, keys)| affected.iter().any(|k| keys.contains(k)))
                .map(|(i, _)| i)
                .collect();
            let gi = if let Some(&first) = hits.first() {
                for &h in hits.iter().skip(1).rev() {
                    let keys = group_keys.remove(h);
                    group_keys[first].extend(keys);
                    let own = owned.remove(h);
                    owned[first].extend(own);
                }
                first
            } else {
                group_keys.push(HashSet::new());
                owned.push(Vec::new());
                group_keys.len() - 1
            };
            for &key in &affected {
                group_keys[gi].insert(key);
                if seen.insert(key) {
                    order.push(key);
                    // Only edges this index owns are recomputed; the rest
                    // stay in `order` for the (self-skipping) retract and
                    // restore bookkeeping but belong to another shard.
                    if self.ownership.owns_key(key) {
                        owned[gi].push(key);
                    }
                }
            }
            match update {
                GraphUpdate::Insert(..) => self.g.insert_edge(u, v),
                GraphUpdate::Remove(..) => self.g.remove_edge(u, v),
            };
        }
        BatchPlan {
            dispositions,
            order,
            owned,
        }
    }

    /// Phase 2: recompute every owned key's forest from the final graph.
    /// Groups are assigned to workers greedily (largest first onto the
    /// least-loaded worker); each worker reads the shared graph immutably.
    #[allow(
        clippy::type_complexity,
        reason = "the three-part return is consumed once by apply_batch_parallel; \
                  naming a struct for it would only add indirection"
    )]
    fn recompute_groups(
        &self,
        owned: &[Vec<u64>],
        threads: usize,
    ) -> (Vec<(u64, Option<EdgeDsu>)>, Vec<u64>, Vec<u64>) {
        let total: usize = owned.iter().map(Vec::len).sum();
        if total == 0 {
            // No owned keys → no workers: the report must show zero
            // threads for zero work, and there is nothing to spawn for.
            return (Vec::new(), Vec::new(), Vec::new());
        }
        let threads = threads.min(total);

        // Greedy LPT assignment of groups to workers.
        let mut group_order: Vec<usize> = (0..owned.len()).collect();
        group_order.sort_by_key(|&gi| std::cmp::Reverse(owned[gi].len()));
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); threads];
        let mut load = vec![0usize; threads];
        for gi in group_order {
            let w = (0..threads).min_by_key(|&w| load[w]).expect("threads >= 1");
            assignment[w].push(gi);
            load[w] += owned[gi].len();
        }

        let g = &self.g;
        let mut results: Vec<(u64, Option<EdgeDsu>)> = Vec::with_capacity(total);
        let mut per_worker = vec![0u64; threads];
        let mut union_ops_per_worker = vec![0u64; threads];
        std::thread::scope(|scope| {
            let handles: Vec<_> = assignment
                .iter()
                .map(|groups| {
                    scope.spawn(move || {
                        let mut out = Vec::new();
                        let mut union_ops = 0u64;
                        for &gi in groups {
                            for &key in &owned[gi] {
                                let (forest, ops) = compute_forest(g, Edge::from_key(key));
                                union_ops += ops;
                                out.push((key, forest));
                            }
                        }
                        (out, union_ops)
                    })
                })
                .collect();
            for (w, handle) in handles.into_iter().enumerate() {
                let (out, union_ops) = handle.join().expect("recompute worker panicked");
                per_worker[w] = out.len() as u64;
                union_ops_per_worker[w] = union_ops;
                results.extend(out);
            }
        });
        (results, per_worker, union_ops_per_worker)
    }
}

#[cfg(test)]
mod tests {
    use super::super::MaintainedIndex;
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;
    use rand::prelude::*;
    use rand::rngs::StdRng;

    fn random_ops(n_vertices: u32, count: usize, seed: u64) -> Vec<GraphUpdate> {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut ops = Vec::with_capacity(count);
        for _ in 0..count {
            let (a, b) = (rng.gen_range(0..n_vertices), rng.gen_range(0..n_vertices));
            ops.push(if rng.gen_bool(0.5) {
                GraphUpdate::Insert(a, b)
            } else {
                GraphUpdate::Remove(a, b)
            });
        }
        ops
    }

    fn assert_state_identical(a: &MaintainedIndex, b: &MaintainedIndex) {
        assert_eq!(a.graph().edges(), b.graph().edges());
        assert_eq!(a.component_sizes(), b.component_sizes());
        for c in a.component_sizes() {
            assert_eq!(a.list_len(c), b.list_len(c), "H({c}) length");
        }
        for tau in [1, 2, 3, 4] {
            for k in [1, 10, 100] {
                assert_eq!(a.query(k, tau), b.query(k, tau), "k={k} τ={tau}");
            }
        }
    }

    #[test]
    fn pipeline_matches_sequential_across_thread_counts() {
        let g = generators::clique_overlap(40, 35, 5, 11);
        let ops = random_ops(40, 60, 0xBA7C);
        let mut sequential = MaintainedIndex::new(&g);
        let seq_stats = sequential.apply_batch(&ops);
        for threads in [1, 2, 4] {
            let mut piped = MaintainedIndex::new(&g);
            let outcome = piped.apply_batch_parallel(&ops, threads);
            assert_eq!(outcome.stats, seq_stats, "threads={threads}");
            piped.check_consistency();
            assert_state_identical(&piped, &sequential);
            assert_eq!(outcome.dispositions.len(), ops.len());
            assert_eq!(
                outcome.report.recomputed_per_worker.iter().sum::<u64>(),
                outcome.report.recomputed_edges,
                "every owned key recomputed exactly once"
            );
        }
    }

    #[test]
    fn pipeline_handles_intra_batch_insert_then_remove() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let before = index.query(40, 1);
        let outcome = index.apply_batch_parallel(
            &[
                GraphUpdate::Insert(n["c"], n["d"]),
                GraphUpdate::Remove(n["c"], n["d"]),
            ],
            2,
        );
        assert_eq!(outcome.stats.applied, 2);
        index.check_consistency();
        assert_eq!(index.query(40, 1), before, "net no-op batch");
    }

    #[test]
    fn pipeline_handles_intra_batch_remove_then_insert() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let before = index.query(40, 1);
        let outcome = index.apply_batch_parallel(
            &[
                GraphUpdate::Remove(n["u"], n["k"]),
                GraphUpdate::Insert(n["u"], n["k"]),
            ],
            3,
        );
        assert_eq!(outcome.stats.applied, 2);
        index.check_consistency();
        assert_eq!(index.query(40, 1), before, "net no-op batch");
    }

    #[test]
    fn empty_and_all_skipped_batches() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let outcome = index.apply_batch_parallel(&[], 4);
        assert_eq!(outcome.stats, BatchStats::default());
        assert_eq!(outcome.report.groups, 0);
        assert_eq!(outcome.report.threads, 0, "zero workers for zero work");
        assert!(outcome.report.recomputed_per_worker.is_empty());
        let outcome = index.apply_batch_parallel(
            &[
                GraphUpdate::Insert(n["f"], n["g"]), // present → noop
                GraphUpdate::Insert(9, 9),           // self-loop → rejected
            ],
            4,
        );
        assert_eq!(
            (
                outcome.stats.applied,
                outcome.stats.noop,
                outcome.stats.rejected
            ),
            (0, 1, 1)
        );
        assert_eq!(outcome.report.recomputed_edges, 0);
        assert_eq!(outcome.report.threads, 0, "all-noop batch spawns nothing");
        index.check_consistency();
    }

    #[test]
    fn disjoint_updates_form_separate_groups() {
        // Two K5s far apart: updates inside each never share blast radii.
        let mut b = esd_graph::GraphBuilder::new(10);
        for base in [0u32, 5] {
            for i in 0..5 {
                for j in i + 1..5 {
                    if (base, i, j) != (0, 0, 1) && (base, i, j) != (5, 0, 1) {
                        b.add_edge(base + i, base + j);
                    }
                }
            }
        }
        let g = b.build();
        let mut index = MaintainedIndex::new(&g);
        let outcome =
            index.apply_batch_parallel(&[GraphUpdate::Insert(0, 1), GraphUpdate::Insert(5, 6)], 2);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.report.groups, 2, "disjoint blast radii");
        index.check_consistency();
    }

    #[test]
    fn overlapping_updates_share_a_group() {
        let g = generators::complete(6);
        let mut index = MaintainedIndex::new(&g);
        let outcome =
            index.apply_batch_parallel(&[GraphUpdate::Remove(0, 1), GraphUpdate::Remove(0, 2)], 2);
        assert_eq!(outcome.stats.applied, 2);
        assert_eq!(outcome.report.groups, 1, "K6 updates always conflict");
        index.check_consistency();
    }

    #[test]
    fn vertex_growth_during_plan_phase() {
        let g = esd_graph::Graph::from_edges(3, &[(0, 1)]);
        let mut sequential = MaintainedIndex::new(&g);
        let mut piped = MaintainedIndex::new(&g);
        let ops = [
            GraphUpdate::Insert(7, 0),
            GraphUpdate::Insert(7, 1),
            GraphUpdate::Remove(9, 0), // out of range even after growth → noop
        ];
        let seq_stats = sequential.apply_batch(&ops);
        let outcome = piped.apply_batch_parallel(&ops, 2);
        assert_eq!(outcome.stats, seq_stats);
        assert_eq!(outcome.stats.noop, 1);
        assert_state_identical(&piped, &sequential);
    }
}
