//! Top-k edge structural diversity search — the algorithms of
//! *"Efficient Top-k Edge Structural Diversity Search"* (ICDE 2020).
//!
//! The **structural diversity** `score_τ(u, v)` of an edge is the number of
//! connected components of its ego-network `G_{N(uv)}` (the subgraph induced
//! by the common neighbourhood of `u` and `v`) that contain at least `τ`
//! vertices. Given `k` and `τ`, the task is to report the `k` edges with
//! the highest scores.
//!
//! Three solutions are implemented, mirroring the paper:
//!
//! * [`score`] — exact per-edge scores by BFS over the ego-network, and the
//!   naive all-edges baseline.
//! * [`online`] — the *dequeue-twice* search framework (Algorithm 1) with
//!   the min-degree and common-neighbour upper bounds ([`bounds`]):
//!   `OnlineBFS` and `OnlineBFS+`.
//! * [`index`] — the `ESDIndex` (§IV): near-optimal `O(k log m + log n)`
//!   queries from an `O(αm)`-space structure, built either by per-edge BFS
//!   (Algorithm 2), by 4-clique enumeration with union–find (Algorithm 3),
//!   or in parallel (PESDIndex+, §IV-E).
//! * [`maintain`] — dynamic maintenance of the index under edge insertions
//!   (Algorithm 4) and deletions (Algorithm 5).
//!
//! Additional modules: [`baselines`] (the CN / BT rankings used by the
//! paper's case studies), [`vertex_sd`] (the earlier top-k *vertex*
//! structural diversity problem, for context/comparison), and [`fixtures`]
//! (a faithful reconstruction of the paper's running-example graph used by
//! the golden tests).
//!
//! ## Result conventions
//!
//! All top-k routines return results sorted by `(score desc, edge asc)` and
//! report only edges with **positive** score: an edge whose ego-network has
//! no component of size ≥ τ carries no structural-diversity signal, and the
//! index cannot (and per the paper, does not) store score-0 entries. A
//! result may therefore contain fewer than `k` edges.

#![warn(missing_docs)]

pub mod audit;
pub mod baselines;
pub mod bounds;
pub mod explain;
pub mod family;
pub mod fixtures;
pub mod index;
pub mod maintain;
pub mod online;
pub mod score;
pub mod vertex_sd;

pub use family::{Family, FamilyApplyReport, FamilySuite};
pub use index::EsdIndex;
pub use maintain::{EdgeOwnership, MaintainedIndex};
pub use online::{online_topk, UpperBound};

use esd_graph::Edge;

/// An edge together with its structural diversity score.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ScoredEdge {
    /// The edge (canonical orientation).
    pub edge: Edge,
    /// Its structural diversity at the query threshold.
    pub score: u32,
}

impl ScoredEdge {
    /// The total order used for all top-k results: higher score first,
    /// ties broken by ascending edge id — making every algorithm in this
    /// crate return byte-identical rankings.
    pub fn ranking_cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.edge.cmp(&other.edge))
    }
}

impl std::fmt::Display for ScoredEdge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.edge, self.score)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranking_order() {
        let a = ScoredEdge {
            edge: Edge::new(0, 1),
            score: 3,
        };
        let b = ScoredEdge {
            edge: Edge::new(0, 2),
            score: 3,
        };
        let c = ScoredEdge {
            edge: Edge::new(0, 1),
            score: 5,
        };
        let mut v = vec![b, a, c];
        v.sort_by(ScoredEdge::ranking_cmp);
        assert_eq!(v, vec![c, a, b]);
    }
}
