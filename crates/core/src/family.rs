//! The query-family layer: three structural-diversity variants maintained
//! beside the component-based index, behind one request vocabulary.
//!
//! The paper's `score_τ(u, v)` — the number of size-≥ τ connected
//! components of the common-neighbourhood ego network `G_{N(uv)}` — is one
//! member of a family of ego-network diversity measures. This module
//! implements the other three the roadmap calls for, all over the same
//! ego substrate:
//!
//! * **[`Family::Truss`]** — *truss-based diversity* (after arXiv
//!   2007.05437): the number of ego components whose **3-truss core**
//!   holds at least τ vertices. The 3-truss of a graph is exactly the
//!   union of its triangles — every edge of a triangle has support ≥ 1
//!   inside the set of triangle edges, so that set satisfies the 3-truss
//!   condition and is maximal — which gives the production kernel a cheap
//!   per-component triangle-vertex count while the differential oracle
//!   runs the full bucket-peeling [`esd_graph::truss::truss_decomposition`]
//!   on the materialised ego subgraph. Since a component's core is a
//!   subset of the component, the truss score can never exceed the
//!   component score at the same τ — a cross-family invariant the
//!   agreement harness pins.
//! * **[`Family::ParameterFree`]** — *parameter-free diversity* (after
//!   arXiv 1908.11612): no τ knob. Each edge chooses its own threshold
//!   `τ*(e) = max(1, ⌈√h⌉)` from its neighbourhood size `h = |N(u)∩N(v)|`
//!   and scores as the component-based measure at that τ*. By construction
//!   it agrees with [`Family::Component`] at τ*(e) — the second pinned
//!   invariant.
//! * **[`Family::EgoBetweenness`]** — *ego-betweenness* (after arXiv
//!   2107.10052): the total betweenness mass of the ego network. Summed
//!   over all edges of a graph, Brandes betweenness equals the sum of
//!   pairwise shortest-path distances over connected pairs, so the mass is
//!   the exact integer `Σ_{s<t connected} d(s, t)` — the production kernel
//!   computes it with per-member BFS distance sums while the oracle sums
//!   [`esd_graph::betweenness::edge_betweenness`] over the ego subgraph.
//!   τ does not apply and is ignored.
//!
//! [`FamilySuite`] holds the maintained per-edge score profiles for the
//! three non-component families, beside (not inside) [`MaintainedIndex`]:
//! the component index keeps its forests/treaps machinery untouched, and
//! the suite keeps one profile per **owned** edge, recomputed per update
//! window over the family-agnostic blast radius (the same radius the
//! component pipeline plans: the updated edge, edges incident to its
//! endpoints, and ego pairs of its common neighbourhood — all enumerated
//! against the post-window graph, which covers every membership change
//! because the update that caused it contributes its own incident edges).
//!
//! [`MaintainedIndex`]: crate::MaintainedIndex

use crate::maintain::{EdgeOwnership, GraphUpdate};
use crate::score::score_from_sizes;
use crate::ScoredEdge;
use esd_graph::{DynamicGraph, Edge, Graph, VertexId};
use std::collections::{BTreeSet, HashMap};

/// Which diversity measure a query ranks by.
///
/// The default is [`Family::Component`] — the paper's measure, served by
/// the component-based [`MaintainedIndex`](crate::MaintainedIndex) — so a
/// family-unspecified request behaves exactly as before the family layer
/// existed. The other three are maintained by [`FamilySuite`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum Family {
    /// Component-based structural diversity (the paper's Definition 2).
    #[default]
    Component,
    /// Truss-based diversity: ego components counted only when their
    /// 3-truss core reaches τ vertices.
    Truss,
    /// Parameter-free diversity: each edge scores at its own
    /// `τ*(e) = max(1, ⌈√h⌉)`; the query's τ is ignored.
    ParameterFree,
    /// Total ego-network betweenness mass; the query's τ is ignored.
    EgoBetweenness,
}

impl Family {
    /// Every family, in declaration order.
    pub const ALL: [Family; 4] = [
        Family::Component,
        Family::Truss,
        Family::ParameterFree,
        Family::EgoBetweenness,
    ];

    /// The families [`FamilySuite`] maintains (everything but
    /// [`Family::Component`], which the component index serves).
    pub const MAINTAINED: [Family; 3] =
        [Family::Truss, Family::ParameterFree, Family::EgoBetweenness];

    /// The stable wire name (`component`, `truss`, `parameter-free`,
    /// `ego-betweenness`) used by the protocol, the CLI, and telemetry.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            Family::Component => "component",
            Family::Truss => "truss",
            Family::ParameterFree => "parameter-free",
            Family::EgoBetweenness => "ego-betweenness",
        }
    }

    /// Parses a wire name back into a family — the inverse of
    /// [`Family::name`], also accepting the short aliases `pf` and
    /// `betweenness`. `None` for unknown names.
    #[must_use]
    pub fn parse(name: &str) -> Option<Family> {
        match name {
            "component" => Some(Family::Component),
            "truss" => Some(Family::Truss),
            "parameter-free" | "pf" => Some(Family::ParameterFree),
            "ego-betweenness" | "betweenness" => Some(Family::EgoBetweenness),
            _ => None,
        }
    }

    /// Whether the query's τ parameter participates in this family's
    /// score. Families that ignore τ still accept it on the wire (it must
    /// be ≥ 1 as always) so the request shape is uniform.
    #[must_use]
    pub const fn uses_tau(self) -> bool {
        matches!(self, Family::Component | Family::Truss)
    }
}

impl std::fmt::Display for Family {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The per-edge threshold of the parameter-free family:
/// `τ*(e) = max(1, ⌈√h⌉)` for a common neighbourhood of `h` vertices.
/// Exact integer arithmetic — no floating-point square root.
#[must_use]
pub fn tau_star(h: usize) -> u32 {
    let mut t: u32 = 1;
    while (t as usize) * (t as usize) < h {
        t += 1;
    }
    t
}

/// The maintained per-edge state: one score profile per family.
#[derive(Debug, Clone, PartialEq, Eq)]
struct EdgeProfiles {
    /// Sorted multiset of 3-truss core sizes, one entry per ego component
    /// with a non-empty core (zero-core components are dropped — they can
    /// never reach any τ ≥ 1).
    truss_cores: Vec<u32>,
    /// The parameter-free score (component score at `τ*(e)`).
    pf: u32,
    /// Total ego-betweenness mass `Σ_{s<t connected} d(s, t)`, saturated
    /// at `u32::MAX`.
    betweenness: u32,
}

impl EdgeProfiles {
    /// Recomputes all three profiles for edge `(u, v)` from scratch
    /// against `g` — one ego materialisation shared by every family.
    fn compute(g: &DynamicGraph, u: VertexId, v: VertexId) -> Self {
        let ego = EgoNetwork::around(g, u, v);
        let labels = ego.component_labels();
        let comp_count = labels.iter().copied().max().map_or(0, |m| m as usize + 1);
        let mut comp_sizes = vec![0u32; comp_count];
        for &l in &labels {
            comp_sizes[l as usize] += 1;
        }
        // Truss: per-component count of members sitting in ≥ 1 ego
        // triangle (the 3-truss core — see the module doc for why the
        // 3-truss is exactly the union of triangles).
        let in_triangle = ego.triangle_members();
        let mut truss_cores = vec![0u32; comp_count];
        for (i, &l) in labels.iter().enumerate() {
            if in_triangle[i] {
                truss_cores[l as usize] += 1;
            }
        }
        truss_cores.retain(|&c| c > 0);
        truss_cores.sort_unstable();
        // Parameter-free: component score at τ*(h).
        let mut sorted_sizes = comp_sizes;
        sorted_sizes.sort_unstable();
        let pf = score_from_sizes(&sorted_sizes, tau_star(ego.len()));
        Self {
            truss_cores,
            pf,
            betweenness: ego.distance_mass(),
        }
    }

    /// The profile's score under `family` at threshold `tau`.
    fn score(&self, family: Family, tau: u32) -> u32 {
        match family {
            Family::Truss => score_from_sizes(&self.truss_cores, tau),
            Family::ParameterFree => self.pf,
            Family::EgoBetweenness => self.betweenness,
            Family::Component => {
                unreachable!("component queries are served by MaintainedIndex")
            }
        }
    }
}

/// A materialised ego network: the common neighbourhood of one edge with
/// its induced adjacency, re-indexed to local vertex ids.
struct EgoNetwork {
    /// Local adjacency, sorted; `adj[i]` are the local indices adjacent
    /// to member `i`.
    adj: Vec<Vec<u32>>,
}

impl EgoNetwork {
    fn around(g: &DynamicGraph, u: VertexId, v: VertexId) -> Self {
        let members = g.common_neighbors(u, v);
        let mut adj = Vec::with_capacity(members.len());
        let mut buf: Vec<VertexId> = Vec::new();
        for &m in &members {
            buf.clear();
            esd_graph::intersect::intersect_into(g.neighbors(m), &members, &mut buf);
            adj.push(
                buf.iter()
                    .map(|w| members.binary_search(w).expect("member") as u32)
                    .collect(),
            );
        }
        Self { adj }
    }

    fn len(&self) -> usize {
        self.adj.len()
    }

    /// Connected-component label per member (BFS over the local adjacency).
    fn component_labels(&self) -> Vec<u32> {
        let n = self.len();
        let mut labels = vec![u32::MAX; n];
        let mut next = 0u32;
        let mut queue = Vec::new();
        for start in 0..n {
            if labels[start] != u32::MAX {
                continue;
            }
            labels[start] = next;
            queue.push(start);
            while let Some(x) = queue.pop() {
                for &y in &self.adj[x] {
                    if labels[y as usize] == u32::MAX {
                        labels[y as usize] = next;
                        queue.push(y as usize);
                    }
                }
            }
            next += 1;
        }
        labels
    }

    /// Which members sit in at least one ego triangle — equivalently,
    /// which members the ego network's 3-truss retains.
    fn triangle_members(&self) -> Vec<bool> {
        let n = self.len();
        let mut in_tri = vec![false; n];
        for x in 0..n {
            for &y in &self.adj[x] {
                let y = y as usize;
                if y <= x {
                    continue;
                }
                // Sorted-merge the two neighbour lists: every common
                // entry closes a triangle {x, y, z}.
                let (ax, ay) = (&self.adj[x], &self.adj[y]);
                let (mut i, mut j) = (0, 0);
                while i < ax.len() && j < ay.len() {
                    match ax[i].cmp(&ay[j]) {
                        std::cmp::Ordering::Less => i += 1,
                        std::cmp::Ordering::Greater => j += 1,
                        std::cmp::Ordering::Equal => {
                            in_tri[x] = true;
                            in_tri[y] = true;
                            in_tri[ax[i] as usize] = true;
                            i += 1;
                            j += 1;
                        }
                    }
                }
            }
        }
        in_tri
    }

    /// `Σ_{s<t connected} d(s, t)` over the ego network — the total
    /// betweenness mass — via one BFS per member, saturated at `u32::MAX`.
    fn distance_mass(&self) -> u32 {
        let n = self.len();
        let mut total: u64 = 0;
        let mut dist = vec![u32::MAX; n];
        let mut queue = std::collections::VecDeque::new();
        for s in 0..n {
            dist.iter_mut().for_each(|d| *d = u32::MAX);
            dist[s] = 0;
            queue.push_back(s);
            while let Some(x) = queue.pop_front() {
                for &y in &self.adj[x] {
                    if dist[y as usize] == u32::MAX {
                        dist[y as usize] = dist[x] + 1;
                        queue.push_back(y as usize);
                    }
                }
            }
            total += dist
                .iter()
                .filter(|&&d| d != u32::MAX)
                .map(|&d| u64::from(d))
                .sum::<u64>();
        }
        // Every connected pair was counted once from each endpoint.
        u32::try_from(total / 2).unwrap_or(u32::MAX)
    }
}

/// What one [`FamilySuite::apply`] window did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FamilyApplyReport {
    /// Owned edges in the window's blast radius (recomputed + deleted).
    pub affected: usize,
    /// Owned, still-present edges whose profiles were recomputed.
    pub recomputed: usize,
}

/// Maintained score state for every non-component [`Family`], kept beside
/// the component index: one [`EdgeProfiles`] per **owned** edge, updated
/// per window by [`FamilySuite::apply`] and ranked by
/// [`FamilySuite::query`].
#[derive(Debug, Clone, PartialEq)]
pub struct FamilySuite {
    ownership: EdgeOwnership,
    /// Edge key → (edge, profiles), for every owned edge of the graph.
    profiles: HashMap<u64, (Edge, EdgeProfiles)>,
}

impl FamilySuite {
    /// Builds the suite for the full edge space of `g`.
    #[must_use]
    pub fn new(g: &Graph) -> Self {
        Self::new_owned(g, EdgeOwnership::ALL)
    }

    /// Builds the suite maintaining only the edges `ownership` owns —
    /// the sharded-serving construction, mirroring
    /// [`MaintainedIndex::new_owned`](crate::MaintainedIndex::new_owned).
    #[must_use]
    pub fn new_owned(g: &Graph, ownership: EdgeOwnership) -> Self {
        Self::rebuild(&DynamicGraph::from_graph(g), ownership)
    }

    /// From-scratch reconstruction against `g` — the recompute oracle the
    /// agreement harness compares maintained state to, and what crash
    /// recovery runs over the recovered graph.
    #[must_use]
    pub fn rebuild(g: &DynamicGraph, ownership: EdgeOwnership) -> Self {
        let mut profiles = HashMap::new();
        for e in g.edges() {
            if ownership.owns_key(e.key()) {
                profiles.insert(e.key(), (e, EdgeProfiles::compute(g, e.u, e.v)));
            }
        }
        Self {
            ownership,
            profiles,
        }
    }

    /// The edge-space slice this suite maintains.
    #[must_use]
    pub fn ownership(&self) -> EdgeOwnership {
        self.ownership
    }

    /// Number of owned edges currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether no owned edge is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// Incorporates one applied update window. `g` must be the graph
    /// **after** the window (the component index's
    /// [`graph()`](crate::MaintainedIndex::graph) right after
    /// `apply_batch_parallel`). The blast radius of each update `(u, v)`
    /// is family-agnostic: the edge itself, every edge incident to `u` or
    /// `v`, and every ego pair of `N(u) ∩ N(v)` — enumerated against the
    /// post-window graph, which covers membership changes caused by other
    /// updates in the same window because *those* updates contribute their
    /// own incident edges. Affected edges no longer present are dropped;
    /// the rest are recomputed, fanned out over `threads` workers.
    pub fn apply(
        &mut self,
        g: &DynamicGraph,
        updates: &[GraphUpdate],
        threads: usize,
    ) -> FamilyApplyReport {
        let _span = esd_telemetry::span(esd_telemetry::Stage::FamilyApply);
        let in_range = |x: VertexId| (x as usize) < g.num_vertices();
        let neighbors = |x: VertexId| -> &[VertexId] {
            if in_range(x) {
                g.neighbors(x)
            } else {
                &[]
            }
        };
        let mut candidates: BTreeSet<Edge> = BTreeSet::new();
        for upd in updates {
            let (u, v) = upd.endpoints();
            if u == v {
                continue; // rejected by the index; no state can change
            }
            candidates.insert(Edge::new(u, v));
            for &w in neighbors(u) {
                candidates.insert(Edge::new(u, w));
            }
            for &w in neighbors(v) {
                candidates.insert(Edge::new(v, w));
            }
            if in_range(u) && in_range(v) {
                let members = g.common_neighbors(u, v);
                for (a, b) in crate::maintain::ego_edges(g, &members) {
                    candidates.insert(Edge::new(a, b));
                }
            }
        }
        let owned: Vec<Edge> = candidates
            .into_iter()
            .filter(|e| self.ownership.owns_key(e.key()))
            .collect();
        let affected = owned.len();
        let (live, dead): (Vec<Edge>, Vec<Edge>) = owned
            .into_iter()
            .partition(|e| in_range(e.u) && in_range(e.v) && g.has_edge(e.u, e.v));
        for e in &dead {
            self.profiles.remove(&e.key());
        }
        let recomputed = live.len();
        let threads = threads.max(1).min(recomputed.max(1));
        if threads <= 1 {
            for e in live {
                self.profiles
                    .insert(e.key(), (e, EdgeProfiles::compute(g, e.u, e.v)));
            }
        } else {
            let chunk = recomputed.div_ceil(threads);
            let batches: Vec<Vec<(Edge, EdgeProfiles)>> = std::thread::scope(|scope| {
                let handles: Vec<_> = live
                    .chunks(chunk)
                    .map(|c| {
                        scope.spawn(move || {
                            c.iter()
                                .map(|&e| (e, EdgeProfiles::compute(g, e.u, e.v)))
                                .collect()
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("family recompute worker panicked"))
                    .collect()
            });
            for batch in batches {
                for (e, prof) in batch {
                    self.profiles.insert(e.key(), (e, prof));
                }
            }
        }
        esd_telemetry::add(
            esd_telemetry::Metric::FamilyRecomputedEdges,
            recomputed as u64,
        );
        FamilyApplyReport {
            affected,
            recomputed,
        }
    }

    /// Top-`k` owned edges under `family` at threshold `tau`, ranked by
    /// [`ScoredEdge::ranking_cmp`] (score desc, edge asc — the same total
    /// order every component-based query uses, so per-shard answers merge
    /// byte-identically). Only positive scores are reported. Panics on
    /// `tau == 0` or [`Family::Component`] (served by the index, not the
    /// suite).
    #[must_use]
    pub fn query(&self, family: Family, k: usize, tau: u32) -> Vec<ScoredEdge> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        assert!(
            family != Family::Component,
            "component queries are served by MaintainedIndex"
        );
        let _span = esd_telemetry::span(esd_telemetry::Stage::FamilyQuery);
        let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<RankEntry>> =
            std::collections::BinaryHeap::with_capacity(k.saturating_add(1).min(4096));
        for &(edge, ref prof) in self.profiles.values() {
            let score = prof.score(family, tau);
            if score == 0 {
                continue;
            }
            heap.push(std::cmp::Reverse(RankEntry(ScoredEdge { edge, score })));
            if heap.len() > k {
                heap.pop();
            }
        }
        let mut out: Vec<ScoredEdge> = heap.into_iter().map(|r| r.0 .0).collect();
        out.sort_by(ScoredEdge::ranking_cmp);
        esd_telemetry::add(esd_telemetry::Metric::FamilyQueries, 1);
        out
    }
}

/// Heap adapter ordering [`ScoredEdge`] by ranking (best = greatest), so a
/// min-heap of `Reverse<RankEntry>` keeps the k best.
#[derive(PartialEq, Eq)]
struct RankEntry(ScoredEdge);

impl Ord for RankEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other.0.ranking_cmp(&self.0)
    }
}

impl PartialOrd for RankEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Independent recompute oracles for the differential agreement harness.
///
/// Each oracle scores one edge from a **static** [`Graph`] through a code
/// path disjoint from the maintained kernels: the truss oracle materialises
/// the ego subgraph and runs the full bucket-peeling
/// [`truss_decomposition`](esd_graph::truss::truss_decomposition); the
/// betweenness oracle sums Brandes
/// [`edge_betweenness`](esd_graph::betweenness::edge_betweenness) over the
/// ego subgraph; the parameter-free oracle goes through the component
/// machinery of [`crate::score`]. Agreement between a maintained
/// [`FamilySuite`] and these oracles is therefore evidence the cheap
/// kernels compute the definitions, not merely themselves.
pub mod oracle {
    use super::{tau_star, Family, ScoredEdge};
    use crate::score::{component_sizes, naive_topk, score_from_sizes};
    use esd_graph::{Graph, VertexId};

    /// Materialises the ego subgraph `G_{N(uv)}` (induced on the common
    /// neighbourhood) as a standalone graph with local vertex ids.
    fn ego_subgraph(g: &Graph, u: VertexId, v: VertexId) -> Graph {
        let members = g.common_neighbors(u, v);
        esd_graph::subgraph::induced(g, &members).0
    }

    /// Sorted multiset of per-component 3-truss core sizes of the ego
    /// network, via full truss decomposition: a vertex is in the core iff
    /// it is incident to an edge of trussness ≥ 3.
    #[must_use]
    pub fn truss_core_sizes(g: &Graph, u: VertexId, v: VertexId) -> Vec<u32> {
        let ego = ego_subgraph(g, u, v);
        let trussness = esd_graph::truss::truss_decomposition(&ego);
        let mut in_core = vec![false; ego.num_vertices()];
        for (eid, e) in ego.edges().iter().enumerate() {
            if trussness[eid] >= 3 {
                in_core[e.u as usize] = true;
                in_core[e.v as usize] = true;
            }
        }
        let (labels, sizes) = esd_graph::traversal::connected_components(&ego);
        let mut cores = vec![0u32; sizes.len()];
        for (x, &l) in labels.iter().enumerate() {
            if in_core[x] {
                cores[l as usize] += 1;
            }
        }
        cores.retain(|&c| c > 0);
        cores.sort_unstable();
        cores
    }

    /// Truss-based diversity of `(u, v)` at threshold `tau`.
    #[must_use]
    pub fn truss_score(g: &Graph, u: VertexId, v: VertexId, tau: u32) -> u32 {
        score_from_sizes(&truss_core_sizes(g, u, v), tau)
    }

    /// Parameter-free diversity of `(u, v)`: the component score at
    /// `τ*(e)`, computed through the static component machinery.
    #[must_use]
    pub fn parameter_free_score(g: &Graph, u: VertexId, v: VertexId) -> u32 {
        let members = g.common_neighbors(u, v);
        score_from_sizes(&component_sizes(g, u, v), tau_star(members.len()))
    }

    /// Ego-betweenness mass of `(u, v)`: Brandes edge betweenness summed
    /// over the ego subgraph, rounded back to the exact integer it equals
    /// (`Σ_{s<t connected} d(s, t)`).
    #[must_use]
    pub fn ego_betweenness_score(g: &Graph, u: VertexId, v: VertexId) -> u32 {
        let ego = ego_subgraph(g, u, v);
        let total: f64 = esd_graph::betweenness::edge_betweenness(&ego).iter().sum();
        let mass = total.round();
        if mass >= f64::from(u32::MAX) {
            u32::MAX
        } else {
            mass as u32
        }
    }

    /// One edge's score under any family at threshold `tau`.
    #[must_use]
    pub fn score(g: &Graph, family: Family, u: VertexId, v: VertexId, tau: u32) -> u32 {
        match family {
            Family::Component => crate::score::edge_score(g, u, v, tau),
            Family::Truss => truss_score(g, u, v, tau),
            Family::ParameterFree => parameter_free_score(g, u, v),
            Family::EgoBetweenness => ego_betweenness_score(g, u, v),
        }
    }

    /// Reference top-k under any family: score every edge through the
    /// oracle, keep positives, rank by [`ScoredEdge::ranking_cmp`].
    #[must_use]
    pub fn topk(g: &Graph, family: Family, k: usize, tau: u32) -> Vec<ScoredEdge> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        if family == Family::Component {
            return naive_topk(g, k, tau);
        }
        let mut scored: Vec<ScoredEdge> = g
            .edges()
            .iter()
            .map(|&edge| ScoredEdge {
                edge,
                score: score(g, family, edge.u, edge.v, tau),
            })
            .filter(|s| s.score > 0)
            .collect();
        scored.sort_by(ScoredEdge::ranking_cmp);
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    fn suite_and_graph(seed: u64) -> (FamilySuite, Graph) {
        let g = generators::clique_overlap(80, 60, 4, seed);
        (FamilySuite::new(&g), g)
    }

    #[test]
    fn family_names_round_trip() {
        for f in Family::ALL {
            assert_eq!(Family::parse(f.name()), Some(f));
        }
        assert_eq!(Family::parse("pf"), Some(Family::ParameterFree));
        assert_eq!(Family::parse("betweenness"), Some(Family::EgoBetweenness));
        assert_eq!(Family::parse("nope"), None);
        assert_eq!(Family::default(), Family::Component);
    }

    #[test]
    fn tau_star_is_ceil_sqrt() {
        for (h, expect) in [(0, 1), (1, 1), (2, 2), (4, 2), (5, 3), (9, 3), (10, 4)] {
            assert_eq!(tau_star(h), expect, "h={h}");
        }
    }

    #[test]
    fn kernels_agree_with_oracles_on_fig1() {
        let (g, _) = fig1();
        let suite = FamilySuite::new(&g);
        for tau in 1..=4 {
            for family in Family::MAINTAINED {
                assert_eq!(
                    suite.query(family, usize::MAX, tau),
                    oracle::topk(&g, family, usize::MAX, tau),
                    "{family} tau={tau}"
                );
            }
        }
    }

    #[test]
    fn kernels_agree_with_oracles_on_surrogates() {
        for seed in [3, 17] {
            let (suite, g) = suite_and_graph(seed);
            for tau in [1, 2, 3] {
                for family in Family::MAINTAINED {
                    assert_eq!(
                        suite.query(family, usize::MAX, tau),
                        oracle::topk(&g, family, usize::MAX, tau),
                        "seed={seed} {family} tau={tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn truss_lower_bounds_component_and_pf_matches_tau_star() {
        let (_, g) = suite_and_graph(11);
        for e in g.edges() {
            for tau in 1..=4 {
                assert!(
                    oracle::truss_score(&g, e.u, e.v, tau)
                        <= crate::score::edge_score(&g, e.u, e.v, tau),
                    "truss exceeds component at {e:?} tau={tau}"
                );
            }
            let h = g.common_neighbors(e.u, e.v).len();
            assert_eq!(
                oracle::parameter_free_score(&g, e.u, e.v),
                crate::score::edge_score(&g, e.u, e.v, tau_star(h)),
                "pf disagrees with component at tau* for {e:?}"
            );
        }
    }

    #[test]
    fn apply_matches_rebuild_under_churn() {
        let (mut suite, g) = suite_and_graph(5);
        let mut dg = DynamicGraph::from_graph(&g);
        let edges = dg.edges();
        // A window mixing removals, duplicate inserts, and fresh inserts.
        let updates = vec![
            GraphUpdate::Remove(edges[0].u, edges[0].v),
            GraphUpdate::Remove(edges[7].u, edges[7].v),
            GraphUpdate::Insert(0, 79),
            GraphUpdate::Insert(edges[3].u, edges[3].v), // duplicate
            GraphUpdate::Insert(1, 200),                 // fresh vertex
        ];
        for u in &updates {
            let (a, b) = u.endpoints();
            if u.is_insert() {
                dg.ensure_vertex(a);
                dg.ensure_vertex(b);
                dg.insert_edge(a, b);
            } else {
                dg.remove_edge(a, b);
            }
        }
        for threads in [1, 3] {
            let mut maintained = suite.clone();
            let report = maintained.apply(&dg, &updates, threads);
            assert!(report.affected >= report.recomputed);
            assert_eq!(
                maintained,
                FamilySuite::rebuild(&dg, EdgeOwnership::ALL),
                "threads={threads}"
            );
        }
        suite.apply(&dg, &updates, 2);
        assert_eq!(suite.len(), dg.num_edges());
    }

    #[test]
    fn owned_suites_partition_the_full_suite() {
        let (full, g) = suite_and_graph(23);
        let shards = 3;
        let parts: Vec<FamilySuite> = (0..shards)
            .map(|i| FamilySuite::new_owned(&g, EdgeOwnership::of(i, shards)))
            .collect();
        assert_eq!(
            parts.iter().map(FamilySuite::len).sum::<usize>(),
            full.len()
        );
        // Merging per-shard rankings under the total order reproduces the
        // full ranking.
        for family in Family::MAINTAINED {
            let mut merged: Vec<ScoredEdge> = parts
                .iter()
                .flat_map(|p| p.query(family, usize::MAX, 1))
                .collect();
            merged.sort_by(ScoredEdge::ranking_cmp);
            assert_eq!(merged, full.query(family, usize::MAX, 1), "{family}");
        }
    }

    #[test]
    fn query_respects_k_and_positivity() {
        let (suite, _) = suite_and_graph(29);
        for family in Family::MAINTAINED {
            let all = suite.query(family, usize::MAX, 1);
            assert!(all.iter().all(|s| s.score > 0));
            let top3 = suite.query(family, 3, 1);
            assert_eq!(top3, all[..all.len().min(3)]);
        }
    }

    #[test]
    #[should_panic(expected = "served by MaintainedIndex")]
    fn component_queries_are_refused() {
        let (suite, _) = suite_and_graph(1);
        let _ = suite.query(Family::Component, 5, 1);
    }
}
