//! The CN and BT baselines of the paper's case studies (Exp-7/8).
//!
//! * **CN** ranks edges by the number of common neighbours — it surfaces
//!   strong ties inside one dense community.
//! * **BT** ranks edges by betweenness centrality — it surfaces weak
//!   "barbell" bridges whose endpoints share few neighbours.
//!
//! The case studies contrast both with structural diversity, which finds
//! strong ties that *span several* social contexts.

use crate::ScoredEdge;
use esd_graph::{betweenness, Edge, Graph};

/// Top-k edges by common-neighbour count (`CN`), ranked
/// `(count desc, edge asc)`; zero-count edges are omitted.
pub fn topk_common_neighbors(g: &Graph, k: usize) -> Vec<ScoredEdge> {
    let mut scored: Vec<ScoredEdge> = g
        .edges()
        .iter()
        .map(|e| ScoredEdge {
            edge: *e,
            score: g.common_neighbor_count(e.u, e.v) as u32,
        })
        .filter(|s| s.score > 0)
        .collect();
    scored.sort_by(ScoredEdge::ranking_cmp);
    scored.truncate(k);
    scored
}

/// An edge with a real-valued baseline score (betweenness).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WeightedEdge {
    /// The edge.
    pub edge: Edge,
    /// Its betweenness value.
    pub weight: f64,
}

/// Top-k edges by exact betweenness centrality (`BT`). `O(nm)` — use
/// [`topk_betweenness_sampled`] beyond a few thousand vertices.
pub fn topk_betweenness(g: &Graph, k: usize) -> Vec<WeightedEdge> {
    rank_weighted(g, betweenness::edge_betweenness(g), k)
}

/// Top-k edges by pivot-sampled betweenness.
pub fn topk_betweenness_sampled(
    g: &Graph,
    k: usize,
    pivots: usize,
    seed: u64,
) -> Vec<WeightedEdge> {
    rank_weighted(g, betweenness::edge_betweenness_sampled(g, pivots, seed), k)
}

/// Top-k edges by trussness (`TR`) — the cohesive-subgraph baseline from the
/// paper's related work (truss decomposition, refs \[10\] and \[11\] of
/// the paper). High-truss edges
/// sit in one dense near-clique, so like CN they miss multi-context ties.
pub fn topk_trussness(g: &Graph, k: usize) -> Vec<ScoredEdge> {
    let truss = esd_graph::truss::truss_decomposition(g);
    let mut scored: Vec<ScoredEdge> = g
        .edges()
        .iter()
        .zip(truss)
        .map(|(&edge, t)| ScoredEdge { edge, score: t })
        .collect();
    scored.sort_by(ScoredEdge::ranking_cmp);
    scored.truncate(k);
    scored
}

fn rank_weighted(g: &Graph, weights: Vec<f64>, k: usize) -> Vec<WeightedEdge> {
    let mut scored: Vec<WeightedEdge> = g
        .edges()
        .iter()
        .zip(weights)
        .map(|(&edge, weight)| WeightedEdge { edge, weight })
        .collect();
    scored.sort_by(|a, b| {
        b.weight
            .partial_cmp(&a.weight)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.edge.cmp(&b.edge))
    });
    scored.truncate(k);
    scored
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    #[test]
    fn cn_prefers_clique_edges_on_fig1() {
        let (g, n) = fig1();
        let top = topk_common_neighbors(&g, 3);
        // K6 edges among {j,k,u,v,p,q} have 4-5 common neighbours — the max.
        for s in &top {
            assert!(s.score >= 4, "{s}");
            let clique: Vec<u32> = ["j", "k", "u", "v", "p", "q"]
                .iter()
                .map(|&x| n[x])
                .collect();
            assert!(clique.contains(&s.edge.u) && clique.contains(&s.edge.v));
        }
    }

    #[test]
    fn bt_prefers_bridges() {
        // Two K5s joined by one bridge.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
                edges.push((u + 5, v + 5));
            }
        }
        edges.push((0, 5));
        let g = Graph::from_edges(10, &edges);
        let top = topk_betweenness(&g, 1);
        assert_eq!(top[0].edge, Edge::new(0, 5));
    }

    #[test]
    fn cn_and_bt_disagree_with_esd_semantics() {
        // The fig1 top ESD edge at τ=2 is (f,g) — not the top CN edge.
        let (g, n) = fig1();
        let esd_top = crate::score::naive_topk(&g, 1, 2)[0].edge;
        let cn_top = topk_common_neighbors(&g, 1)[0].edge;
        assert_ne!(esd_top, cn_top);
        assert_eq!(esd_top, Edge::new(n["f"], n["g"]));
    }

    #[test]
    fn truncation_and_empty() {
        let g = generators::star(5);
        assert!(topk_common_neighbors(&g, 3).is_empty(), "no triangles");
        let path = generators::path(4);
        assert_eq!(topk_betweenness(&path, 100).len(), 3);
    }

    #[test]
    fn trussness_prefers_dense_cliques() {
        // A K5 glued to a sparse tail: the K5 edges lead the TR ranking.
        let mut edges = Vec::new();
        for u in 0..5u32 {
            for v in u + 1..5 {
                edges.push((u, v));
            }
        }
        edges.extend([(4, 5), (5, 6), (6, 7)]);
        let g = Graph::from_edges(8, &edges);
        let top = topk_trussness(&g, 10);
        assert_eq!(top[0].score, 5);
        for s in top.iter().take(10) {
            if s.score == 5 {
                assert!(s.edge.u < 5 && s.edge.v < 5, "{}", s.edge);
            }
        }
    }
}
