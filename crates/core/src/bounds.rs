//! Upper bounds on edge structural diversity (§III of the paper).

use esd_graph::{Graph, VertexId};

/// Which upper-bounding rule the dequeue-twice search seeds its priority
/// queue with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UpperBound {
    /// `min(d(u), d(v))` — free given the degrees. The paper's `OnlineBFS`
    /// variant (§III uses the raw minimum degree, not divided by τ).
    MinDegree,
    /// `⌊|N(u) ∩ N(v)| / τ⌋` — tighter, but costs an adjacency
    /// intersection per edge. The paper's `OnlineBFS+` variant.
    CommonNeighbor,
}

/// The min-degree upper bound of §III: the ego-network has at most
/// `min(d(u), d(v))` vertices, so no more than that many components of any
/// size fit. (The paper deliberately does *not* divide by τ here; the
/// division is what makes the common-neighbour bound tighter.)
#[inline]
pub fn min_degree_bound(g: &Graph, u: VertexId, v: VertexId, tau: u32) -> u32 {
    debug_assert!(tau >= 1);
    let _ = tau;
    g.degree(u).min(g.degree(v)) as u32
}

/// The common-neighbour upper bound: `⌊|N(u) ∩ N(v)| / τ⌋`. Tighter than
/// [`min_degree_bound`] since `|N(u) ∩ N(v)| ≤ min(d(u), d(v))`.
#[inline]
pub fn common_neighbor_bound(g: &Graph, u: VertexId, v: VertexId, tau: u32) -> u32 {
    debug_assert!(tau >= 1);
    (g.common_neighbor_count(u, v) as u32) / tau
}

/// Computes the selected bound for one edge.
#[inline]
pub fn bound(g: &Graph, u: VertexId, v: VertexId, tau: u32, which: UpperBound) -> u32 {
    match which {
        UpperBound::MinDegree => min_degree_bound(g, u, v, tau),
        UpperBound::CommonNeighbor => common_neighbor_bound(g, u, v, tau),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::score::edge_score;
    use esd_graph::generators;

    #[test]
    fn bounds_dominate_scores_on_fig1() {
        let (g, _) = fig1();
        for tau in 1..=6 {
            for e in g.edges() {
                let s = edge_score(&g, e.u, e.v, tau);
                let cn = common_neighbor_bound(&g, e.u, e.v, tau);
                let md = min_degree_bound(&g, e.u, e.v, tau);
                assert!(s <= cn, "cn bound violated at {e} τ={tau}");
                assert!(cn <= md, "cn must be tighter at {e} τ={tau}");
            }
        }
    }

    #[test]
    fn bounds_dominate_scores_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(50, 0.2, seed);
            for tau in [1, 2, 3] {
                for e in g.edges() {
                    let s = edge_score(&g, e.u, e.v, tau);
                    assert!(s <= common_neighbor_bound(&g, e.u, e.v, tau));
                }
            }
        }
    }

    #[test]
    fn exact_values_on_known_edges() {
        let (g, n) = fig1();
        // (f,g): min(d(f), d(g)) = min(5,6) = 5; |N(fg)| = 4.
        assert_eq!(min_degree_bound(&g, n["f"], n["g"], 1), 5);
        assert_eq!(min_degree_bound(&g, n["f"], n["g"], 3), 5, "τ-independent");
        assert_eq!(common_neighbor_bound(&g, n["f"], n["g"], 1), 4);
        assert_eq!(common_neighbor_bound(&g, n["f"], n["g"], 2), 2);
        assert_eq!(common_neighbor_bound(&g, n["f"], n["g"], 5), 0);
    }

    #[test]
    fn dispatcher_matches_direct_calls() {
        let (g, _) = fig1();
        for e in g.edges().iter().take(10) {
            assert_eq!(
                bound(&g, e.u, e.v, 2, UpperBound::MinDegree),
                min_degree_bound(&g, e.u, e.v, 2)
            );
            assert_eq!(
                bound(&g, e.u, e.v, 2, UpperBound::CommonNeighbor),
                common_neighbor_bound(&g, e.u, e.v, 2)
            );
        }
    }
}
