//! Top-k *vertex* structural diversity (the predecessor problem, §VII).
//!
//! Huang et al. (VLDB J. 2015) and Chang et al. (ICDE 2017) studied the
//! vertex version: `score_τ(v)` is the number of size-≥τ components of the
//! subgraph induced by `N(v)`. The paper's edge problem generalises their
//! techniques; this module provides the vertex version for comparison and
//! for the case-study narratives (a vertex's contexts vs an edge's).

use esd_graph::{traversal, Graph, VertexId};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A vertex with its structural diversity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoredVertex {
    /// The vertex.
    pub vertex: VertexId,
    /// Number of size-≥τ components of `G_{N(v)}`.
    pub score: u32,
}

/// Exact vertex structural diversity: components of the subgraph induced by
/// `N(v)` with size ≥ τ.
pub fn vertex_score(g: &Graph, v: VertexId, tau: u32) -> u32 {
    let sizes = traversal::induced_component_sizes(g, g.neighbors(v));
    (sizes.len() - sizes.partition_point(|&s| s < tau)) as u32
}

/// Top-k vertices by structural diversity using the same dequeue-twice
/// framework as the edge search, with the `⌊d(v)/τ⌋` upper bound. Returns
/// at most `k` vertices with positive score, ranked
/// `(score desc, vertex asc)`.
pub fn vertex_topk(g: &Graph, k: usize, tau: u32) -> Vec<ScoredVertex> {
    assert!(tau >= 1, "component size threshold must be at least 1");
    let mut queue: BinaryHeap<(u32, Reverse<VertexId>, bool)> = g
        .vertices()
        .filter_map(|v| {
            let ub = g.degree(v) as u32 / tau;
            (ub > 0).then_some((ub, Reverse(v), false))
        })
        .collect();
    let mut out = Vec::new();
    while out.len() < k {
        let Some((priority, Reverse(v), exact)) = queue.pop() else {
            break;
        };
        if exact {
            out.push(ScoredVertex {
                vertex: v,
                score: priority,
            });
            continue;
        }
        let s = vertex_score(g, v, tau);
        if s > 0 {
            queue.push((s, Reverse(v), true));
        }
    }
    out
}

/// Batch-exact top-k vertices: scores every vertex with one triangle
/// enumeration + union–find pass (the vertex analogue of
/// [`crate::score::batch_topk`]) and selects the best `k`. Wins over
/// [`vertex_topk`]'s dequeue-twice pruning when the `⌊d(v)/τ⌋` bounds are
/// loose.
pub fn vertex_topk_batch(g: &Graph, k: usize, tau: u32) -> Vec<ScoredVertex> {
    assert!(tau >= 1, "component size threshold must be at least 1");
    let index = VertexSdIndex::build(g);
    index.query(k, tau)
}

/// An ESDIndex-style structure for the *vertex* problem — an extension the
/// paper's technique enables but does not spell out: vertex ego-network
/// edges are exactly the graph's **triangles** (one order lower than the
/// 4-cliques of the edge problem), so the same
/// enumerate-once + union–find construction applies with the graph's own
/// CSR offsets as the forest arena.
///
/// Queries are `O(k + log)` over contiguous rank-ordered lists, mirroring
/// [`crate::index::FrozenEsdIndex`].
#[derive(Debug, Clone, Default)]
pub struct VertexSdIndex {
    /// Distinct component sizes, ascending.
    sizes: Vec<u32>,
    /// `list_offsets[i]..list_offsets[i+1]` bounds list `i` in `entries`.
    list_offsets: Vec<usize>,
    /// Rank-ordered `(score desc, vertex asc)` lists, back to back.
    entries: Vec<ScoredVertex>,
}

impl VertexSdIndex {
    /// Builds the index by triangle enumeration + union–find in
    /// `O(αm·γ(n) + Σδ_v log n)`.
    pub fn build(g: &Graph) -> Self {
        let n = g.num_vertices();
        // Group v = N(v), laid out exactly as the graph's CSR.
        let mut offsets = Vec::with_capacity(n + 1);
        offsets.push(0usize);
        for v in 0..n as VertexId {
            offsets.push(offsets.last().unwrap() + g.degree(v));
        }
        let mut arena = esd_dsu::ArenaDsu::new(offsets);
        let slot = |of: VertexId, x: VertexId| -> usize {
            g.neighbors(of).binary_search(&x).expect("neighbour")
        };
        esd_graph::triangles::list_triangles(g, |a, b, c| {
            arena.union(a as usize, slot(a, b), slot(a, c));
            arena.union(b as usize, slot(b, a), slot(b, c));
            arena.union(c as usize, slot(c, a), slot(c, b));
        });

        // Distinct sizes and per-vertex sorted multisets.
        let mut per_vertex: Vec<Vec<u32>> = Vec::with_capacity(n);
        let mut max_size = 0u32;
        for v in 0..n {
            let mut sizes = Vec::new();
            arena.for_each_root(v, |_, s| sizes.push(s));
            sizes.sort_unstable();
            max_size = max_size.max(sizes.last().copied().unwrap_or(0));
            per_vertex.push(sizes);
        }
        let mut present = vec![false; max_size as usize + 1];
        for sizes in &per_vertex {
            for &s in sizes {
                present[s as usize] = true;
            }
        }
        let csizes: Vec<u32> = (1..=max_size).filter(|&c| present[c as usize]).collect();

        // Fill the lists: one sorted vector per c.
        let mut lists: Vec<Vec<ScoredVertex>> = vec![Vec::new(); csizes.len()];
        for (v, sizes) in per_vertex.iter().enumerate() {
            let Some(&cmax) = sizes.last() else { continue };
            for (i, &c) in csizes.iter().enumerate() {
                if c > cmax {
                    break;
                }
                let score = (sizes.len() - sizes.partition_point(|&s| s < c)) as u32;
                lists[i].push(ScoredVertex {
                    vertex: v as VertexId,
                    score,
                });
            }
        }
        let mut list_offsets = Vec::with_capacity(csizes.len() + 1);
        list_offsets.push(0usize);
        let mut entries = Vec::new();
        for mut list in lists {
            list.sort_by(|a, b| b.score.cmp(&a.score).then(a.vertex.cmp(&b.vertex)));
            entries.extend(list);
            list_offsets.push(entries.len());
        }
        Self {
            sizes: csizes,
            list_offsets,
            entries,
        }
    }

    /// Distinct component sizes, ascending.
    pub fn component_sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Top-`k` vertices at threshold `tau`; identical contract to
    /// [`vertex_topk`].
    pub fn query(&self, k: usize, tau: u32) -> Vec<ScoredVertex> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return Vec::new();
        }
        let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
        list[..k.min(list.len())].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    fn naive(g: &Graph, k: usize, tau: u32) -> Vec<ScoredVertex> {
        let mut all: Vec<ScoredVertex> = g
            .vertices()
            .map(|v| ScoredVertex {
                vertex: v,
                score: vertex_score(g, v, tau),
            })
            .filter(|s| s.score > 0)
            .collect();
        all.sort_by(|a, b| b.score.cmp(&a.score).then(a.vertex.cmp(&b.vertex)));
        all.truncate(k);
        all
    }

    #[test]
    fn star_center_score() {
        let g = generators::star(6);
        // N(center) = 5 isolated leaves.
        assert_eq!(vertex_score(&g, 0, 1), 5);
        assert_eq!(vertex_score(&g, 0, 2), 0);
        assert_eq!(vertex_score(&g, 3, 1), 1, "leaf sees only the centre");
    }

    #[test]
    fn matches_naive_on_fig1() {
        let (g, _) = fig1();
        for tau in 1..=4 {
            for k in [1, 5, 20] {
                assert_eq!(vertex_topk(&g, k, tau), naive(&g, k, tau), "k={k} τ={tau}");
            }
        }
    }

    #[test]
    fn matches_naive_on_random() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(60, 0.1, seed);
            assert_eq!(vertex_topk(&g, 10, 2), naive(&g, 10, 2));
        }
    }

    #[test]
    fn empty_result_cases() {
        let g = generators::complete(4);
        // N(v) of K4 is a triangle: one component of size 3.
        assert_eq!(vertex_topk(&g, 2, 4), vec![]);
        assert_eq!(vertex_topk(&g, 0, 1), vec![]);
    }

    #[test]
    fn index_matches_online_on_fig1() {
        let (g, _) = fig1();
        let index = VertexSdIndex::build(&g);
        for tau in 1..=6 {
            for k in [1, 4, 16, 100] {
                assert_eq!(
                    index.query(k, tau),
                    vertex_topk(&g, k, tau),
                    "k={k} τ={tau}"
                );
            }
        }
    }

    #[test]
    fn index_matches_online_on_random_models() {
        for seed in 0..3 {
            for g in [
                generators::erdos_renyi(50, 0.12, seed),
                generators::clique_overlap(50, 40, 5, seed),
                generators::barabasi_albert(60, 3, seed),
            ] {
                let index = VertexSdIndex::build(&g);
                for tau in [1, 2, 3] {
                    assert_eq!(
                        index.query(12, tau),
                        vertex_topk(&g, 12, tau),
                        "seed={seed} τ={tau}"
                    );
                }
            }
        }
    }

    #[test]
    fn index_sizes_cover_star() {
        // Star centre: n-1 singleton components; leaves: one singleton.
        let g = generators::star(7);
        let index = VertexSdIndex::build(&g);
        assert_eq!(index.component_sizes(), &[1]);
        let top = index.query(1, 1)[0];
        assert_eq!((top.vertex, top.score), (0, 6));
    }

    #[test]
    fn batch_matches_online() {
        let (g, _) = fig1();
        for tau in [1, 2, 3] {
            assert_eq!(vertex_topk_batch(&g, 8, tau), vertex_topk(&g, 8, tau));
        }
    }

    #[test]
    fn index_on_empty_graph() {
        let g = Graph::from_edges(4, &[]);
        let index = VertexSdIndex::build(&g);
        assert!(index.component_sizes().is_empty());
        assert!(index.query(3, 1).is_empty());
    }
}
