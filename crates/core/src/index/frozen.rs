//! A frozen, flat-memory ESDIndex for read-only deployments.
//!
//! The treap-backed [`EsdIndex`](super::EsdIndex) supports `O(log m)`
//! maintenance, but a read-only consumer pays for that flexibility in
//! pointer-chasing and per-node overhead. [`FrozenEsdIndex`] lays every
//! list `H(c)` out as one contiguous, rank-ordered slice:
//!
//! * query = one binary search over `C` + one `memcpy`-friendly slice scan
//!   (`O(log |C| + k)` — strictly better than Theorem 5's `O(k log m)`);
//! * memory ≈ 8 bytes/entry vs ≈ 28 for the treap arena;
//! * the layout is position-independent, which is what makes the on-disk
//!   format of [`super::persist`] a straight dump.
//!
//! This is an engineering extension over the paper (which only needs the
//! BST form); the `ablation` experiment quantifies the gap.

use super::EsdIndex;
use crate::ScoredEdge;
use esd_graph::Edge;

/// An immutable ESDIndex with contiguous rank-ordered lists.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FrozenEsdIndex {
    /// `C`, ascending.
    pub(crate) sizes: Vec<u32>,
    /// `list_offsets[i]..list_offsets[i+1]` bounds list `i` in `entries`.
    pub(crate) list_offsets: Vec<usize>,
    /// All lists back to back, each in rank order (score desc, edge asc).
    pub(crate) entries: Vec<ScoredEdge>,
}

impl FrozenEsdIndex {
    /// Builds directly from a graph (via [`EsdIndex::build_fast`]).
    pub fn build(g: &esd_graph::Graph) -> Self {
        EsdIndex::build_fast(g).freeze()
    }

    pub(crate) fn from_parts(
        sizes: Vec<u32>,
        list_offsets: Vec<usize>,
        entries: Vec<ScoredEdge>,
    ) -> Self {
        debug_assert_eq!(list_offsets.len(), sizes.len() + 1);
        Self {
            sizes,
            list_offsets,
            entries,
        }
    }

    /// The distinct component sizes `C`, ascending.
    pub fn component_sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Number of lists `|C|`.
    pub fn num_lists(&self) -> usize {
        self.sizes.len()
    }

    /// The full list `H(c)` in rank order, if `c ∈ C`.
    pub fn list(&self, c: u32) -> Option<&[ScoredEdge]> {
        let i = self.sizes.binary_search(&c).ok()?;
        Some(&self.entries[self.list_offsets[i]..self.list_offsets[i + 1]])
    }

    /// Total `(edge, list)` entries.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Approximate heap footprint in bytes.
    pub fn byte_size(&self) -> usize {
        self.sizes.capacity() * std::mem::size_of::<u32>()
            + self.list_offsets.capacity() * std::mem::size_of::<usize>()
            + self.entries.capacity() * std::mem::size_of::<ScoredEdge>()
    }

    /// Top-`k` edges at threshold `tau`; same contract as
    /// [`EsdIndex::query`].
    pub fn query(&self, k: usize, tau: u32) -> Vec<ScoredEdge> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return Vec::new();
        }
        let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
        list[..k.min(list.len())].to_vec()
    }

    /// Zero-copy variant of [`Self::query`].
    pub fn query_slice(&self, k: usize, tau: u32) -> &[ScoredEdge] {
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return &[];
        }
        let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
        &list[..k.min(list.len())]
    }

    /// Rank of `edge` in the list answering `tau` (0 = best), if present.
    pub fn rank_of(&self, edge: Edge, tau: u32) -> Option<usize> {
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return None;
        }
        let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
        list.iter().position(|s| s.edge == edge)
    }
}

impl EsdIndex {
    /// Flattens into a read-only [`FrozenEsdIndex`]. The frozen form
    /// returns identical query results with ~3–4× less memory and faster
    /// top-k reads, but cannot be maintained incrementally.
    pub fn freeze(&self) -> FrozenEsdIndex {
        let mut list_offsets = Vec::with_capacity(self.num_lists() + 1);
        list_offsets.push(0usize);
        let mut entries = Vec::with_capacity(self.total_entries());
        for c in self.component_sizes() {
            let len = self.list_len(*c).expect("list exists");
            entries.extend(self.query(len, *c));
            list_offsets.push(entries.len());
        }
        let frozen =
            FrozenEsdIndex::from_parts(self.component_sizes().to_vec(), list_offsets, entries);
        #[cfg(any(test, feature = "strict-invariants"))]
        crate::audit::assert_clean("FrozenEsdIndex (post-freeze)", &frozen.validate());
        frozen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    #[test]
    fn frozen_matches_treap_queries() {
        let (g, _) = fig1();
        let index = EsdIndex::build_fast(&g);
        let frozen = index.freeze();
        assert_eq!(frozen.component_sizes(), index.component_sizes());
        for tau in 1..=7 {
            for k in [1, 3, 20, 100] {
                assert_eq!(frozen.query(k, tau), index.query(k, tau), "k={k} τ={tau}");
                assert_eq!(frozen.query_slice(k, tau), &index.query(k, tau)[..]);
            }
        }
    }

    #[test]
    fn frozen_on_random_graphs() {
        for seed in 0..4 {
            let g = generators::clique_overlap(80, 70, 5, seed);
            let index = EsdIndex::build_fast(&g);
            let frozen = index.freeze();
            assert_eq!(frozen.total_entries(), index.total_entries());
            assert!(
                frozen.byte_size() < index.byte_size(),
                "frozen must be smaller: {} vs {}",
                frozen.byte_size(),
                index.byte_size()
            );
            for tau in [1, 2, 3] {
                assert_eq!(frozen.query(15, tau), index.query(15, tau));
            }
        }
    }

    #[test]
    fn frozen_empty() {
        let g = esd_graph::Graph::from_edges(3, &[]);
        let frozen = FrozenEsdIndex::build(&g);
        assert_eq!(frozen.num_lists(), 0);
        assert!(frozen.query(5, 1).is_empty());
        assert!(frozen.query_slice(5, 1).is_empty());
    }

    #[test]
    fn list_and_rank() {
        let (g, n) = fig1();
        let frozen = FrozenEsdIndex::build(&g);
        assert_eq!(frozen.list(5).unwrap().len(), 3);
        assert!(frozen.list(3).is_none());
        let top = frozen.query(1, 2)[0];
        assert_eq!(frozen.rank_of(top.edge, 2), Some(0));
        assert_eq!(frozen.rank_of(Edge::new(n["a"], n["b"]), 2), None);
    }
}
