//! Sequential index construction: Algorithm 2 (BFS) and Algorithm 3
//! (4-clique enumeration + union–find).

use super::{EdgeComponents, RankKey, ScoreTreap};
use esd_dsu::ArenaDsu;
use esd_graph::{cliques::FourCliqueEnumerator, traversal, Edge, Graph, OrientedGraph, VertexId};
use std::ops::Range;

/// Work counters of the 4-clique construction, surfaced by the experiments
/// harness to validate the `O(α²m)` enumeration bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BuildStats {
    /// 4-cliques enumerated (each exactly once).
    pub four_cliques: u64,
    /// Union operations performed (six per 4-clique).
    pub union_ops: u64,
    /// `Σ |N(uv)|` — the `O(αm)` total neighbourhood size.
    pub total_neighborhood: usize,
}

/// Everything the 4-clique pass produces; the dynamic maintenance bootstrap
/// consumes the neighbourhoods and the forest, the static build only the
/// component sizes.
pub(crate) struct FourCliqueArtifacts {
    /// Per-edge sorted component sizes.
    pub components: EdgeComponents,
    /// Per-edge common neighbourhood offsets (`m + 1` entries).
    pub nbr_offsets: Vec<usize>,
    /// Flat sorted common neighbourhoods.
    pub nbrs: Vec<VertexId>,
    /// The union–find forest over all neighbourhoods (group = edge id).
    pub arena: ArenaDsu,
    /// Work counters.
    pub stats: BuildStats,
}

/// Algorithm 2, lines 1–3: component sizes of every edge ego-network by BFS.
pub(crate) fn components_by_bfs(g: &Graph) -> EdgeComponents {
    let _span = esd_telemetry::span(esd_telemetry::Stage::BuildBfs);
    let m = g.num_edges();
    let mut offsets = Vec::with_capacity(m + 1);
    offsets.push(0);
    let mut sizes = Vec::new();
    for e in g.edges() {
        let members = g.common_neighbors(e.u, e.v);
        let comp = traversal::induced_component_sizes(g, &members);
        sizes.extend(comp);
        offsets.push(sizes.len());
    }
    EdgeComponents { offsets, sizes }
}

/// Phase 1 of Algorithm 3: materialise every common neighbourhood
/// `N(uv) = N(u) ∩ N(v)` into one flat arena (total size `O(αm)`).
pub(crate) fn neighborhoods(g: &Graph) -> (Vec<usize>, Vec<VertexId>) {
    let m = g.num_edges();
    let mut offsets = Vec::with_capacity(m + 1);
    offsets.push(0);
    let mut nbrs = Vec::new();
    for e in g.edges() {
        esd_graph::intersect::intersect_into(g.neighbors(e.u), g.neighbors(e.v), &mut nbrs);
        offsets.push(nbrs.len());
    }
    (offsets, nbrs)
}

/// Algorithm 3, lines 1–22: builds per-edge disjoint-set forests by
/// enumerating every 4-clique once and extracts the component sizes.
pub(crate) fn components_by_four_cliques(g: &Graph) -> FourCliqueArtifacts {
    let (nbr_offsets, nbrs) = {
        let _span = esd_telemetry::span(esd_telemetry::Stage::BuildNeighborhoods);
        neighborhoods(g)
    };
    esd_telemetry::add(esd_telemetry::Metric::BuildNbrTotal, nbrs.len() as u64);
    let mut arena = ArenaDsu::new(nbr_offsets.clone());
    let mut stats = BuildStats {
        total_neighborhood: nbrs.len(),
        ..Default::default()
    };

    let enumerate_span = esd_telemetry::span(esd_telemetry::Stage::BuildEnumerate);
    let dag = OrientedGraph::by_degree(g);
    let mut enumerator = FourCliqueEnumerator::new(g.num_vertices());
    // A local slot of vertex `x` inside edge `e`'s neighbourhood.
    let slot = |e: u32, x: VertexId| -> usize {
        let range = &nbrs[nbr_offsets[e as usize]..nbr_offsets[e as usize + 1]];
        range
            .binary_search(&x)
            .expect("vertex in common neighbourhood")
    };

    for u in 0..dag.num_vertices() as VertexId {
        for i in 0..dag.out_degree(u) {
            let v = dag.out_neighbors(u)[i];
            let e_uv = g.edge_id(u, v).expect("directed edge exists");
            // The enumerator emits the pairs grouped by w1, so every
            // w1-level lookup (three edge ids, three slots) is cached and
            // recomputed only when w1 advances.
            let mut cached_w1 = VertexId::MAX;
            let (mut e_uw1, mut e_vw1) = (0u32, 0u32);
            let (mut s_w1_uv, mut s_v_uw1, mut s_u_vw1) = (0usize, 0usize, 0usize);
            enumerator.for_edge(&dag, u, v, |w1, w2| {
                // The 4-clique {u, v, w1, w2}: six member edges, six unions
                // (Algorithm 3 lines 10–15).
                if w1 != cached_w1 {
                    cached_w1 = w1;
                    e_uw1 = g.edge_id(u, w1).expect("clique edge");
                    e_vw1 = g.edge_id(v, w1).expect("clique edge");
                    s_w1_uv = slot(e_uv, w1);
                    s_v_uw1 = slot(e_uw1, v);
                    s_u_vw1 = slot(e_vw1, u);
                }
                let e_uw2 = g.edge_id(u, w2).expect("clique edge");
                let e_vw2 = g.edge_id(v, w2).expect("clique edge");
                let e_w1w2 = g.edge_id(w1, w2).expect("clique edge");
                arena.union(e_uv as usize, s_w1_uv, slot(e_uv, w2));
                arena.union(e_uw1 as usize, s_v_uw1, slot(e_uw1, w2));
                arena.union(e_uw2 as usize, slot(e_uw2, v), slot(e_uw2, w1));
                arena.union(e_vw1 as usize, s_u_vw1, slot(e_vw1, w2));
                arena.union(e_vw2 as usize, slot(e_vw2, u), slot(e_vw2, w1));
                arena.union(e_w1w2 as usize, slot(e_w1w2, u), slot(e_w1w2, v));
                stats.four_cliques += 1;
                stats.union_ops += 6;
            });
        }
    }

    drop(enumerate_span);
    esd_telemetry::add(esd_telemetry::Metric::BuildUnionOps, stats.union_ops);

    let components = {
        let _span = esd_telemetry::span(esd_telemetry::Stage::BuildExtract);
        components_from_arena(&arena, g.num_edges())
    };
    FourCliqueArtifacts {
        components,
        nbr_offsets,
        nbrs,
        arena,
        stats,
    }
}

/// Algorithm 3 lines 16–22: reads the sorted component-size multiset of each
/// edge out of the union–find forest.
pub(crate) fn components_from_arena(arena: &ArenaDsu, m: usize) -> EdgeComponents {
    let mut offsets = Vec::with_capacity(m + 1);
    offsets.push(0);
    let mut sizes = Vec::new();
    for e in 0..m {
        let start = sizes.len();
        arena.for_each_root(e, |_, size| sizes.push(size));
        sizes[start..].sort_unstable();
        offsets.push(sizes.len());
    }
    EdgeComponents { offsets, sizes }
}

/// The distinct size set `C = ∪ C_uv`, ascending.
pub(crate) fn distinct_sizes(comps: &EdgeComponents) -> Vec<u32> {
    let max = comps.sizes.iter().copied().max().unwrap_or(0) as usize;
    let mut present = vec![false; max + 1];
    for &s in &comps.sizes {
        present[s as usize] = true;
    }
    (1..=max as u32).filter(|&c| present[c as usize]).collect()
}

/// Algorithm 2 lines 6–15: inserts each edge into every applicable list
/// `H(c)` with its score at threshold `c`.
///
/// `lists` holds fresh treaps for `csizes[c_range]` (so the parallel builder
/// can fill disjoint list ranges independently). Entries are buffered,
/// sorted and bulk-built (`ScoreTreap::from_sorted`, O(L) per list) — the
/// result is identical to per-entry insertion but substantially faster,
/// since this phase dominates static construction.
pub(crate) fn fill_lists(
    edges: &[Edge],
    comps: &EdgeComponents,
    csizes: &[u32],
    lists: &mut [ScoreTreap],
    c_range: Range<usize>,
) {
    debug_assert_eq!(lists.len(), c_range.len());
    debug_assert!(
        lists.iter().all(super::ostree::ScoreTreap::is_empty),
        "fill expects fresh lists"
    );
    if c_range.is_empty() {
        return;
    }
    let c_min = csizes[c_range.start];
    let mut buffers: Vec<Vec<RankKey>> = vec![Vec::new(); c_range.len()];
    for (eid, &edge) in edges.iter().enumerate() {
        let s = comps.sizes_of(eid);
        let Some(&cmax) = s.last() else { continue };
        if cmax < c_min {
            continue;
        }
        for (li, ci) in c_range.clone().enumerate() {
            let c = csizes[ci];
            if c > cmax {
                break;
            }
            let score = (s.len() - s.partition_point(|&x| x < c)) as u32;
            debug_assert!(score > 0);
            buffers[li].push(RankKey { score, edge });
        }
    }
    for (li, mut buf) in buffers.into_iter().enumerate() {
        buf.sort_unstable();
        lists[li] = ScoreTreap::from_sorted(&buf);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    #[test]
    fn bfs_and_four_clique_components_agree() {
        for seed in 0..5 {
            let g = generators::erdos_renyi(40, 0.25, seed);
            let bfs = components_by_bfs(&g);
            let fc = components_by_four_cliques(&g).components;
            assert_eq!(bfs.offsets, fc.offsets);
            assert_eq!(bfs.sizes, fc.sizes);
        }
    }

    #[test]
    fn fig1_component_multisets() {
        let (g, n) = fig1();
        let comps = components_by_four_cliques(&g).components;
        let eid = |a: &str, b: &str| g.edge_id(n[a], n[b]).unwrap() as usize;
        assert_eq!(comps.sizes_of(eid("f", "g")), &[2, 2]);
        assert_eq!(comps.sizes_of(eid("j", "k")), &[2, 4]);
        assert_eq!(comps.sizes_of(eid("u", "p")), &[5]);
        assert_eq!(comps.sizes_of(eid("d", "e")), &[1, 2]);
        assert_eq!(distinct_sizes(&comps), vec![1, 2, 4, 5]);
    }

    #[test]
    fn four_clique_count_matches_enumerator() {
        let g = generators::clique_overlap(60, 40, 6, 1);
        let artifacts = components_by_four_cliques(&g);
        assert_eq!(
            artifacts.stats.four_cliques,
            esd_graph::cliques::count_four_cliques(&g)
        );
        assert_eq!(artifacts.stats.union_ops, artifacts.stats.four_cliques * 6);
    }

    #[test]
    fn neighborhood_total_is_sum_of_common_neighbors() {
        let g = generators::erdos_renyi(50, 0.2, 3);
        let (offsets, nbrs) = neighborhoods(&g);
        let expect: usize = g
            .edges()
            .iter()
            .map(|e| g.common_neighbor_count(e.u, e.v))
            .sum();
        assert_eq!(nbrs.len(), expect);
        assert_eq!(*offsets.last().unwrap(), expect);
    }

    #[test]
    fn distinct_sizes_empty() {
        let comps = EdgeComponents {
            offsets: vec![0, 0],
            sizes: vec![],
        };
        assert!(distinct_sizes(&comps).is_empty());
    }
}
