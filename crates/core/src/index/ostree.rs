//! An order-statistic treap: the "self-balance binary search tree" (§IV-A)
//! backing each sorted list `H(c)` of the ESDIndex.
//!
//! Keys are `(score, edge)` pairs ordered by *rank*: higher score first,
//! ties by ascending edge — so an in-order prefix walk yields the top-k in
//! `O(k + log m)` (Theorem 5). Node priorities are a deterministic
//! `splitmix64` hash of the key, making tree shapes reproducible and
//! independent of insertion order (which also makes the parallel builder's
//! output byte-identical to the sequential one's).

use crate::ScoredEdge;
use esd_graph::Edge;
use std::cmp::Ordering;

/// A ranked key: score-descending, then edge-ascending.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankKey {
    /// Structural diversity at this list's threshold.
    pub score: u32,
    /// The edge.
    pub edge: Edge,
}

impl Ord for RankKey {
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .score
            .cmp(&self.score)
            .then_with(|| self.edge.cmp(&other.edge))
    }
}

impl PartialOrd for RankKey {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

pub(crate) const NIL: u32 = u32::MAX;

#[derive(Debug, Clone, Copy)]
pub(crate) struct Node {
    pub(crate) key: RankKey,
    pub(crate) prio: u64,
    pub(crate) left: u32,
    pub(crate) right: u32,
    pub(crate) size: u32,
}

/// Deterministic node priority.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

pub(crate) fn priority_of(key: &RankKey) -> u64 {
    splitmix64(key.edge.key() ^ (u64::from(key.score) << 40) ^ 0xE5D1)
}

/// An order-statistic treap over [`RankKey`]s.
///
/// # Examples
///
/// ```
/// use esd_core::index::ostree::{RankKey, ScoreTreap};
/// use esd_graph::Edge;
///
/// let mut t = ScoreTreap::new();
/// t.insert(RankKey { score: 2, edge: Edge::new(0, 1) });
/// t.insert(RankKey { score: 5, edge: Edge::new(2, 3) });
/// let top = t.top_k(1);
/// assert_eq!(top[0].score, 5);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScoreTreap {
    pub(crate) nodes: Vec<Node>,
    pub(crate) free: Vec<u32>,
    pub(crate) root: u32,
    pub(crate) len: usize,
}

impl ScoreTreap {
    /// An empty treap.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            root: NIL,
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when no entries are stored.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Approximate heap footprint, for the Fig 6(a) size report.
    pub fn byte_size(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    #[inline]
    fn size(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    #[inline]
    fn pull(&mut self, t: u32) {
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        self.nodes[t as usize].size = 1 + self.size(l) + self.size(r);
    }

    fn alloc(&mut self, key: RankKey) -> u32 {
        let node = Node {
            key,
            prio: priority_of(&key),
            left: NIL,
            right: NIL,
            size: 1,
        };
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    /// Merges two treaps where every key of `a` ranks before every key of `b`.
    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].prio >= self.nodes[b as usize].prio {
            let ar = self.nodes[a as usize].right;
            let merged = self.merge(ar, b);
            self.nodes[a as usize].right = merged;
            self.pull(a);
            a
        } else {
            let bl = self.nodes[b as usize].left;
            let merged = self.merge(a, bl);
            self.nodes[b as usize].left = merged;
            self.pull(b);
            b
        }
    }

    /// Splits into `(keys ranking before `key`, keys ranking at/after `key`)`.
    fn split(&mut self, t: u32, key: &RankKey) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        if self.nodes[t as usize].key.cmp(key) == Ordering::Less {
            let tr = self.nodes[t as usize].right;
            let (l, r) = self.split(tr, key);
            self.nodes[t as usize].right = l;
            self.pull(t);
            (t, r)
        } else {
            let tl = self.nodes[t as usize].left;
            let (l, r) = self.split(tl, key);
            self.nodes[t as usize].left = r;
            self.pull(t);
            (l, t)
        }
    }

    /// True when `key` is present.
    pub fn contains(&self, key: &RankKey) -> bool {
        let mut t = self.root;
        while t != NIL {
            match key.cmp(&self.nodes[t as usize].key) {
                Ordering::Less => t = self.nodes[t as usize].left,
                Ordering::Greater => t = self.nodes[t as usize].right,
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// Builds a treap from keys already in rank order, in `O(n)` via the
    /// right-spine/stack cartesian-tree construction — the resulting tree is
    /// **identical** to inserting the keys one by one (shapes are a pure
    /// function of keys and their hashed priorities), but skips the
    /// `O(n log n)` comparison walks. Used by the static index builders,
    /// where the list fill dominates construction time.
    ///
    /// # Panics
    /// Panics if the keys are not strictly rank-ascending.
    pub fn from_sorted(keys: &[RankKey]) -> Self {
        assert!(
            keys.windows(2).all(|w| w[0].cmp(&w[1]) == Ordering::Less),
            "keys must be strictly rank-ascending"
        );
        let mut treap = Self {
            nodes: Vec::with_capacity(keys.len()),
            free: Vec::new(),
            root: NIL,
            len: keys.len(),
        };
        // Right spine of the tree built so far, root first.
        let mut spine: Vec<u32> = Vec::new();
        for &key in keys {
            let node = treap.alloc(key);
            let prio = treap.nodes[node as usize].prio;
            // Pop spine entries with smaller priority; the last popped
            // becomes the new node's left child.
            let mut last_popped = NIL;
            while let Some(&top) = spine.last() {
                if treap.nodes[top as usize].prio < prio {
                    last_popped = top;
                    spine.pop();
                } else {
                    break;
                }
            }
            treap.nodes[node as usize].left = last_popped;
            match spine.last() {
                Some(&parent) => treap.nodes[parent as usize].right = node,
                None => treap.root = node,
            }
            spine.push(node);
        }
        // Recompute subtree sizes bottom-up along the spine path: sizes were
        // left at 1; fix by a post-order pass over the whole tree (O(n)).
        if treap.root != NIL {
            treap.fix_sizes(treap.root);
        }
        #[cfg(any(test, feature = "strict-invariants"))]
        crate::audit::assert_clean("ScoreTreap (from_sorted)", &treap.validate());
        treap
    }

    /// Recomputes subtree sizes below `t` (post-order, iterative).
    fn fix_sizes(&mut self, t: u32) {
        let mut stack = vec![(t, false)];
        while let Some((node, expanded)) = stack.pop() {
            if expanded {
                self.pull(node);
            } else {
                stack.push((node, true));
                let (l, r) = (
                    self.nodes[node as usize].left,
                    self.nodes[node as usize].right,
                );
                if l != NIL {
                    stack.push((l, false));
                }
                if r != NIL {
                    stack.push((r, false));
                }
            }
        }
    }

    /// Inserts `key`; returns `false` if it was already present.
    pub fn insert(&mut self, key: RankKey) -> bool {
        if self.contains(&key) {
            return false;
        }
        let (l, r) = self.split(self.root, &key);
        let node = self.alloc(key);
        let lk = self.merge(l, node);
        self.root = self.merge(lk, r);
        self.len += 1;
        true
    }

    /// Removes `key`; returns `false` if absent.
    pub fn remove(&mut self, key: &RankKey) -> bool {
        if !self.contains(key) {
            return false;
        }
        self.root = self.remove_rec(self.root, key);
        self.len -= 1;
        true
    }

    fn remove_rec(&mut self, t: u32, key: &RankKey) -> u32 {
        debug_assert_ne!(t, NIL);
        match key.cmp(&self.nodes[t as usize].key) {
            Ordering::Less => {
                let tl = self.nodes[t as usize].left;
                let nl = self.remove_rec(tl, key);
                self.nodes[t as usize].left = nl;
                self.pull(t);
                t
            }
            Ordering::Greater => {
                let tr = self.nodes[t as usize].right;
                let nr = self.remove_rec(tr, key);
                self.nodes[t as usize].right = nr;
                self.pull(t);
                t
            }
            Ordering::Equal => {
                let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
                self.free.push(t);
                self.merge(l, r)
            }
        }
    }

    /// The top `k` entries in rank order, in `O(k + log m)`.
    pub fn top_k(&self, k: usize) -> Vec<ScoredEdge> {
        let mut out = Vec::with_capacity(k.min(self.len));
        let mut stack = Vec::new();
        let mut t = self.root;
        while out.len() < k && (t != NIL || !stack.is_empty()) {
            while t != NIL {
                stack.push(t);
                t = self.nodes[t as usize].left;
            }
            let Some(top) = stack.pop() else { break };
            let key = self.nodes[top as usize].key;
            out.push(ScoredEdge {
                edge: key.edge,
                score: key.score,
            });
            t = self.nodes[top as usize].right;
        }
        out
    }

    /// The entry at 0-based `rank` (rank 0 = best), in `O(log m)`.
    pub fn select(&self, rank: usize) -> Option<RankKey> {
        if rank >= self.len {
            return None;
        }
        let mut t = self.root;
        let mut rank = rank as u32;
        loop {
            let left = self.nodes[t as usize].left;
            let ls = self.size(left);
            match rank.cmp(&ls) {
                Ordering::Less => t = left,
                Ordering::Equal => return Some(self.nodes[t as usize].key),
                Ordering::Greater => {
                    rank -= ls + 1;
                    t = self.nodes[t as usize].right;
                }
            }
        }
    }

    /// 0-based rank of `key`, if present.
    pub fn rank(&self, key: &RankKey) -> Option<usize> {
        let mut t = self.root;
        let mut acc = 0usize;
        while t != NIL {
            let node = &self.nodes[t as usize];
            match key.cmp(&node.key) {
                Ordering::Less => t = node.left,
                Ordering::Equal => return Some(acc + self.size(node.left) as usize),
                Ordering::Greater => {
                    acc += self.size(node.left) as usize + 1;
                    t = node.right;
                }
            }
        }
        None
    }

    /// All entries in rank order.
    pub fn iter_ranked(&self) -> Vec<ScoredEdge> {
        self.top_k(self.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn key(score: u32, a: u32, b: u32) -> RankKey {
        RankKey {
            score,
            edge: Edge::new(a, b),
        }
    }

    #[test]
    fn rank_order_is_score_desc_edge_asc() {
        let mut t = ScoreTreap::new();
        t.insert(key(1, 0, 1));
        t.insert(key(3, 5, 6));
        t.insert(key(3, 0, 2));
        t.insert(key(2, 9, 10));
        let ranked = t.iter_ranked();
        let scores: Vec<u32> = ranked.iter().map(|s| s.score).collect();
        assert_eq!(scores, vec![3, 3, 2, 1]);
        assert_eq!(ranked[0].edge, Edge::new(0, 2), "ties by smaller edge");
    }

    #[test]
    fn duplicate_insert_rejected() {
        let mut t = ScoreTreap::new();
        assert!(t.insert(key(2, 1, 2)));
        assert!(!t.insert(key(2, 1, 2)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_and_reuse() {
        let mut t = ScoreTreap::new();
        for i in 0..10u32 {
            t.insert(key(i, i, i + 1));
        }
        assert!(t.remove(&key(5, 5, 6)));
        assert!(!t.remove(&key(5, 5, 6)));
        assert!(!t.contains(&key(5, 5, 6)));
        assert_eq!(t.len(), 9);
        // Freed slot is recycled.
        t.insert(key(99, 50, 51));
        assert_eq!(t.top_k(1)[0].score, 99);
    }

    #[test]
    fn select_and_rank_are_inverse() {
        let mut t = ScoreTreap::new();
        for i in 0..50u32 {
            t.insert(key(i % 7, i, i + 1));
        }
        for r in 0..t.len() {
            let k = t.select(r).unwrap();
            assert_eq!(t.rank(&k), Some(r));
        }
        assert_eq!(t.select(t.len()), None);
        assert_eq!(t.rank(&key(100, 0, 1)), None);
    }

    #[test]
    fn top_k_clamps() {
        let mut t = ScoreTreap::new();
        t.insert(key(1, 0, 1));
        assert_eq!(t.top_k(10).len(), 1);
        assert!(t.top_k(0).is_empty());
        assert!(ScoreTreap::new().top_k(5).is_empty());
    }

    #[test]
    fn from_sorted_equals_incremental_inserts() {
        let mut keys: Vec<RankKey> = (0..500u32).map(|i| key(i % 23, i, i + 1)).collect();
        keys.sort();
        let bulk = ScoreTreap::from_sorted(&keys);
        let mut incremental = ScoreTreap::new();
        for &k in &keys {
            incremental.insert(k);
        }
        assert_eq!(bulk.len(), incremental.len());
        assert_eq!(bulk.iter_ranked(), incremental.iter_ranked());
        // Order statistics must be intact after the bulk build.
        for r in (0..bulk.len()).step_by(37) {
            assert_eq!(bulk.select(r), incremental.select(r));
            assert_eq!(bulk.rank(&bulk.select(r).unwrap()), Some(r));
        }
        // And the bulk tree remains fully mutable.
        let mut bulk = bulk;
        assert!(bulk.remove(&keys[250]));
        assert!(bulk.insert(keys[250]));
        assert_eq!(bulk.iter_ranked(), incremental.iter_ranked());
    }

    #[test]
    fn from_sorted_empty_and_single() {
        assert!(ScoreTreap::from_sorted(&[]).is_empty());
        let t = ScoreTreap::from_sorted(&[key(3, 1, 2)]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.select(0), Some(key(3, 1, 2)));
    }

    #[test]
    #[should_panic(expected = "rank-ascending")]
    fn from_sorted_rejects_unsorted() {
        let _ = ScoreTreap::from_sorted(&[key(1, 0, 1), key(5, 2, 3)]);
    }

    #[test]
    fn shape_is_insertion_order_independent() {
        let keys: Vec<RankKey> = (0..100u32).map(|i| key(i % 11, i, i + 1)).collect();
        let mut forward = ScoreTreap::new();
        for &k in &keys {
            forward.insert(k);
        }
        let mut backward = ScoreTreap::new();
        for &k in keys.iter().rev() {
            backward.insert(k);
        }
        assert_eq!(forward.iter_ranked(), backward.iter_ranked());
    }

    proptest! {
        #[test]
        fn matches_sorted_vec_model(ops in prop::collection::vec((any::<bool>(), 0u32..8, 0u32..20), 0..200)) {
            let mut treap = ScoreTreap::new();
            let mut model: Vec<RankKey> = Vec::new();
            for (insert, score, e) in ops {
                let k = key(score, e, e + 1);
                if insert {
                    let added = treap.insert(k);
                    let in_model = model.contains(&k);
                    prop_assert_eq!(added, !in_model);
                    if !in_model {
                        model.push(k);
                    }
                } else {
                    let removed = treap.remove(&k);
                    let pos = model.iter().position(|&m| m == k);
                    prop_assert_eq!(removed, pos.is_some());
                    if let Some(p) = pos {
                        model.swap_remove(p);
                    }
                }
                prop_assert_eq!(treap.len(), model.len());
            }
            model.sort();
            let ranked: Vec<RankKey> = treap
                .iter_ranked()
                .iter()
                .map(|s| RankKey { score: s.score, edge: s.edge })
                .collect();
            prop_assert_eq!(ranked, model);
            // Order statistics agree with the sorted model.
            for (r, k) in treap.iter_ranked().iter().enumerate() {
                let rk = RankKey { score: k.score, edge: k.edge };
                prop_assert_eq!(treap.select(r), Some(rk));
                prop_assert_eq!(treap.rank(&rk), Some(r));
            }
        }
    }
}
