//! ESDX delta encode/decode: the checkpoint payload codec of the
//! durability subsystem.
//!
//! A frozen ESDX file (see [`super::persist`]) is not enough to *recover*
//! a serving process: the index only stores edges with a positive score,
//! while maintenance needs the complete graph. Checkpoints therefore
//! persist the **edge set** — a full [`EdgeSetSnapshot`], or an
//! [`EdgeSetDelta`] of changed edges against the last full snapshot,
//! keyed by publication epoch at the envelope layer (`esd-durability`
//! owns file placement, CRC framing, and chain discovery; this module
//! owns the payload bytes and their structural validation).
//!
//! Formats, little-endian like ESDX, FNV-1a-checksummed like ESDX:
//!
//! ```text
//! full : magic "ESDF" | u32 version | u32 n | u64 m  | m  edges | u64 fnv1a
//! delta: magic "ESDD" | u32 version | u32 n | u64 +m | u64 -m | added | removed | u64 fnv1a
//! edge : u32 u | u32 v      (canonical u < v, strictly ascending lists)
//! ```
//!
//! Decoding validates everything (magic, version, ordering, canonical
//! form, bounds, checksum) so a corrupted checkpoint payload is rejected
//! with a typed [`DeltaError`] instead of materialising a garbage graph;
//! [`EdgeSetDelta::apply`] additionally refuses deltas that are
//! inconsistent with their base (an edge added twice or removed while
//! absent), which catches chain-confusion corruption that per-file
//! checksums cannot.

use esd_graph::{Edge, Graph};

const FULL_MAGIC: &[u8; 4] = b"ESDF";
const DELTA_MAGIC: &[u8; 4] = b"ESDD";
const VERSION: u32 = 1;

/// Errors raised when decoding or applying a checkpoint payload.
#[derive(Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// Not the expected payload kind.
    BadMagic,
    /// Produced by an incompatible library version.
    BadVersion(u32),
    /// Structurally invalid (truncation, ordering, non-canonical edge).
    Corrupt(&'static str),
    /// Checksum mismatch.
    ChecksumMismatch,
    /// The delta does not match the base snapshot it claims to extend.
    Inconsistent(&'static str),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::BadMagic => write!(f, "not an ESDX edge-set payload"),
            DeltaError::BadVersion(v) => write!(f, "unsupported edge-set payload version {v}"),
            DeltaError::Corrupt(what) => write!(f, "corrupt edge-set payload: {what}"),
            DeltaError::ChecksumMismatch => write!(f, "edge-set payload checksum mismatch"),
            DeltaError::Inconsistent(what) => write!(f, "delta inconsistent with base: {what}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// Streaming FNV-1a over the encoded bytes (same parameters as
/// [`super::persist`]).
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

/// A complete edge set at one publication epoch: the payload of a **full**
/// checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeSetSnapshot {
    /// Number of vertices (edges are bounded by it).
    pub num_vertices: u32,
    /// Canonical (`u < v`), strictly ascending edge list.
    pub edges: Vec<Edge>,
}

/// The changed-edge set between a base [`EdgeSetSnapshot`] and a later
/// state: the payload of a **delta** checkpoint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeSetDelta {
    /// Number of vertices of the *target* state.
    pub num_vertices: u32,
    /// Edges present in the target but not the base, ascending.
    pub added: Vec<Edge>,
    /// Edges present in the base but not the target, ascending.
    pub removed: Vec<Edge>,
}

/// `true` when `edges` is strictly ascending, canonical, and in-bounds.
fn edges_valid(edges: &[Edge], n: u32) -> bool {
    edges.windows(2).all(|w| w[0] < w[1])
        && edges
            .iter()
            .all(|e| e.u < e.v && u64::from(e.v) < u64::from(n).max(1))
}

fn encode_edges(out: &mut Vec<u8>, hash: &mut Fnv1a, edges: &[Edge]) {
    for e in edges {
        for half in [e.u, e.v] {
            let bytes = half.to_le_bytes();
            hash.update(&bytes);
            out.extend_from_slice(&bytes);
        }
    }
}

/// A cursor over the payload bytes that hashes everything it reads.
struct Decoder<'a> {
    bytes: &'a [u8],
    pos: usize,
    hash: Fnv1a,
}

impl<'a> Decoder<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Self {
            bytes,
            pos: 0,
            hash: Fnv1a::new(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], DeltaError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or(DeltaError::Corrupt("unexpected end of payload"))?;
        let slice = &self.bytes[self.pos..end];
        self.hash.update(slice);
        self.pos = end;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, DeltaError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, DeltaError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn edges(&mut self, count: u64) -> Result<Vec<Edge>, DeltaError> {
        let count = usize::try_from(count).map_err(|_| DeltaError::Corrupt("edge count"))?;
        if count > self.bytes.len() / 8 {
            return Err(DeltaError::Corrupt("edge count exceeds payload"));
        }
        let mut edges = Vec::with_capacity(count);
        for _ in 0..count {
            let u = self.u32()?;
            let v = self.u32()?;
            edges.push(Edge { u, v });
        }
        Ok(edges)
    }

    /// Verifies the trailing checksum (not hashed itself) and that the
    /// payload ends exactly there.
    fn finish(mut self) -> Result<(), DeltaError> {
        let want = self.hash.0;
        let got = u64::from_le_bytes(
            self.bytes
                .get(self.pos..self.pos + 8)
                .ok_or(DeltaError::Corrupt("missing checksum"))?
                .try_into()
                .expect("8 bytes"),
        );
        self.pos += 8;
        if self.pos != self.bytes.len() {
            return Err(DeltaError::Corrupt("trailing bytes after checksum"));
        }
        if got != want {
            return Err(DeltaError::ChecksumMismatch);
        }
        Ok(())
    }
}

impl EdgeSetSnapshot {
    /// Captures a snapshot from canonical, ascending `edges` (as produced
    /// by [`esd_graph::DynamicGraph::edges`] or [`Graph::edges`]).
    ///
    /// # Panics
    /// Debug-asserts the canonical ordering contract.
    #[must_use]
    pub fn new(num_vertices: u32, edges: Vec<Edge>) -> Self {
        debug_assert!(edges_valid(&edges, num_vertices), "edges not canonical");
        Self {
            num_vertices,
            edges,
        }
    }

    /// Captures the current state of a graph.
    #[must_use]
    pub fn from_graph(g: &esd_graph::DynamicGraph) -> Self {
        Self::new(g.num_vertices() as u32, g.edges())
    }

    /// Rebuilds the CSR graph this snapshot describes.
    #[must_use]
    pub fn to_graph(&self) -> Graph {
        let mut b =
            esd_graph::GraphBuilder::with_capacity(self.num_vertices as usize, self.edges.len());
        for e in &self.edges {
            b.add_edge(e.u, e.v);
        }
        b.build()
    }

    /// Encodes to the `ESDF` payload format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(24 + self.edges.len() * 8);
        let mut hash = Fnv1a::new();
        for field in [
            FULL_MAGIC.as_slice(),
            &VERSION.to_le_bytes(),
            &self.num_vertices.to_le_bytes(),
            &(self.edges.len() as u64).to_le_bytes(),
        ] {
            hash.update(field);
            out.extend_from_slice(field);
        }
        encode_edges(&mut out, &mut hash, &self.edges);
        out.extend_from_slice(&hash.0.to_le_bytes());
        out
    }

    /// Decodes and fully validates an `ESDF` payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, DeltaError> {
        let mut d = Decoder::new(bytes);
        if d.take(4)? != FULL_MAGIC {
            return Err(DeltaError::BadMagic);
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(DeltaError::BadVersion(version));
        }
        let n = d.u32()?;
        let m = d.u64()?;
        let edges = d.edges(m)?;
        d.finish()?;
        if !edges_valid(&edges, n) {
            return Err(DeltaError::Corrupt("edge list not canonical/ascending"));
        }
        Ok(Self {
            num_vertices: n,
            edges,
        })
    }

    /// The delta that turns `self` into `target` (two-pointer merge over
    /// the sorted edge lists).
    #[must_use]
    pub fn diff(&self, target: &EdgeSetSnapshot) -> EdgeSetDelta {
        let mut added = Vec::new();
        let mut removed = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < self.edges.len() || j < target.edges.len() {
            match (self.edges.get(i), target.edges.get(j)) {
                (Some(a), Some(b)) if a == b => {
                    i += 1;
                    j += 1;
                }
                (Some(a), Some(b)) if a < b => {
                    removed.push(*a);
                    i += 1;
                }
                (Some(_), Some(b)) => {
                    added.push(*b);
                    j += 1;
                }
                (Some(a), None) => {
                    removed.push(*a);
                    i += 1;
                }
                (None, Some(b)) => {
                    added.push(*b);
                    j += 1;
                }
                (None, None) => unreachable!("loop condition"),
            }
        }
        EdgeSetDelta {
            num_vertices: target.num_vertices,
            added,
            removed,
        }
    }
}

impl EdgeSetDelta {
    /// `(|added| + |removed|) / max(1, |base|)` — the full-snapshot
    /// fallback trigger compares this against its threshold.
    #[must_use]
    pub fn change_ratio(&self, base: &EdgeSetSnapshot) -> f64 {
        (self.added.len() + self.removed.len()) as f64 / base.edges.len().max(1) as f64
    }

    /// `true` when the delta changes nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.added.is_empty() && self.removed.is_empty()
    }

    /// Applies the delta to `base`, validating consistency: every removed
    /// edge must exist in the base and no added edge may already.
    pub fn apply(&self, base: &EdgeSetSnapshot) -> Result<EdgeSetSnapshot, DeltaError> {
        let mut removed = self.removed.iter().peekable();
        let mut edges = Vec::with_capacity(base.edges.len() + self.added.len());
        for e in &base.edges {
            match removed.peek() {
                Some(&r) if r == e => {
                    removed.next();
                }
                Some(&r) if r < e => {
                    return Err(DeltaError::Inconsistent("removed edge absent from base"))
                }
                _ => edges.push(*e),
            }
        }
        if removed.next().is_some() {
            return Err(DeltaError::Inconsistent("removed edge absent from base"));
        }
        // Merge the additions in, rejecting duplicates against the kept set.
        let mut merged = Vec::with_capacity(edges.len() + self.added.len());
        let mut added = self.added.iter().peekable();
        let mut kept = edges.iter().peekable();
        loop {
            match (kept.peek(), added.peek()) {
                (Some(&k), Some(&a)) if k == a => {
                    return Err(DeltaError::Inconsistent("added edge already in base"))
                }
                (Some(&k), Some(&a)) if k < a => {
                    merged.push(*k);
                    kept.next();
                }
                (Some(_), Some(&a)) => {
                    merged.push(*a);
                    added.next();
                }
                (Some(&k), None) => {
                    merged.push(*k);
                    kept.next();
                }
                (None, Some(&a)) => {
                    merged.push(*a);
                    added.next();
                }
                (None, None) => break,
            }
        }
        if !edges_valid(&merged, self.num_vertices.max(base.num_vertices)) {
            return Err(DeltaError::Inconsistent("merged edge set not canonical"));
        }
        Ok(EdgeSetSnapshot {
            num_vertices: self.num_vertices.max(base.num_vertices),
            edges: merged,
        })
    }

    /// Encodes to the `ESDD` payload format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + (self.added.len() + self.removed.len()) * 8);
        let mut hash = Fnv1a::new();
        for field in [
            DELTA_MAGIC.as_slice(),
            &VERSION.to_le_bytes(),
            &self.num_vertices.to_le_bytes(),
            &(self.added.len() as u64).to_le_bytes(),
            &(self.removed.len() as u64).to_le_bytes(),
        ] {
            hash.update(field);
            out.extend_from_slice(field);
        }
        encode_edges(&mut out, &mut hash, &self.added);
        encode_edges(&mut out, &mut hash, &self.removed);
        out.extend_from_slice(&hash.0.to_le_bytes());
        out
    }

    /// Decodes and fully validates an `ESDD` payload.
    pub fn decode(bytes: &[u8]) -> Result<Self, DeltaError> {
        let mut d = Decoder::new(bytes);
        if d.take(4)? != DELTA_MAGIC {
            return Err(DeltaError::BadMagic);
        }
        let version = d.u32()?;
        if version != VERSION {
            return Err(DeltaError::BadVersion(version));
        }
        let n = d.u32()?;
        let added_len = d.u64()?;
        let removed_len = d.u64()?;
        let added = d.edges(added_len)?;
        let removed = d.edges(removed_len)?;
        d.finish()?;
        if !edges_valid(&added, n) || !edges_valid(&removed, u32::MAX) {
            return Err(DeltaError::Corrupt("edge list not canonical/ascending"));
        }
        Ok(Self {
            num_vertices: n,
            added,
            removed,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use esd_graph::generators;
    use proptest::prelude::*;

    fn snap(g: &esd_graph::Graph) -> EdgeSetSnapshot {
        EdgeSetSnapshot::new(g.num_vertices() as u32, g.edges().to_vec())
    }

    #[test]
    fn full_roundtrip() {
        let g = generators::clique_overlap(60, 50, 5, 3);
        let s = snap(&g);
        let decoded = EdgeSetSnapshot::decode(&s.encode()).unwrap();
        assert_eq!(decoded, s);
        assert_eq!(decoded.to_graph(), g);
    }

    #[test]
    fn delta_roundtrip_and_apply() {
        let g1 = generators::erdos_renyi(40, 0.15, 7);
        let g2 = generators::erdos_renyi(40, 0.15, 8);
        let (s1, s2) = (snap(&g1), snap(&g2));
        let delta = s1.diff(&s2);
        let decoded = EdgeSetDelta::decode(&delta.encode()).unwrap();
        assert_eq!(decoded, delta);
        assert_eq!(decoded.apply(&s1).unwrap(), s2);
        // Identity delta.
        let nothing = s1.diff(&s1);
        assert!(nothing.is_empty());
        assert_eq!(nothing.apply(&s1).unwrap(), s1);
    }

    #[test]
    fn change_ratio_counts_both_directions() {
        let base = EdgeSetSnapshot::new(10, vec![Edge::new(0, 1), Edge::new(2, 3)]);
        let target = EdgeSetSnapshot::new(10, vec![Edge::new(0, 1), Edge::new(4, 5)]);
        let delta = base.diff(&target);
        assert_eq!(delta.added, vec![Edge::new(4, 5)]);
        assert_eq!(delta.removed, vec![Edge::new(2, 3)]);
        assert!((delta.change_ratio(&base) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn inconsistent_deltas_are_refused() {
        let base = EdgeSetSnapshot::new(10, vec![Edge::new(0, 1)]);
        let add_existing = EdgeSetDelta {
            num_vertices: 10,
            added: vec![Edge::new(0, 1)],
            removed: vec![],
        };
        assert!(matches!(
            add_existing.apply(&base),
            Err(DeltaError::Inconsistent(_))
        ));
        let remove_missing = EdgeSetDelta {
            num_vertices: 10,
            added: vec![],
            removed: vec![Edge::new(5, 6)],
        };
        assert!(matches!(
            remove_missing.apply(&base),
            Err(DeltaError::Inconsistent(_))
        ));
    }

    #[test]
    fn corrupted_payloads_are_rejected_not_misread() {
        let g = generators::erdos_renyi(25, 0.2, 9);
        let bytes = snap(&g).encode();
        // Every single-byte corruption and every truncation must fail.
        for i in 0..bytes.len() {
            for mask in [0x01u8, 0x80, 0xFF] {
                let mut bad = bytes.clone();
                bad[i] ^= mask;
                if bad == bytes {
                    continue;
                }
                assert!(
                    EdgeSetSnapshot::decode(&bad).is_err(),
                    "flip at byte {i} mask {mask:#x} must not decode"
                );
            }
        }
        for len in 0..bytes.len() {
            assert!(EdgeSetSnapshot::decode(&bytes[..len]).is_err());
        }
        // Cross-kind confusion.
        assert!(matches!(
            EdgeSetDelta::decode(&bytes),
            Err(DeltaError::BadMagic)
        ));
    }

    #[test]
    fn oversized_counts_fail_fast_without_allocating() {
        let mut bytes = EdgeSetSnapshot::new(4, vec![Edge::new(0, 1)]).encode();
        // Patch the edge count (offset 12) to something enormous.
        bytes[12..20].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            EdgeSetSnapshot::decode(&bytes),
            Err(DeltaError::Corrupt(_))
        ));
    }

    proptest! {
        #[test]
        fn prop_diff_apply_is_identity(seed1 in 0u64..50, seed2 in 0u64..50) {
            let g1 = generators::erdos_renyi(30, 0.12, seed1);
            let g2 = generators::erdos_renyi(30, 0.12, seed2);
            let (s1, s2) = (snap(&g1), snap(&g2));
            let delta = s1.diff(&s2);
            prop_assert_eq!(delta.apply(&s1).unwrap(), s2.clone());
            // And through the codec.
            let delta2 = EdgeSetDelta::decode(&delta.encode()).unwrap();
            let s1b = EdgeSetSnapshot::decode(&s1.encode()).unwrap();
            prop_assert_eq!(delta2.apply(&s1b).unwrap(), s2);
        }

        #[test]
        fn prop_arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..256)) {
            let _ = EdgeSetSnapshot::decode(&bytes);
            let _ = EdgeSetDelta::decode(&bytes);
        }
    }
}
