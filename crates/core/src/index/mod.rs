//! The ESDIndex (§IV): near-optimal top-k edge structural diversity queries.
//!
//! For every distinct component size `c ∈ C` occurring in any edge
//! ego-network, the index keeps a list `H(c)` of all edges having at least
//! one component of size ≥ c, ranked by their structural diversity at
//! threshold `c`. A query `(k, τ)` binary-searches `C` for the smallest
//! `c* ≥ τ` and reads the top `k` of `H(c*)` — `O(k log m + log n)` total
//! (Theorems 4–5). Total space is `O(αm)` (Theorem 3).
//!
//! Three constructions are provided:
//! * [`EsdIndex::build_basic`] — Algorithm 2: BFS over every edge
//!   ego-network, `O((d_max + log m)·αm)`.
//! * [`EsdIndex::build_fast`] — Algorithm 3 (the paper's `ESDIndex+`):
//!   4-clique enumeration + union–find, `O((αγ(n) + log m)·αm)`.
//! * [`EsdIndex::build_parallel`] — §IV-E (the paper's `PESDIndex+`):
//!   edge-parallel 4-clique enumeration with sharded DSU application.

pub(crate) mod build;
pub mod delta;
pub mod frozen;
pub mod ostree;
mod parallel;
pub mod persist;

pub use build::BuildStats;
pub use delta::{DeltaError, EdgeSetDelta, EdgeSetSnapshot};
pub use frozen::FrozenEsdIndex;

/// Assembles an [`EsdIndex`] from precomputed per-edge component sizes
/// (Algorithm 2 lines 5–15). Exposed so callers timing or customising the
/// component phase can reuse the list-fill phase.
pub fn assemble_index(g: &Graph, comps: &EdgeComponents) -> EsdIndex {
    EsdIndex::from_components(g, comps)
}
pub use parallel::ParallelBuildReport;
pub use persist::PersistError;

use crate::ScoredEdge;
use esd_graph::{Edge, Graph};
use ostree::{RankKey, ScoreTreap};

/// Per-edge sorted component-size multisets — the `C_uv` of every edge,
/// stored flat. The common intermediate from which the index is assembled;
/// also useful standalone (e.g. for scoring every edge at several τ without
/// building the full index). Produced by [`EdgeComponents::by_bfs`]
/// (Algorithm 2's per-edge BFS) or [`EdgeComponents::by_four_cliques`]
/// (Algorithm 3's enumerate-once pass) — both yield identical data.
#[derive(Debug, Clone, Default)]
pub struct EdgeComponents {
    /// `offsets[e]..offsets[e+1]` is edge `e`'s slice; length `m + 1`.
    pub(crate) offsets: Vec<usize>,
    /// Flat ascending-sorted size lists.
    pub(crate) sizes: Vec<u32>,
}

impl EdgeComponents {
    /// Component sizes of every edge ego-network by per-edge BFS
    /// (Algorithm 2 lines 1–3).
    pub fn by_bfs(g: &Graph) -> Self {
        let comps = build::components_by_bfs(g);
        #[cfg(any(test, feature = "strict-invariants"))]
        crate::audit::assert_clean("EdgeComponents (by_bfs)", &comps.validate());
        comps
    }

    /// Component sizes of every edge ego-network by 4-clique enumeration +
    /// union–find (Algorithm 3 lines 1–22).
    pub fn by_four_cliques(g: &Graph) -> Self {
        build::components_by_four_cliques(g).components
    }

    /// Edge `e`'s sorted component sizes (the paper's `C_uv`).
    #[inline]
    pub fn sizes_of(&self, e: usize) -> &[u32] {
        &self.sizes[self.offsets[e]..self.offsets[e + 1]]
    }

    /// The edge's structural diversity at threshold `tau`.
    pub fn score_of(&self, e: usize, tau: u32) -> u32 {
        crate::score::score_from_sizes(self.sizes_of(e), tau)
    }

    /// Number of edges covered.
    pub fn num_edges(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }
}

/// The ESDIndex: one ranked list per distinct component size.
#[derive(Debug, Clone, Default)]
pub struct EsdIndex {
    /// `C`, ascending.
    pub(crate) sizes: Vec<u32>,
    /// `H(c)` for each `c ∈ C`, parallel to `sizes`.
    pub(crate) lists: Vec<ScoreTreap>,
}

impl EsdIndex {
    /// Builds the index by per-edge BFS (Algorithm 2, the paper's
    /// `ESDIndex` baseline builder).
    pub fn build_basic(g: &Graph) -> Self {
        Self::from_components(g, &build::components_by_bfs(g))
    }

    /// Builds the index by 4-clique enumeration and union–find
    /// (Algorithm 3, the paper's `ESDIndex+` builder).
    pub fn build_fast(g: &Graph) -> Self {
        Self::from_components(g, &build::components_by_four_cliques(g).components)
    }

    /// [`EsdIndex::build_fast`] plus the 4-clique work counters, for the
    /// experiments harness.
    pub fn build_fast_with_stats(g: &Graph) -> (Self, BuildStats) {
        let artifacts = build::components_by_four_cliques(g);
        (
            Self::from_components(g, &artifacts.components),
            artifacts.stats,
        )
    }

    /// Builds the index with `threads` worker threads (the paper's
    /// `PESDIndex+`, §IV-E). Produces a byte-identical index to
    /// [`EsdIndex::build_fast`] for every thread count.
    pub fn build_parallel(g: &Graph, threads: usize) -> Self {
        parallel::build_parallel(g, threads).0
    }

    /// [`EsdIndex::build_parallel`] plus the per-worker/per-shard work
    /// balance report (printed by the Fig 7/10 experiments).
    pub fn build_parallel_with_report(g: &Graph, threads: usize) -> (Self, ParallelBuildReport) {
        parallel::build_parallel(g, threads)
    }

    /// Assembles lists from per-edge component sizes (Algorithm 2 lines
    /// 5–15, shared by every builder).
    pub(crate) fn from_components(g: &Graph, comps: &EdgeComponents) -> Self {
        let _span = esd_telemetry::span(esd_telemetry::Stage::BuildFill);
        let sizes = build::distinct_sizes(comps);
        let mut lists = vec![ScoreTreap::new(); sizes.len()];
        build::fill_lists(g.edges(), comps, &sizes, &mut lists, 0..sizes.len());
        let index = Self { sizes, lists };
        #[cfg(any(test, feature = "strict-invariants"))]
        crate::audit::assert_clean("EsdIndex (post-build)", &index.validate());
        index
    }

    /// The distinct component sizes `C`, ascending.
    pub fn component_sizes(&self) -> &[u32] {
        &self.sizes
    }

    /// Number of lists `|C|`.
    pub fn num_lists(&self) -> usize {
        self.sizes.len()
    }

    /// Entry count of `H(c)`, if `c ∈ C`.
    pub fn list_len(&self, c: u32) -> Option<usize> {
        let i = self.sizes.binary_search(&c).ok()?;
        Some(self.lists[i].len())
    }

    /// Total number of `(edge, list)` entries — the `O(αm)` quantity of
    /// Theorem 3.
    pub fn total_entries(&self) -> usize {
        self.lists.iter().map(ostree::ScoreTreap::len).sum()
    }

    /// Approximate heap footprint in bytes (Fig 6(a)).
    pub fn byte_size(&self) -> usize {
        self.sizes.capacity() * std::mem::size_of::<u32>()
            + self
                .lists
                .iter()
                .map(ostree::ScoreTreap::byte_size)
                .sum::<usize>()
    }

    /// The query processing algorithm (§IV-B): top-`k` edges with the
    /// highest structural diversity at threshold `tau`, in
    /// `O(k log m + log n)`.
    ///
    /// # Examples
    ///
    /// ```
    /// use esd_core::index::EsdIndex;
    /// use esd_core::fixtures::fig1;
    ///
    /// let (g, _) = fig1();
    /// let index = EsdIndex::build_fast(&g);
    /// let top = index.query(3, 2);
    /// assert!(top.iter().all(|s| s.score == 2));
    /// ```
    pub fn query(&self, k: usize, tau: u32) -> Vec<ScoredEdge> {
        assert!(tau >= 1, "component size threshold must be at least 1");
        let _span = esd_telemetry::span(esd_telemetry::Stage::QueryTopk);
        // Smallest c* ∈ C with c* >= τ.
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return Vec::new();
        }
        self.lists[i].top_k(k)
    }

    /// The rank of `edge` within the list answering threshold `tau`
    /// (0 = best), if the edge has a component of size ≥ τ. Requires the
    /// edge's exact score at τ, available from [`crate::score::edge_score`].
    pub fn rank_of(&self, edge: Edge, score: u32, tau: u32) -> Option<usize> {
        let i = self.sizes.partition_point(|&c| c < tau);
        if i == self.sizes.len() {
            return None;
        }
        self.lists[i].rank(&RankKey { score, edge })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::score::naive_topk;
    use esd_graph::generators;

    #[test]
    fn fig1_index_structure_matches_example4() {
        let (g, _) = fig1();
        for index in [EsdIndex::build_basic(&g), EsdIndex::build_fast(&g)] {
            assert_eq!(index.component_sizes(), &[1, 2, 4, 5]);
            assert_eq!(index.list_len(1), Some(40), "H(1) contains all edges");
            assert_eq!(
                index.list_len(2),
                Some(33),
                "40 minus the 7 max-size-1 edges"
            );
            assert_eq!(index.list_len(4), Some(15), "the K6 edges");
            assert_eq!(index.list_len(5), Some(3));
            assert_eq!(index.list_len(3), None, "3 ∉ C");
        }
    }

    #[test]
    fn basic_and_fast_build_identical_indexes() {
        for seed in 0..4 {
            let g = generators::erdos_renyi(50, 0.2, seed);
            let a = EsdIndex::build_basic(&g);
            let b = EsdIndex::build_fast(&g);
            assert_eq!(a.component_sizes(), b.component_sizes());
            for (la, lb) in a.lists.iter().zip(&b.lists) {
                assert_eq!(la.iter_ranked(), lb.iter_ranked());
            }
        }
    }

    #[test]
    fn query_matches_naive_all_parameters() {
        let (g, _) = fig1();
        let index = EsdIndex::build_fast(&g);
        for tau in 1..=7 {
            for k in [1, 3, 10, 100] {
                assert_eq!(index.query(k, tau), naive_topk(&g, k, tau), "k={k} τ={tau}");
            }
        }
    }

    #[test]
    fn query_routing_between_sizes() {
        // Fig 1: C = {1,2,4,5}. τ = 3 must route to H(4) (Theorem 4 case 2).
        let (g, _) = fig1();
        let index = EsdIndex::build_fast(&g);
        assert_eq!(index.query(100, 3), index.query(100, 4));
        assert!(index.query(5, 6).is_empty(), "τ beyond max C");
    }

    #[test]
    fn query_on_random_graphs_matches_naive() {
        for seed in 0..5 {
            let g = generators::clique_overlap(80, 60, 5, seed);
            let index = EsdIndex::build_fast(&g);
            for tau in [1, 2, 3, 4] {
                assert_eq!(index.query(12, tau), naive_topk(&g, 12, tau));
            }
        }
    }

    #[test]
    fn empty_graph_index() {
        let g = Graph::from_edges(0, &[]);
        let index = EsdIndex::build_fast(&g);
        assert_eq!(index.num_lists(), 0);
        assert!(index.query(5, 1).is_empty());
    }

    #[test]
    fn triangle_free_graph_has_no_lists() {
        let g = generators::star(10);
        let index = EsdIndex::build_fast(&g);
        assert_eq!(index.num_lists(), 0, "all ego-networks are empty");
    }

    #[test]
    fn rank_of_top_edge_is_zero() {
        let (g, _) = fig1();
        let index = EsdIndex::build_fast(&g);
        let top = index.query(1, 5)[0];
        assert_eq!(index.rank_of(top.edge, top.score, 5), Some(0));
    }

    #[test]
    fn total_entries_bounded_by_sum_min_degree() {
        let g = generators::clique_overlap(100, 80, 6, 2);
        let index = EsdIndex::build_fast(&g);
        let bound = esd_graph::metrics::sum_min_degree(&g);
        assert!(index.total_entries() as u64 <= bound, "Theorem 3 bound");
    }
}
