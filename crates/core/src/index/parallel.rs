//! Parallel index construction (the paper's `PESDIndex+`, §IV-E).
//!
//! The paper parallelises 4-clique enumeration over *directed edges* (vertex
//! parallelism is too skewed) — but its per-edge union–find structures are
//! shared, which would race. This implementation keeps the edge-parallel
//! enumeration and makes the updates sound with a two-phase scheme:
//!
//! 1. **Enumerate** (parallel): workers sweep disjoint blocks of directed
//!    edges, turning each 4-clique into six `(edge, slot, slot)` union ops,
//!    binned by the *shard* owning the target edge.
//! 2. **Apply** (parallel): shard `s` owns a contiguous range of edge ids
//!    (cut so every shard owns roughly the same total neighbourhood size)
//!    and its own [`ArenaDsu`]; it applies every op binned to it. Shards
//!    touch disjoint state, so no locks are needed.
//!
//! The two phases alternate in bounded-size rounds to cap the op-buffer
//! memory. Workers are plain `std::thread::scope` scoped threads — the
//! shards partition all mutable state, so no synchronisation primitives
//! beyond the scope joins are needed. Finally the `H(c)` lists are filled in parallel over disjoint
//! ranges of `C`. Union–find components are order-independent and treap
//! shapes depend only on their keys, so the result is **byte-identical to
//! the sequential builder for every thread count** — a property the tests
//! assert.

use super::{build, EdgeComponents, EsdIndex, ScoreTreap};
use esd_dsu::ArenaDsu;
use esd_graph::{cliques::FourCliqueEnumerator, Graph, OrientedGraph, VertexId};

/// One union operation destined for a specific edge's forest.
#[derive(Debug, Clone, Copy)]
struct Op {
    edge: u32,
    a: u32,
    b: u32,
}

/// Work-balance report of a parallel build (Figs 7/10 additionally print
/// this to demonstrate the edge-parallel balancing claim of §IV-E).
#[derive(Debug, Clone)]
pub struct ParallelBuildReport {
    /// Worker threads used.
    pub threads: usize,
    /// 4-cliques enumerated by each worker.
    pub cliques_per_worker: Vec<u64>,
    /// Union ops applied by each shard.
    pub ops_per_shard: Vec<u64>,
}

/// Builds the index with `threads` workers; returns the index and the
/// work-balance report.
pub(crate) fn build_parallel(g: &Graph, threads: usize) -> (EsdIndex, ParallelBuildReport) {
    let threads = threads.max(1);
    let m = g.num_edges();

    // ---- Phase A: per-edge common neighbourhoods (parallel over edges).
    let (nbr_offsets, nbrs) = {
        let _span = esd_telemetry::span(esd_telemetry::Stage::ParNeighborhoods);
        parallel_neighborhoods(g, threads)
    };
    esd_telemetry::add(esd_telemetry::Metric::BuildNbrTotal, nbrs.len() as u64);

    // ---- Shard boundaries: contiguous edge ranges balanced by Σ|N(uv)|.
    let total = *nbr_offsets.last().unwrap_or(&0);
    let mut shard_bounds = Vec::with_capacity(threads + 1);
    shard_bounds.push(0usize);
    for s in 1..threads {
        let target = total * s / threads;
        let e = nbr_offsets.partition_point(|&o| o < target).min(m);
        shard_bounds.push((*shard_bounds.last().unwrap()).max(e));
    }
    shard_bounds.push(m);

    // Per-shard forests over the shard's rebased neighbourhood offsets.
    let mut arenas: Vec<ArenaDsu> = (0..threads)
        .map(|s| {
            let (lo, hi) = (shard_bounds[s], shard_bounds[s + 1]);
            let base = nbr_offsets[lo];
            let offsets: Vec<usize> = nbr_offsets[lo..=hi].iter().map(|&o| o - base).collect();
            ArenaDsu::new(offsets)
        })
        .collect();

    // ---- Phase B: enumerate + apply, in rounds over directed-edge blocks.
    let dag = OrientedGraph::by_degree(g);
    let directed: Vec<(VertexId, VertexId)> = (0..g.num_vertices() as VertexId)
        .flat_map(|u| dag.out_neighbors(u).iter().map(move |&v| (u, v)))
        .collect();
    let mut cliques_per_worker = vec![0u64; threads];
    let mut ops_per_shard = vec![0u64; threads];

    let slot = |edge: u32, x: VertexId| -> u32 {
        let range = &nbrs[nbr_offsets[edge as usize]..nbr_offsets[edge as usize + 1]];
        range.binary_search(&x).expect("vertex in neighbourhood") as u32
    };
    let shard_of =
        |edge: u32| -> usize { shard_bounds.partition_point(|&b| b <= edge as usize) - 1 };

    // Block size chosen so a round's op buffers stay modest while still
    // amortising the thread joins.
    let block = (directed.len() / (4 * threads)).max(4096);
    let mut cursor = 0;
    while cursor < directed.len() {
        let round = &directed[cursor..(cursor + threads * block).min(directed.len())];
        cursor += round.len();

        // Enumerate in parallel: each worker bins ops by target shard.
        let _enum_span = esd_telemetry::span(esd_telemetry::Stage::ParEnumerate);
        let chunk = round.len().div_ceil(threads);
        let mut all_bins: Vec<(usize, Vec<Vec<Op>>, u64)> = Vec::with_capacity(threads);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (w, part) in round.chunks(chunk.max(1)).enumerate() {
                let dag = &dag;
                let slot = &slot;
                let shard_of = &shard_of;
                handles.push(scope.spawn(move || {
                    let mut bins: Vec<Vec<Op>> = vec![Vec::new(); threads];
                    let mut cliques = 0u64;
                    let mut enumerator = FourCliqueEnumerator::new(g.num_vertices());
                    for &(u, v) in part {
                        let e_uv = g.edge_id(u, v).expect("directed edge");
                        enumerator.for_edge(dag, u, v, |w1, w2| {
                            cliques += 1;
                            let e_uw1 = g.edge_id(u, w1).expect("clique edge");
                            let e_uw2 = g.edge_id(u, w2).expect("clique edge");
                            let e_vw1 = g.edge_id(v, w1).expect("clique edge");
                            let e_vw2 = g.edge_id(v, w2).expect("clique edge");
                            let e_w1w2 = g.edge_id(w1, w2).expect("clique edge");
                            for (e, x, y) in [
                                (e_uv, w1, w2),
                                (e_uw1, v, w2),
                                (e_uw2, v, w1),
                                (e_vw1, u, w2),
                                (e_vw2, u, w1),
                                (e_w1w2, u, v),
                            ] {
                                bins[shard_of(e)].push(Op {
                                    edge: e,
                                    a: slot(e, x),
                                    b: slot(e, y),
                                });
                            }
                        });
                    }
                    (w, bins, cliques)
                }));
            }
            for h in handles {
                all_bins.push(h.join().expect("enumeration worker"));
            }
        });
        for &(w, _, cliques) in &all_bins {
            cliques_per_worker[w] += cliques;
        }
        drop(_enum_span);

        // Apply in parallel: shard s drains every worker's bin s.
        let _apply_span = esd_telemetry::span(esd_telemetry::Stage::ParApply);
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (s, arena) in arenas.iter_mut().enumerate() {
                let all_bins = &all_bins;
                let shard_bounds = &shard_bounds;
                handles.push(scope.spawn(move || {
                    let lo = shard_bounds[s];
                    let mut applied = 0u64;
                    for (_, bins, _) in all_bins {
                        for op in &bins[s] {
                            arena.union(op.edge as usize - lo, op.a as usize, op.b as usize);
                            applied += 1;
                        }
                    }
                    (s, applied)
                }));
            }
            for h in handles {
                let (s, applied) = h.join().expect("apply worker");
                ops_per_shard[s] += applied;
            }
        });
    }

    esd_telemetry::add(
        esd_telemetry::Metric::ParOpsApplied,
        ops_per_shard.iter().sum(),
    );

    // ---- Phase C: extract component sizes per shard (parallel).
    let extract_span = esd_telemetry::span(esd_telemetry::Stage::ParExtract);
    let mut pieces: Vec<(usize, EdgeComponents)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (s, arena) in arenas.iter().enumerate() {
            let shard_bounds = &shard_bounds;
            handles.push(scope.spawn(move || {
                let len = shard_bounds[s + 1] - shard_bounds[s];
                (s, build::components_from_arena(arena, len))
            }));
        }
        for h in handles {
            pieces.push(h.join().expect("extract worker"));
        }
    });
    pieces.sort_by_key(|&(s, _)| s);
    let mut comps = EdgeComponents {
        offsets: Vec::with_capacity(m + 1),
        sizes: Vec::new(),
    };
    comps.offsets.push(0);
    for (_, piece) in pieces {
        let base = comps.sizes.len();
        comps.sizes.extend(piece.sizes);
        comps
            .offsets
            .extend(piece.offsets[1..].iter().map(|&o| o + base));
    }
    debug_assert_eq!(comps.num_edges(), m);
    drop(extract_span);

    // ---- Phase D: fill H(c) lists in parallel over disjoint C ranges.
    let _fill_span = esd_telemetry::span(esd_telemetry::Stage::ParFill);
    let csizes = build::distinct_sizes(&comps);
    let mut lists: Vec<ScoreTreap> = Vec::with_capacity(csizes.len());
    let per = csizes.len().div_ceil(threads).max(1);
    let mut filled: Vec<(usize, Vec<ScoreTreap>)> = Vec::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = (t * per).min(csizes.len());
            let hi = ((t + 1) * per).min(csizes.len());
            if lo == hi {
                continue;
            }
            let comps = &comps;
            let csizes = &csizes;
            handles.push(scope.spawn(move || {
                let mut chunk = vec![ScoreTreap::new(); hi - lo];
                build::fill_lists(g.edges(), comps, csizes, &mut chunk, lo..hi);
                (lo, chunk)
            }));
        }
        for h in handles {
            filled.push(h.join().expect("fill worker"));
        }
    });
    filled.sort_by_key(|&(lo, _)| lo);
    for (_, chunk) in filled {
        lists.extend(chunk);
    }

    (
        EsdIndex {
            sizes: csizes,
            lists,
        },
        ParallelBuildReport {
            threads,
            cliques_per_worker,
            ops_per_shard,
        },
    )
}

/// Phase A: common neighbourhoods computed by parallel workers over
/// contiguous edge ranges, then stitched.
fn parallel_neighborhoods(g: &Graph, threads: usize) -> (Vec<usize>, Vec<VertexId>) {
    let m = g.num_edges();
    if threads <= 1 || m < 1024 {
        return build::neighborhoods(g);
    }
    let chunk = m.div_ceil(threads);
    let mut parts: Vec<(usize, Vec<usize>, Vec<VertexId>)> = Vec::with_capacity(threads);
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for t in 0..threads {
            let lo = (t * chunk).min(m);
            let hi = ((t + 1) * chunk).min(m);
            if lo == hi {
                continue;
            }
            handles.push(scope.spawn(move || {
                let mut lens = Vec::with_capacity(hi - lo);
                let mut flat = Vec::new();
                for e in &g.edges()[lo..hi] {
                    let before = flat.len();
                    esd_graph::intersect::intersect_into(
                        g.neighbors(e.u),
                        g.neighbors(e.v),
                        &mut flat,
                    );
                    lens.push(flat.len() - before);
                }
                (lo, lens, flat)
            }));
        }
        for h in handles {
            parts.push(h.join().expect("neighbourhood worker"));
        }
    });
    parts.sort_by_key(|&(lo, _, _)| lo);
    let mut offsets = Vec::with_capacity(m + 1);
    offsets.push(0usize);
    let mut nbrs = Vec::new();
    for (_, lens, flat) in parts {
        for len in lens {
            offsets.push(offsets.last().unwrap() + len);
        }
        nbrs.extend(flat);
    }
    (offsets, nbrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    #[test]
    fn parallel_equals_sequential_for_all_thread_counts() {
        let g = generators::clique_overlap(120, 100, 6, 7);
        let sequential = EsdIndex::build_fast(&g);
        for threads in [1, 2, 3, 4, 7] {
            let (parallel, report) = build_parallel(&g, threads);
            assert_eq!(parallel.component_sizes(), sequential.component_sizes());
            assert_eq!(parallel.num_lists(), sequential.num_lists());
            for c in parallel.component_sizes() {
                assert_eq!(parallel.list_len(*c), sequential.list_len(*c));
            }
            for tau in [1, 2, 3] {
                assert_eq!(parallel.query(20, tau), sequential.query(20, tau));
            }
            let total_ops: u64 = report.ops_per_shard.iter().sum();
            assert_eq!(total_ops, report.cliques_per_worker.iter().sum::<u64>() * 6);
        }
    }

    #[test]
    fn fig1_parallel() {
        let (g, _) = fig1();
        let index = EsdIndex::build_parallel(&g, 3);
        assert_eq!(index.component_sizes(), &[1, 2, 4, 5]);
        assert_eq!(index.list_len(4), Some(15));
    }

    #[test]
    fn degenerate_inputs() {
        let empty = Graph::from_edges(0, &[]);
        let (idx, _) = build_parallel(&empty, 4);
        assert_eq!(idx.num_lists(), 0);
        let star = generators::star(50);
        let (idx, _) = build_parallel(&star, 2);
        assert_eq!(idx.num_lists(), 0);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let (g, _) = fig1();
        let (idx, report) = build_parallel(&g, 0);
        assert_eq!(report.threads, 1);
        assert_eq!(idx.component_sizes(), &[1, 2, 4, 5]);
    }
}
