//! On-disk persistence of the frozen index.
//!
//! Production deployments build the index once (possibly on a bigger
//! machine) and ship it next to the graph. The format is a little-endian
//! versioned binary dump of the [`FrozenEsdIndex`] arrays with a checksum:
//!
//! ```text
//! magic "ESDX" | u32 version | u64 |C| | u64 #entries
//! C as u32s | list offsets as u64s (|C|+1) | entries as (u32 u, u32 v, u32 score)
//! u64 fnv1a checksum of everything above
//! ```
//!
//! No external serialisation crate is needed; the format is explicit,
//! stable, and validated on load (magic, version, arity, offsets
//! monotonicity, checksum), so truncated or corrupted files are rejected
//! rather than misread.

use super::frozen::FrozenEsdIndex;
use crate::ScoredEdge;
use esd_graph::Edge;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"ESDX";
const VERSION: u32 = 1;

/// Errors raised when loading a persisted index.
#[derive(Debug)]
pub enum PersistError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// Not an ESDX file.
    BadMagic,
    /// Produced by an incompatible library version.
    BadVersion(u32),
    /// Structurally invalid (bad offsets, truncation, bad edge).
    Corrupt(&'static str),
    /// Checksum mismatch.
    ChecksumMismatch,
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(e) => write!(f, "i/o error: {e}"),
            PersistError::BadMagic => write!(f, "not an ESDX index file"),
            PersistError::BadVersion(v) => write!(f, "unsupported ESDX version {v}"),
            PersistError::Corrupt(what) => write!(f, "corrupt index file: {what}"),
            PersistError::ChecksumMismatch => write!(f, "checksum mismatch"),
        }
    }
}

impl std::error::Error for PersistError {}

impl From<io::Error> for PersistError {
    fn from(e: io::Error) -> Self {
        PersistError::Io(e)
    }
}

/// Streaming FNV-1a, applied to every byte written/read before the trailer.
struct Fnv1a(u64);

impl Fnv1a {
    fn new() -> Self {
        Self(0xcbf2_9ce4_8422_2325)
    }

    fn update(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(0x0000_0100_0000_01B3);
        }
    }
}

struct CountingWriter<W: Write> {
    inner: W,
    hash: Fnv1a,
}

impl<W: Write> CountingWriter<W> {
    fn put(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.hash.update(bytes);
        self.inner.write_all(bytes)
    }

    fn put_u32(&mut self, v: u32) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }

    fn put_u64(&mut self, v: u64) -> io::Result<()> {
        self.put(&v.to_le_bytes())
    }
}

struct HashingReader<R: Read> {
    inner: R,
    hash: Fnv1a,
}

impl<R: Read> HashingReader<R> {
    fn get(&mut self, buf: &mut [u8]) -> Result<(), PersistError> {
        self.inner
            .read_exact(buf)
            .map_err(|_| PersistError::Corrupt("unexpected end of file"))?;
        self.hash.update(buf);
        Ok(())
    }

    fn get_u32(&mut self) -> Result<u32, PersistError> {
        let mut b = [0u8; 4];
        self.get(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn get_u64(&mut self) -> Result<u64, PersistError> {
        let mut b = [0u8; 8];
        self.get(&mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

impl FrozenEsdIndex {
    /// Serialises to any writer in the ESDX format.
    pub fn write_to(&self, writer: impl Write) -> io::Result<()> {
        let mut w = CountingWriter {
            inner: BufWriter::new(writer),
            hash: Fnv1a::new(),
        };
        w.put(MAGIC)?;
        w.put_u32(VERSION)?;
        w.put_u64(self.sizes.len() as u64)?;
        w.put_u64(self.entries.len() as u64)?;
        for &c in &self.sizes {
            w.put_u32(c)?;
        }
        for &off in &self.list_offsets {
            w.put_u64(off as u64)?;
        }
        for e in &self.entries {
            w.put_u32(e.edge.u)?;
            w.put_u32(e.edge.v)?;
            w.put_u32(e.score)?;
        }
        let checksum = w.hash.0;
        w.inner.write_all(&checksum.to_le_bytes())?;
        w.inner.flush()
    }

    /// Deserialises from any reader, validating structure and checksum.
    pub fn read_from(reader: impl Read) -> Result<Self, PersistError> {
        let mut r = HashingReader {
            inner: BufReader::new(reader),
            hash: Fnv1a::new(),
        };
        let mut magic = [0u8; 4];
        r.get(&mut magic)?;
        if &magic != MAGIC {
            return Err(PersistError::BadMagic);
        }
        let version = r.get_u32()?;
        if version != VERSION {
            return Err(PersistError::BadVersion(version));
        }
        let num_lists = r.get_u64()? as usize;
        let num_entries = r.get_u64()? as usize;
        // Arity guard before allocating (a corrupt header must not OOM us).
        if num_lists > (1 << 32) || num_entries > (1 << 40) {
            return Err(PersistError::Corrupt("implausible header counts"));
        }
        let mut sizes = Vec::with_capacity(num_lists);
        for _ in 0..num_lists {
            sizes.push(r.get_u32()?);
        }
        if !sizes.windows(2).all(|w| w[0] < w[1]) {
            return Err(PersistError::Corrupt("C not strictly ascending"));
        }
        let mut list_offsets = Vec::with_capacity(num_lists + 1);
        for _ in 0..=num_lists {
            list_offsets.push(r.get_u64()? as usize);
        }
        let monotone = list_offsets.windows(2).all(|w| w[0] <= w[1]);
        if list_offsets.first() != Some(&0)
            || list_offsets.last() != Some(&num_entries)
            || !monotone
        {
            return Err(PersistError::Corrupt("bad list offsets"));
        }
        let mut entries = Vec::with_capacity(num_entries);
        for _ in 0..num_entries {
            let u = r.get_u32()?;
            let v = r.get_u32()?;
            let score = r.get_u32()?;
            if u >= v || score == 0 {
                return Err(PersistError::Corrupt("invalid entry"));
            }
            entries.push(ScoredEdge {
                edge: Edge { u, v },
                score,
            });
        }
        let computed = r.hash.0;
        let mut trailer = [0u8; 8];
        r.inner
            .read_exact(&mut trailer)
            .map_err(|_| PersistError::Corrupt("missing checksum"))?;
        if u64::from_le_bytes(trailer) != computed {
            return Err(PersistError::ChecksumMismatch);
        }
        // Defence in depth: run the full structural audit (rank order inside
        // each list, nesting and score monotonicity across lists, …). A file
        // passing the field-level checks above can still encode an index no
        // builder would produce; such files are corrupt, never a panic or a
        // silently wrong index.
        let frozen = Self::from_parts(sizes, list_offsets, entries);
        if !frozen.validate().is_empty() {
            return Err(PersistError::Corrupt("index fails structural audit"));
        }
        Ok(frozen)
    }

    /// Saves to a file. See [`Self::write_to`].
    pub fn save(&self, path: impl AsRef<Path>) -> io::Result<()> {
        self.write_to(std::fs::File::create(path)?)
    }

    /// Loads from a file. See [`Self::read_from`].
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PersistError> {
        Self::read_from(std::fs::File::open(path)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::index::EsdIndex;
    use esd_graph::generators;

    fn roundtrip(frozen: &FrozenEsdIndex) -> FrozenEsdIndex {
        let mut buf = Vec::new();
        frozen.write_to(&mut buf).unwrap();
        FrozenEsdIndex::read_from(buf.as_slice()).unwrap()
    }

    #[test]
    fn roundtrip_fig1() {
        let (g, _) = fig1();
        let frozen = FrozenEsdIndex::build(&g);
        assert_eq!(roundtrip(&frozen), frozen);
    }

    #[test]
    fn roundtrip_random_and_empty() {
        let g = generators::clique_overlap(100, 80, 6, 5);
        let frozen = FrozenEsdIndex::build(&g);
        assert_eq!(roundtrip(&frozen), frozen);
        let empty = FrozenEsdIndex::build(&esd_graph::Graph::from_edges(2, &[]));
        assert_eq!(roundtrip(&empty), empty);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        let (g, _) = fig1();
        let mut buf = Vec::new();
        FrozenEsdIndex::build(&g).write_to(&mut buf).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(matches!(
            FrozenEsdIndex::read_from(bad.as_slice()),
            Err(PersistError::BadMagic)
        ));
        let mut bad = buf.clone();
        bad[4] = 99;
        assert!(matches!(
            FrozenEsdIndex::read_from(bad.as_slice()),
            Err(PersistError::BadVersion(_))
        ));
    }

    #[test]
    fn rejects_truncation_and_bitflips() {
        let (g, _) = fig1();
        let mut buf = Vec::new();
        FrozenEsdIndex::build(&g).write_to(&mut buf).unwrap();
        // Truncate at several depths.
        for cut in [10, buf.len() / 2, buf.len() - 1] {
            assert!(
                FrozenEsdIndex::read_from(&buf[..cut]).is_err(),
                "truncation at {cut} must fail"
            );
        }
        // Flip one payload byte: either a structural error or a checksum
        // mismatch, never a silent success.
        let mut bad = buf.clone();
        let mid = buf.len() / 2;
        bad[mid] ^= 0x40;
        assert!(FrozenEsdIndex::read_from(bad.as_slice()).is_err());
    }

    mod fuzz {
        use super::super::*;
        use proptest::prelude::*;

        proptest! {
            /// Arbitrary bytes must never panic the loader — they either
            /// parse (vanishingly unlikely) or return a structured error.
            #[test]
            fn arbitrary_bytes_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
                let _ = FrozenEsdIndex::read_from(bytes.as_slice());
            }

            /// Valid files with one mutated byte must never load as a
            /// *different* index: either they error, or (e.g. a flip in
            /// dead padding — impossible in this format, so practically
            /// always) they error.
            #[test]
            fn single_byte_mutations_detected(pos_seed in any::<u64>(), flip in 1u8..=255) {
                let (g, _) = crate::fixtures::fig1();
                let mut buf = Vec::new();
                crate::index::EsdIndex::build_fast(&g)
                    .freeze()
                    .write_to(&mut buf)
                    .unwrap();
                let pos = (pos_seed as usize) % buf.len();
                buf[pos] ^= flip;
                match FrozenEsdIndex::read_from(buf.as_slice()) {
                    Err(_) => {}
                    Ok(loaded) => {
                        // The checksum covers every payload byte, so a
                        // successful load can only happen if the flip hit
                        // the checksum trailer itself... which would then
                        // mismatch. Reaching here is a real bug.
                        let original = FrozenEsdIndex::build(&g);
                        prop_assert_eq!(loaded, original, "silent corruption at byte {}", pos);
                        prop_assert!(false, "mutated file loaded successfully at byte {}", pos);
                    }
                }
            }
        }
    }

    #[test]
    fn file_roundtrip_and_missing_file() {
        let (g, _) = fig1();
        let frozen = FrozenEsdIndex::build(&g);
        let dir = std::env::temp_dir().join("esd_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("fig1.esdx");
        frozen.save(&path).unwrap();
        let loaded = FrozenEsdIndex::load(&path).unwrap();
        assert_eq!(loaded, frozen);
        assert_eq!(loaded.query(3, 2), EsdIndex::build_fast(&g).query(3, 2));
        std::fs::remove_file(&path).ok();
        assert!(matches!(
            FrozenEsdIndex::load(dir.join("nope.esdx")),
            Err(PersistError::Io(_))
        ));
    }
}
