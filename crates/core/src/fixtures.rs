//! Test fixtures: a faithful reconstruction of the paper's Fig 1(a) graph.
//!
//! The paper never lists Fig 1(a)'s edges, but its worked examples pin the
//! structure down: `score(f,g) = 2` with components `{d,e}` and `{h,i}`
//! (Examples 1–2), the top-3 answers at `τ = 2` and `τ = 5` (Example 3),
//! `C = {1, 2, 4, 5}` with `|H(4)| = 15` and
//! `H(5) = {(u,p), (u,q), (p,q)}` (Example 4), the `(c,d)` insertion
//! merging `(d,e)`'s ego-network into one component (Example 6), and the
//! `(u,k)` deletion creating `H(3)` (Example 7). This 16-vertex, 40-edge
//! graph satisfies every one of those constraints, which the golden tests
//! in this crate (and integration tests) assert.

use esd_graph::{Graph, VertexId};
use std::collections::HashMap;

/// Vertex names of the Fig 1(a) reconstruction in id order.
pub const FIG1_NAMES: [&str; 16] = [
    "a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "u", "v", "p", "q", "w",
];

/// Builds the Fig 1(a) graph. Returns it together with a `name -> id` map.
///
/// Structure: a sparse gadget on `a..i` (with the `(f,g)` edge whose
/// ego-network has components `{d,e}` and `{h,i}`), a 6-clique on
/// `{j,k,u,v,p,q}` bridged to the gadget through `h,i`, and `w` adjacent to
/// `{u,p,q}` which lifts the largest component of `(u,p)`, `(u,q)`, `(p,q)`
/// to size 5.
pub fn fig1() -> (Graph, HashMap<&'static str, VertexId>) {
    let names: HashMap<&'static str, VertexId> = FIG1_NAMES
        .iter()
        .enumerate()
        .map(|(i, &s)| (s, i as VertexId))
        .collect();
    let n = |s: &str| names[s];
    let mut edges: Vec<(VertexId, VertexId)> = Vec::new();
    let mut add = |a: &str, b: &str| edges.push((n(a), n(b)));

    // The a..i gadget.
    add("a", "b");
    add("a", "c");
    add("b", "c");
    add("b", "d");
    add("b", "e");
    add("c", "e");
    add("c", "g");
    add("d", "e");
    add("d", "f");
    add("d", "g");
    add("e", "f");
    add("e", "g");
    add("f", "g");
    add("f", "h");
    add("f", "i");
    add("g", "h");
    add("g", "i");
    add("h", "i");
    // Bridges from the gadget into the clique side.
    add("h", "j");
    add("h", "k");
    add("i", "j");
    add("i", "k");
    // The 6-clique {j, k, u, v, p, q}.
    let clique = ["j", "k", "u", "v", "p", "q"];
    for i in 0..clique.len() {
        for j in i + 1..clique.len() {
            add(clique[i], clique[j]);
        }
    }
    // w hangs off u, p, q.
    add("u", "w");
    add("p", "w");
    add("q", "w");

    (Graph::from_edges(16, &edges), names)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape() {
        let (g, n) = fig1();
        assert_eq!(g.num_vertices(), 16);
        assert_eq!(g.num_edges(), 40);
        // Degree facts the paper relies on: d(e) = d(f), e has smaller id.
        assert_eq!(g.degree(n["e"]), g.degree(n["f"]));
        assert!(n["e"] < n["f"]);
    }

    #[test]
    fn fg_ego_network_matches_example1() {
        let (g, n) = fig1();
        let mut expect = vec![n["d"], n["e"], n["h"], n["i"]];
        expect.sort_unstable();
        assert_eq!(g.common_neighbors(n["f"], n["g"]), expect);
        assert!(g.has_edge(n["d"], n["e"]));
        assert!(g.has_edge(n["h"], n["i"]));
        assert!(!g.has_edge(n["d"], n["h"]));
        assert!(!g.has_edge(n["e"], n["i"]));
    }
}
