//! Exact edge structural diversity computation (Definitions 1–2).

use crate::ScoredEdge;
use esd_graph::{traversal, Graph, VertexId};

/// Sorted multiset of connected-component sizes of the ego-network
/// `G_{N(uv)}` — the `C_uv` of the paper.
///
/// # Examples
///
/// ```
/// use esd_core::score::component_sizes;
/// use esd_core::fixtures::fig1;
///
/// let (g, names) = fig1();
/// let f = names["f"];
/// let gv = names["g"];
/// assert_eq!(component_sizes(&g, f, gv), vec![2, 2]); // {d,e} and {h,i}
/// ```
pub fn component_sizes(g: &Graph, u: VertexId, v: VertexId) -> Vec<u32> {
    let members = g.common_neighbors(u, v);
    traversal::induced_component_sizes(g, &members)
}

/// The structural diversity `score_τ(u, v)`: the number of connected
/// components of `G_{N(uv)}` with at least `τ` vertices (Definition 2).
pub fn edge_score(g: &Graph, u: VertexId, v: VertexId, tau: u32) -> u32 {
    score_from_sizes(&component_sizes(g, u, v), tau)
}

/// Counts entries of a sorted size multiset that are ≥ `tau`.
#[inline]
pub fn score_from_sizes(sorted_sizes: &[u32], tau: u32) -> u32 {
    debug_assert!(sorted_sizes.windows(2).all(|w| w[0] <= w[1]));
    (sorted_sizes.len() - sorted_sizes.partition_point(|&s| s < tau)) as u32
}

/// Structural diversities of *all* edges at threshold `tau`; index = edge id.
/// This is the `O((αd_max)m)` brute-force pass that the online and
/// index-based algorithms avoid.
pub fn all_scores(g: &Graph, tau: u32) -> Vec<u32> {
    g.edges()
        .iter()
        .map(|e| edge_score(g, e.u, e.v, tau))
        .collect()
}

/// Reference top-k by scoring every edge and sorting — the "straightforward
/// algorithm" of the paper's introduction. Returns at most `k` edges with
/// positive score, ranked by `(score desc, edge asc)`.
pub fn naive_topk(g: &Graph, k: usize, tau: u32) -> Vec<ScoredEdge> {
    let mut scored: Vec<ScoredEdge> = g
        .edges()
        .iter()
        .zip(all_scores(g, tau))
        .filter(|&(_, s)| s > 0)
        .map(|(&edge, score)| ScoredEdge { edge, score })
        .collect();
    scored.sort_by(ScoredEdge::ranking_cmp);
    scored.truncate(k);
    scored
}

/// Batch-exact top-k: score *every* edge with one 4-clique enumeration pass
/// (Algorithm 3's component machinery, skipping the `H(c)` lists) and
/// select the best `k` by a bounded heap.
///
/// No pruning, but the per-edge cost is the enumerate-each-4-clique-once
/// rate rather than OnlineBFS's revisiting BFS — so this wins over the
/// dequeue-twice search exactly when the upper bounds prune poorly (small
/// τ, flat score distributions). The `ablation` experiment quantifies the
/// crossover; [`crate::index::EsdIndex`] remains the right tool for
/// repeated queries.
pub fn batch_topk(g: &Graph, k: usize, tau: u32) -> Vec<ScoredEdge> {
    assert!(tau >= 1, "component size threshold must be at least 1");
    let comps = crate::index::EdgeComponents::by_four_cliques(g);
    let mut heap: std::collections::BinaryHeap<std::cmp::Reverse<HeapEntry>> =
        std::collections::BinaryHeap::with_capacity(k + 1);
    for (eid, &edge) in g.edges().iter().enumerate() {
        let score = comps.score_of(eid, tau);
        if score == 0 {
            continue;
        }
        heap.push(std::cmp::Reverse(HeapEntry(ScoredEdge { edge, score })));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<ScoredEdge> = heap.into_iter().map(|r| r.0 .0).collect();
    out.sort_by(ScoredEdge::ranking_cmp);
    out
}

/// Heap adapter ordering [`ScoredEdge`] by ranking (best = greatest).
#[derive(PartialEq, Eq)]
struct HeapEntry(ScoredEdge);

impl Ord for HeapEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // ranking_cmp returns Less when self ranks better; invert so the
        // best entry is the heap maximum.
        other.0.ranking_cmp(&self.0)
    }
}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use esd_graph::generators;

    #[test]
    fn fig1_worked_examples() {
        let (g, n) = fig1();
        // Example 2: score(f,g) = 2 for τ ∈ {1,2}, 0 for τ = 3.
        assert_eq!(edge_score(&g, n["f"], n["g"], 1), 2);
        assert_eq!(edge_score(&g, n["f"], n["g"], 2), 2);
        assert_eq!(edge_score(&g, n["f"], n["g"], 3), 0);
        // Example 3 (τ = 5): only the K6 + w edges have a size-5 component.
        assert_eq!(edge_score(&g, n["u"], n["p"], 5), 1);
        assert_eq!(edge_score(&g, n["u"], n["q"], 5), 1);
        assert_eq!(edge_score(&g, n["p"], n["q"], 5), 1);
        assert_eq!(edge_score(&g, n["j"], n["k"], 5), 0);
    }

    #[test]
    fn fig1_component_size_multisets() {
        let (g, n) = fig1();
        assert_eq!(component_sizes(&g, n["j"], n["k"]), vec![2, 4]);
        assert_eq!(component_sizes(&g, n["d"], n["e"]), vec![1, 2]);
        assert_eq!(component_sizes(&g, n["a"], n["b"]), vec![1]);
        assert_eq!(component_sizes(&g, n["u"], n["p"]), vec![5]);
    }

    #[test]
    fn score_from_sizes_boundaries() {
        assert_eq!(score_from_sizes(&[], 1), 0);
        assert_eq!(score_from_sizes(&[1, 2, 4, 5], 1), 4);
        assert_eq!(score_from_sizes(&[1, 2, 4, 5], 3), 2);
        assert_eq!(score_from_sizes(&[1, 2, 4, 5], 5), 1);
        assert_eq!(score_from_sizes(&[1, 2, 4, 5], 6), 0);
    }

    #[test]
    fn naive_topk_matches_example3() {
        let (g, n) = fig1();
        let top = naive_topk(&g, 3, 2);
        let edges: Vec<_> = top.iter().map(|s| s.edge).collect();
        let expect: Vec<esd_graph::Edge> = [(n["f"], n["g"]), (n["h"], n["i"]), (n["j"], n["k"])]
            .iter()
            .map(|&(a, b)| esd_graph::Edge::new(a, b))
            .collect();
        let mut sorted = edges.clone();
        sorted.sort_unstable();
        let mut expect_sorted = expect.clone();
        expect_sorted.sort_unstable();
        assert_eq!(sorted, expect_sorted);
        assert!(top.iter().all(|s| s.score == 2));
    }

    #[test]
    fn naive_topk_fewer_than_k_positive() {
        let (g, _) = fig1();
        let top = naive_topk(&g, 100, 5);
        assert_eq!(top.len(), 3, "only 3 edges score at τ = 5");
    }

    #[test]
    fn batch_topk_matches_naive() {
        let (g, _) = fig1();
        for tau in 1..=6 {
            for k in [1, 3, 10, 40] {
                assert_eq!(
                    batch_topk(&g, k, tau),
                    naive_topk(&g, k, tau),
                    "k={k} τ={tau}"
                );
            }
        }
        for seed in 0..4 {
            let g = generators::clique_overlap(60, 50, 5, seed);
            assert_eq!(batch_topk(&g, 12, 2), naive_topk(&g, 12, 2), "seed {seed}");
        }
    }

    #[test]
    fn batch_topk_edge_cases() {
        let empty = esd_graph::Graph::from_edges(0, &[]);
        assert!(batch_topk(&empty, 5, 1).is_empty());
        let star = generators::star(8);
        assert!(batch_topk(&star, 5, 1).is_empty(), "no triangles");
        let (g, _) = fig1();
        assert!(batch_topk(&g, 0, 1).is_empty());
    }

    #[test]
    fn tau_of_one_counts_all_components() {
        let g = generators::complete(5);
        // Ego-net of any K5 edge is a K3: one component.
        assert_eq!(edge_score(&g, 0, 1, 1), 1);
        let star = generators::star(6);
        // Star edges share no common neighbours: empty ego-net.
        assert_eq!(edge_score(&star, 0, 3, 1), 0);
    }
}
