//! The dequeue-twice online search framework (Algorithm 1).
//!
//! All edges enter a max-priority queue keyed by an upper bound of their
//! structural diversity. Popping an edge the *first* time triggers the exact
//! BFS score computation and a re-push keyed by the exact score; popping it
//! a *second* time proves (the queue invariant) that no other edge can beat
//! it, so it is emitted as the next answer. Edges whose upper bound is lower
//! than the current k-th score are never scored exactly — that pruning is
//! the entire point of the framework.

pub use crate::bounds::UpperBound;
use crate::{bounds, score, ScoredEdge};
use esd_graph::{Edge, Graph};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Counters describing how much work a dequeue-twice run performed; used by
/// the experiments to show the pruning power of each bound.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineStats {
    /// Edges whose exact score was computed by BFS (first dequeues).
    pub exact_evaluations: usize,
    /// Total priority-queue pops.
    pub pops: usize,
    /// Edges that entered the queue (upper bound > 0).
    pub enqueued: usize,
}

/// Priority-queue entry: ordered by (priority, smaller edge wins ties).
/// `exact` distinguishes the second-phase entries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Entry {
    priority: u32,
    /// `Reverse` so that among equal priorities the smaller edge pops first,
    /// and an exact entry pops before a bound entry of the same edge cannot
    /// occur (each edge is enqueued with one key at a time).
    edge: Reverse<Edge>,
    exact: bool,
}

/// Top-k edge structural diversity by the dequeue-twice framework
/// (Algorithm 1). `which` selects `OnlineBFS` (min-degree bound) or
/// `OnlineBFS+` (common-neighbour bound).
///
/// Returns at most `k` edges with positive score, ranked by
/// `(score desc, edge asc)` — identical to the index-based search.
///
/// # Examples
///
/// ```
/// use esd_core::online::{online_topk, UpperBound};
/// use esd_core::fixtures::fig1;
///
/// let (g, names) = fig1();
/// let top = online_topk(&g, 3, 2, UpperBound::CommonNeighbor);
/// assert_eq!(top.len(), 3);
/// assert!(top.iter().all(|s| s.score == 2));
/// ```
pub fn online_topk(g: &Graph, k: usize, tau: u32, which: UpperBound) -> Vec<ScoredEdge> {
    online_topk_with_stats(g, k, tau, which).0
}

/// [`online_topk`] plus work counters.
pub fn online_topk_with_stats(
    g: &Graph,
    k: usize,
    tau: u32,
    which: UpperBound,
) -> (Vec<ScoredEdge>, OnlineStats) {
    assert!(tau >= 1, "component size threshold must be at least 1");
    let _span = esd_telemetry::span(esd_telemetry::Stage::OnlineTopk);
    let mut stats = OnlineStats::default();
    let mut queue: BinaryHeap<Entry> = BinaryHeap::with_capacity(g.num_edges());
    for e in g.edges() {
        let ub = bounds::bound(g, e.u, e.v, tau, which);
        if ub > 0 {
            queue.push(Entry {
                priority: ub,
                edge: Reverse(*e),
                exact: false,
            });
        }
    }
    stats.enqueued = queue.len();

    let mut results = Vec::with_capacity(k.min(16));
    while results.len() < k {
        let Some(entry) = queue.pop() else { break };
        stats.pops += 1;
        let Reverse(edge) = entry.edge;
        if entry.exact {
            // Second dequeue: the queue invariant certifies this is the next
            // best edge (Theorem 1).
            results.push(ScoredEdge {
                edge,
                score: entry.priority,
            });
            continue;
        }
        // First dequeue: replace the bound by the exact score.
        stats.exact_evaluations += 1;
        let exact = score::edge_score(g, edge.u, edge.v, tau);
        debug_assert!(exact <= entry.priority, "bound must dominate the score");
        if exact > 0 {
            queue.push(Entry {
                priority: exact,
                edge: Reverse(edge),
                exact: true,
            });
        }
    }
    esd_telemetry::add(
        esd_telemetry::Metric::OnlineExactEvals,
        stats.exact_evaluations as u64,
    );
    esd_telemetry::add(esd_telemetry::Metric::OnlineHeapPops, stats.pops as u64);
    esd_telemetry::add(esd_telemetry::Metric::OnlineEnqueued, stats.enqueued as u64);
    (results, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::score::naive_topk;
    use esd_graph::generators;

    #[test]
    fn matches_naive_on_fig1_all_parameters() {
        let (g, _) = fig1();
        for tau in 1..=6 {
            for k in [1, 3, 10, 40, 100] {
                let naive = naive_topk(&g, k, tau);
                for which in [UpperBound::MinDegree, UpperBound::CommonNeighbor] {
                    let online = online_topk(&g, k, tau, which);
                    assert_eq!(online, naive, "k={k} τ={tau} {which:?}");
                }
            }
        }
    }

    #[test]
    fn example3_answers() {
        let (g, n) = fig1();
        let top = online_topk(&g, 3, 5, UpperBound::CommonNeighbor);
        let mut edges: Vec<_> = top.iter().map(|s| s.edge).collect();
        edges.sort_unstable();
        let mut expect = vec![
            esd_graph::Edge::new(n["u"], n["p"]),
            esd_graph::Edge::new(n["u"], n["q"]),
            esd_graph::Edge::new(n["p"], n["q"]),
        ];
        expect.sort_unstable();
        assert_eq!(edges, expect);
    }

    #[test]
    fn tighter_bound_prunes_more() {
        let g = generators::clique_overlap(150, 120, 6, 5);
        let (_, loose) = online_topk_with_stats(&g, 10, 2, UpperBound::MinDegree);
        let (_, tight) = online_topk_with_stats(&g, 10, 2, UpperBound::CommonNeighbor);
        assert!(
            tight.exact_evaluations <= loose.exact_evaluations,
            "CN bound must evaluate no more edges ({} vs {})",
            tight.exact_evaluations,
            loose.exact_evaluations
        );
    }

    #[test]
    fn matches_naive_on_random_graphs() {
        for seed in 0..6 {
            let g = generators::erdos_renyi(60, 0.15, seed);
            for tau in [1, 2, 3] {
                let naive = naive_topk(&g, 15, tau);
                assert_eq!(online_topk(&g, 15, tau, UpperBound::MinDegree), naive);
                assert_eq!(online_topk(&g, 15, tau, UpperBound::CommonNeighbor), naive);
            }
        }
    }

    #[test]
    fn k_zero_and_empty_graph() {
        let (g, _) = fig1();
        assert!(online_topk(&g, 0, 2, UpperBound::CommonNeighbor).is_empty());
        let empty = esd_graph::Graph::from_edges(0, &[]);
        assert!(online_topk(&empty, 5, 1, UpperBound::MinDegree).is_empty());
    }

    #[test]
    fn huge_tau_returns_nothing() {
        let (g, _) = fig1();
        assert!(online_topk(&g, 10, 100, UpperBound::CommonNeighbor).is_empty());
    }

    #[test]
    #[should_panic(expected = "at least 1")]
    fn rejects_tau_zero() {
        let (g, _) = fig1();
        let _ = online_topk(&g, 1, 0, UpperBound::MinDegree);
    }
}
