//! Structural invariant auditing for the ESDIndex family.
//!
//! Every core structure exposes `validate()` returning a list of typed,
//! located violations instead of panicking — an empty list means every
//! invariant holds. Deeper `validate_against*` variants recompute ground
//! truth from the graph and report semantic divergence (wrong scores,
//! missing entries, a broken Theorem 3 bound), which pure structural checks
//! cannot see.
//!
//! | structure | validator | invariants |
//! |---|---|---|
//! | [`ScoreTreap`] | [`ScoreTreap::validate`] | arena bounds, acyclicity, heap order on priorities, strict BST rank order, subtree sizes, free-list/slot accounting, deterministic priorities |
//! | [`EdgeComponents`] | [`EdgeComponents::validate`] | monotone offsets, ascending positive size multisets |
//! | [`EsdIndex`] | [`EsdIndex::validate`], [`EsdIndex::validate_against`] | ascending `C`, per-list treap soundness, list nesting `H(c') ⊆ H(c)`, score monotonicity; vs-graph: exact contents + Theorem 3 |
//! | [`FrozenEsdIndex`] | [`FrozenEsdIndex::validate`], [`FrozenEsdIndex::validate_against`] | same invariants on the flat layout |
//! | [`MaintainedIndex`] | [`MaintainedIndex::validate`], [`MaintainedIndex::validate_deep`] | graph soundness, forest well-formedness and coverage, refcounts, list/forest agreement; deep: forests vs true ego-network partitions |
//!
//! The `strict-invariants` cargo feature (always on in this crate's unit
//! tests) re-runs these validators at construction and maintenance
//! boundaries, panicking via [`assert_clean`] with the full report.

use crate::index::ostree::{priority_of, RankKey, ScoreTreap, NIL};
use crate::index::{EdgeComponents, EsdIndex, FrozenEsdIndex};
use crate::maintain::{ego_edges, EdgeDsu, MaintainedIndex};
use esd_graph::audit::GraphViolation;
use esd_graph::{Edge, Graph, VertexId};
use std::cmp::Ordering;
use std::collections::{BTreeMap, HashMap};

pub use esd_graph::audit::assert_clean;

// ---------------------------------------------------------------------------
// ScoreTreap
// ---------------------------------------------------------------------------

/// One violated invariant of a [`ScoreTreap`], located by arena slot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TreapViolation {
    /// The root index is neither `NIL` nor a valid arena slot.
    RootOutOfBounds {
        /// The stored root index.
        root: u32,
    },
    /// A child pointer leaves the arena.
    ChildOutOfBounds {
        /// Parent slot holding the pointer.
        node: u32,
        /// The out-of-range child index.
        child: u32,
    },
    /// A slot is reachable through two paths (shared subtree or cycle).
    NodeRevisited {
        /// The slot reached twice.
        node: u32,
    },
    /// A child's priority exceeds its parent's (heap property broken).
    HeapOrder {
        /// Parent slot.
        parent: u32,
        /// Child slot with the larger priority.
        child: u32,
    },
    /// In-order traversal is not strictly rank-ascending at this node.
    BstOrder {
        /// The slot whose key does not follow its in-order predecessor.
        node: u32,
    },
    /// A cached subtree size disagrees with the recomputed count.
    SubtreeSizeMismatch {
        /// The slot with the stale size.
        node: u32,
        /// Cached size.
        stored: u32,
        /// Recomputed size.
        actual: u32,
    },
    /// `len` disagrees with the number of reachable nodes.
    LenMismatch {
        /// Cached length.
        stored: usize,
        /// Reachable node count.
        actual: usize,
    },
    /// A free-list entry is outside the arena.
    FreeSlotOutOfBounds {
        /// The out-of-range free-list entry.
        slot: u32,
    },
    /// A slot is simultaneously reachable and on the free list.
    FreeSlotReachable {
        /// The doubly-owned slot.
        slot: u32,
    },
    /// A slot appears twice on the free list.
    FreeSlotDuplicate {
        /// The repeated slot.
        slot: u32,
    },
    /// A slot is neither reachable nor free (leaked).
    SlotLeak {
        /// The orphaned slot.
        slot: u32,
    },
    /// A node's stored priority differs from the deterministic hash of its
    /// key.
    PriorityMismatch {
        /// The slot with the non-canonical priority.
        node: u32,
    },
}

impl std::fmt::Display for TreapViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::RootOutOfBounds { root } => write!(f, "root index {root} out of bounds"),
            Self::ChildOutOfBounds { node, child } => {
                write!(f, "node {node} has out-of-bounds child {child}")
            }
            Self::NodeRevisited { node } => {
                write!(
                    f,
                    "node {node} is reachable twice (cycle or shared subtree)"
                )
            }
            Self::HeapOrder { parent, child } => {
                write!(
                    f,
                    "heap order broken: child {child} outranks parent {parent}"
                )
            }
            Self::BstOrder { node } => write!(f, "in-order rank sequence breaks at node {node}"),
            Self::SubtreeSizeMismatch {
                node,
                stored,
                actual,
            } => {
                write!(
                    f,
                    "node {node} caches subtree size {stored}, recount gives {actual}"
                )
            }
            Self::LenMismatch { stored, actual } => {
                write!(f, "len is {stored} but {actual} nodes are reachable")
            }
            Self::FreeSlotOutOfBounds { slot } => {
                write!(f, "free-list entry {slot} out of bounds")
            }
            Self::FreeSlotReachable { slot } => {
                write!(f, "slot {slot} is both reachable and free")
            }
            Self::FreeSlotDuplicate { slot } => write!(f, "slot {slot} freed twice"),
            Self::SlotLeak { slot } => write!(f, "slot {slot} neither reachable nor free"),
            Self::PriorityMismatch { node } => {
                write!(f, "node {node} priority differs from the hash of its key")
            }
        }
    }
}

impl ScoreTreap {
    /// Audits every structural invariant of the treap arena; returns all
    /// violations found (empty = sound). `O(n)`.
    pub fn validate(&self) -> Vec<TreapViolation> {
        let mut out = Vec::new();
        let n = self.nodes.len();
        // 0 = unseen, 1 = reachable, 2 = free.
        let mut state = vec![0u8; n];

        if self.root != NIL && self.root as usize >= n {
            out.push(TreapViolation::RootOutOfBounds { root: self.root });
            return out;
        }

        // Reachability sweep: child bounds, revisits, heap order.
        let mut reachable = 0usize;
        let mut tree_sound = true;
        if self.root != NIL {
            state[self.root as usize] = 1;
            reachable = 1;
            let mut stack = vec![self.root];
            while let Some(t) = stack.pop() {
                let node = self.nodes[t as usize];
                for child in [node.left, node.right] {
                    if child == NIL {
                        continue;
                    }
                    if child as usize >= n {
                        out.push(TreapViolation::ChildOutOfBounds { node: t, child });
                        tree_sound = false;
                        continue;
                    }
                    if state[child as usize] == 1 {
                        out.push(TreapViolation::NodeRevisited { node: child });
                        tree_sound = false;
                        continue;
                    }
                    if self.nodes[child as usize].prio > node.prio {
                        out.push(TreapViolation::HeapOrder { parent: t, child });
                    }
                    state[child as usize] = 1;
                    reachable += 1;
                    stack.push(child);
                }
            }
        }
        if self.len != reachable {
            out.push(TreapViolation::LenMismatch {
                stored: self.len,
                actual: reachable,
            });
        }

        // Deterministic priorities on every live node.
        for (t, node) in self.nodes.iter().enumerate() {
            if state[t] == 1 && node.prio != priority_of(&node.key) {
                out.push(TreapViolation::PriorityMismatch { node: t as u32 });
            }
        }

        // Order checks need an actual tree; a cyclic or out-of-bounds shape
        // is already reported above.
        if tree_sound && self.root != NIL {
            // In-order walk: keys strictly rank-ascending.
            let mut stack = Vec::new();
            let mut t = self.root;
            let mut prev: Option<RankKey> = None;
            while t != NIL || !stack.is_empty() {
                while t != NIL {
                    stack.push(t);
                    t = self.nodes[t as usize].left;
                }
                let cur = stack.pop().expect("non-empty stack");
                let key = self.nodes[cur as usize].key;
                if let Some(p) = prev {
                    if p.cmp(&key) != Ordering::Less {
                        out.push(TreapViolation::BstOrder { node: cur });
                    }
                }
                prev = Some(key);
                t = self.nodes[cur as usize].right;
            }

            // Post-order recount of every cached subtree size.
            let mut actual = vec![0u32; n];
            let size_of = |t: u32, actual: &[u32]| if t == NIL { 0 } else { actual[t as usize] };
            let mut stack = vec![(self.root, false)];
            while let Some((node, expanded)) = stack.pop() {
                let nd = self.nodes[node as usize];
                if expanded {
                    let count = 1 + size_of(nd.left, &actual) + size_of(nd.right, &actual);
                    actual[node as usize] = count;
                    if nd.size != count {
                        out.push(TreapViolation::SubtreeSizeMismatch {
                            node,
                            stored: nd.size,
                            actual: count,
                        });
                    }
                } else {
                    stack.push((node, true));
                    if nd.left != NIL {
                        stack.push((nd.left, false));
                    }
                    if nd.right != NIL {
                        stack.push((nd.right, false));
                    }
                }
            }
        }

        // Free-list accounting: in-bounds, disjoint from the tree, no
        // duplicates, and together with the tree covering every slot.
        for &slot in &self.free {
            if slot as usize >= n {
                out.push(TreapViolation::FreeSlotOutOfBounds { slot });
                continue;
            }
            match state[slot as usize] {
                1 => out.push(TreapViolation::FreeSlotReachable { slot }),
                2 => out.push(TreapViolation::FreeSlotDuplicate { slot }),
                _ => state[slot as usize] = 2,
            }
        }
        for (slot, &s) in state.iter().enumerate() {
            if s == 0 {
                out.push(TreapViolation::SlotLeak { slot: slot as u32 });
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// EdgeComponents
// ---------------------------------------------------------------------------

/// One violated invariant of an [`EdgeComponents`] table.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum ComponentsViolation {
    /// `offsets` does not start at 0.
    OffsetsStart {
        /// The first offset found.
        actual: usize,
    },
    /// `offsets[edge] > offsets[edge + 1]`.
    OffsetsNotMonotone {
        /// The edge id whose range is reversed.
        edge: usize,
    },
    /// The terminal offset does not equal the size array length.
    OffsetsTerminal {
        /// Expected terminal offset.
        expected: usize,
        /// Terminal offset found.
        actual: usize,
    },
    /// An edge's size multiset is not ascending.
    SizesNotSorted {
        /// The edge id.
        edge: usize,
        /// Position within the edge's slice where order breaks.
        position: usize,
    },
    /// A component size of 0 (components have at least one vertex).
    ZeroSize {
        /// The edge id.
        edge: usize,
        /// Position within the edge's slice.
        position: usize,
    },
}

impl std::fmt::Display for ComponentsViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::OffsetsStart { actual } => write!(f, "offsets must start at 0, found {actual}"),
            Self::OffsetsNotMonotone { edge } => write!(f, "offsets decrease at edge {edge}"),
            Self::OffsetsTerminal { expected, actual } => {
                write!(f, "terminal offset {actual}, size array holds {expected}")
            }
            Self::SizesNotSorted { edge, position } => {
                write!(f, "edge {edge} sizes not ascending at position {position}")
            }
            Self::ZeroSize { edge, position } => {
                write!(
                    f,
                    "edge {edge} has a zero component size at position {position}"
                )
            }
        }
    }
}

impl EdgeComponents {
    /// Audits the flat component-size table; returns all violations found
    /// (empty = sound). `O(total sizes)`.
    pub fn validate(&self) -> Vec<ComponentsViolation> {
        let mut out = Vec::new();
        if self.offsets.first() != Some(&0) && !self.offsets.is_empty() {
            out.push(ComponentsViolation::OffsetsStart {
                actual: self.offsets.first().copied().unwrap_or(usize::MAX),
            });
        }
        for (e, w) in self.offsets.windows(2).enumerate() {
            if w[0] > w[1] {
                out.push(ComponentsViolation::OffsetsNotMonotone { edge: e });
            }
        }
        if !self.offsets.is_empty() && self.offsets.last() != Some(&self.sizes.len()) {
            out.push(ComponentsViolation::OffsetsTerminal {
                expected: self.sizes.len(),
                actual: self.offsets.last().copied().unwrap_or(usize::MAX),
            });
        }
        if !out.is_empty() {
            // Slicing below would panic on corrupt offsets.
            return out;
        }
        for e in 0..self.num_edges() {
            let sizes = self.sizes_of(e);
            for (i, &s) in sizes.iter().enumerate() {
                if s == 0 {
                    out.push(ComponentsViolation::ZeroSize {
                        edge: e,
                        position: i,
                    });
                }
                if i > 0 && sizes[i - 1] > s {
                    out.push(ComponentsViolation::SizesNotSorted {
                        edge: e,
                        position: i,
                    });
                }
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Shared entry-diff machinery
// ---------------------------------------------------------------------------

type EntryMap = HashMap<Edge, u32>;

/// Differences between an expected and an actual `(edge -> score)` map,
/// sorted for deterministic reports.
struct EntryDiff {
    /// `(edge, expected_score)` present only in the expected map.
    missing: Vec<(Edge, u32)>,
    /// `(edge, actual_score)` present only in the actual map.
    unexpected: Vec<(Edge, u32)>,
    /// `(edge, expected_score, actual_score)` present in both, scores differ.
    wrong: Vec<(Edge, u32, u32)>,
}

fn diff_entries(expected: &EntryMap, actual: &EntryMap) -> EntryDiff {
    let mut diff = EntryDiff {
        missing: Vec::new(),
        unexpected: Vec::new(),
        wrong: Vec::new(),
    };
    for (&e, &s) in expected {
        match actual.get(&e) {
            None => diff.missing.push((e, s)),
            Some(&a) if a != s => diff.wrong.push((e, s, a)),
            Some(_) => {}
        }
    }
    for (&e, &s) in actual {
        if !expected.contains_key(&e) {
            diff.unexpected.push((e, s));
        }
    }
    diff.missing.sort_unstable();
    diff.unexpected.sort_unstable();
    diff.wrong.sort_unstable();
    diff
}

/// Checks the nesting chain over `(threshold, entry-map)` pairs ordered by
/// ascending threshold: each list must be a sub-multiset of its predecessor
/// with monotonically non-increasing scores. Violations are reported through
/// the `nested` / `monotone` constructors so each index flavour keeps its own
/// typed violation.
fn nesting_violations<V>(
    lists: &[(u32, EntryMap)],
    mut not_nested: impl FnMut(u32, Edge) -> V,
    mut not_monotone: impl FnMut(u32, Edge, u32, u32) -> V,
    out: &mut Vec<V>,
) {
    for pair in lists.windows(2) {
        let (_, ref lower) = pair[0];
        let (c_hi, ref higher) = pair[1];
        let mut entries: Vec<(&Edge, &u32)> = higher.iter().collect();
        entries.sort_unstable();
        for (&e, &score_hi) in entries {
            match lower.get(&e) {
                None => out.push(not_nested(c_hi, e)),
                Some(&score_lo) if score_lo < score_hi => {
                    out.push(not_monotone(c_hi, e, score_hi, score_lo));
                }
                Some(_) => {}
            }
        }
    }
}

// ---------------------------------------------------------------------------
// EsdIndex
// ---------------------------------------------------------------------------

/// One violated invariant of an [`EsdIndex`], located by list threshold.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IndexViolation {
    /// `C` is not strictly ascending at this position.
    SizesNotAscending {
        /// Index into `C` (compared with its predecessor).
        position: usize,
    },
    /// `C` contains 0 (no component has zero vertices).
    ZeroThreshold {
        /// Index into `C`.
        position: usize,
    },
    /// The list array length differs from `|C|`.
    ListArityMismatch {
        /// `|C|`.
        sizes: usize,
        /// Number of lists stored.
        lists: usize,
    },
    /// A list's backing treap fails its own audit.
    Treap {
        /// The list's threshold `c`.
        threshold: u32,
        /// The underlying treap violation.
        inner: TreapViolation,
    },
    /// A stored entry carries score 0 (never indexed per the paper).
    ZeroScore {
        /// The list's threshold `c`.
        threshold: u32,
        /// The offending edge.
        edge: Edge,
    },
    /// `H(c')` holds an edge absent from the next smaller list `H(c)`.
    NotNested {
        /// The larger threshold `c'`.
        threshold: u32,
        /// The edge violating `H(c') ⊆ H(c)`.
        edge: Edge,
    },
    /// An edge's score increases with the threshold.
    ScoreNotMonotone {
        /// The larger threshold `c'`.
        threshold: u32,
        /// The edge.
        edge: Edge,
        /// Score at `c'`.
        score: u32,
        /// Smaller score found at the next smaller threshold.
        lower_score: u32,
    },
    /// `C` differs from the recomputed distinct-size set.
    DivergedSizes {
        /// Ground-truth `C`.
        expected: Vec<u32>,
        /// Stored `C`.
        actual: Vec<u32>,
    },
    /// A ground-truth entry is absent from its list.
    MissingEntry {
        /// The list's threshold.
        threshold: u32,
        /// The absent edge.
        edge: Edge,
        /// Its ground-truth score.
        score: u32,
    },
    /// A stored entry has no ground-truth counterpart.
    UnexpectedEntry {
        /// The list's threshold.
        threshold: u32,
        /// The spurious edge.
        edge: Edge,
        /// Its stored score.
        score: u32,
    },
    /// An entry's stored score differs from ground truth.
    WrongScore {
        /// The list's threshold.
        threshold: u32,
        /// The edge.
        edge: Edge,
        /// Ground-truth score.
        expected: u32,
        /// Stored score.
        actual: u32,
    },
    /// Total entries exceed the Theorem 3 space bound `Σ min(d_u, d_v)`.
    SpaceBoundExceeded {
        /// Total `(edge, list)` entries stored.
        entries: usize,
        /// The Theorem 3 bound.
        bound: u64,
    },
}

impl std::fmt::Display for IndexViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::SizesNotAscending { position } => {
                write!(f, "C not strictly ascending at position {position}")
            }
            Self::ZeroThreshold { position } => write!(f, "C contains 0 at position {position}"),
            Self::ListArityMismatch { sizes, lists } => {
                write!(f, "|C| = {sizes} but {lists} lists stored")
            }
            Self::Treap { threshold, inner } => write!(f, "H({threshold}): {inner}"),
            Self::ZeroScore { threshold, edge } => {
                write!(f, "H({threshold}): entry {edge} has score 0")
            }
            Self::NotNested { threshold, edge } => {
                write!(f, "H({threshold}): {edge} missing from the next smaller list")
            }
            Self::ScoreNotMonotone { threshold, edge, score, lower_score } => write!(
                f,
                "H({threshold}): {edge} scores {score}, but only {lower_score} at the smaller threshold"
            ),
            Self::DivergedSizes { expected, actual } => {
                write!(f, "C diverged: expected {expected:?}, stored {actual:?}")
            }
            Self::MissingEntry { threshold, edge, score } => {
                write!(f, "H({threshold}): missing {edge} (score {score})")
            }
            Self::UnexpectedEntry { threshold, edge, score } => {
                write!(f, "H({threshold}): spurious {edge} (score {score})")
            }
            Self::WrongScore { threshold, edge, expected, actual } => {
                write!(f, "H({threshold}): {edge} scores {actual}, ground truth {expected}")
            }
            Self::SpaceBoundExceeded { entries, bound } => {
                write!(f, "{entries} entries exceed the Theorem 3 bound {bound}")
            }
        }
    }
}

/// Shared `C`-array checks for both index flavours.
fn sizes_violations<V>(
    sizes: &[u32],
    mut not_ascending: impl FnMut(usize) -> V,
    mut zero: impl FnMut(usize) -> V,
    out: &mut Vec<V>,
) {
    for (i, &c) in sizes.iter().enumerate() {
        if c == 0 {
            out.push(zero(i));
        }
        if i > 0 && sizes[i - 1] >= c {
            out.push(not_ascending(i));
        }
    }
}

impl EsdIndex {
    /// Audits the structural invariants of the index: ascending `C`, sound
    /// treaps, positive scores, list nesting and score monotonicity across
    /// thresholds. Returns all violations found (empty = sound).
    pub fn validate(&self) -> Vec<IndexViolation> {
        let mut out = Vec::new();
        sizes_violations(
            &self.sizes,
            |position| IndexViolation::SizesNotAscending { position },
            |position| IndexViolation::ZeroThreshold { position },
            &mut out,
        );
        if self.sizes.len() != self.lists.len() {
            out.push(IndexViolation::ListArityMismatch {
                sizes: self.sizes.len(),
                lists: self.lists.len(),
            });
            return out;
        }
        let mut maps: Vec<(u32, EntryMap)> = Vec::with_capacity(self.lists.len());
        for (&c, list) in self.sizes.iter().zip(&self.lists) {
            for v in list.validate() {
                out.push(IndexViolation::Treap {
                    threshold: c,
                    inner: v,
                });
            }
            let mut map = EntryMap::with_capacity(list.len());
            for s in list.iter_ranked() {
                if s.score == 0 {
                    out.push(IndexViolation::ZeroScore {
                        threshold: c,
                        edge: s.edge,
                    });
                }
                map.insert(s.edge, s.score);
            }
            maps.push((c, map));
        }
        nesting_violations(
            &maps,
            |threshold, edge| IndexViolation::NotNested { threshold, edge },
            |threshold, edge, score, lower_score| IndexViolation::ScoreNotMonotone {
                threshold,
                edge,
                score,
                lower_score,
            },
            &mut out,
        );
        out
    }

    /// [`EsdIndex::validate`] plus a full semantic audit against ground truth
    /// recomputed from `g` by per-edge BFS: exact `C`, exact list contents
    /// and scores, and the Theorem 3 space bound.
    pub fn validate_against(&self, g: &Graph) -> Vec<IndexViolation> {
        let mut out = self.validate();
        let comps = crate::index::build::components_by_bfs(g);
        let expected_sizes = crate::index::build::distinct_sizes(&comps);
        if expected_sizes != self.sizes {
            out.push(IndexViolation::DivergedSizes {
                expected: expected_sizes,
                actual: self.sizes.clone(),
            });
            return out;
        }
        for (&c, list) in self.sizes.iter().zip(&self.lists) {
            let mut expected = EntryMap::new();
            for (eid, e) in g.edges().iter().enumerate() {
                let score = comps.score_of(eid, c);
                if score > 0 {
                    expected.insert(*e, score);
                }
            }
            let actual: EntryMap = list
                .iter_ranked()
                .into_iter()
                .map(|s| (s.edge, s.score))
                .collect();
            let diff = diff_entries(&expected, &actual);
            for (edge, score) in diff.missing {
                out.push(IndexViolation::MissingEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, score) in diff.unexpected {
                out.push(IndexViolation::UnexpectedEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, expected, actual) in diff.wrong {
                out.push(IndexViolation::WrongScore {
                    threshold: c,
                    edge,
                    expected,
                    actual,
                });
            }
        }
        let bound = esd_graph::metrics::sum_min_degree(g);
        if self.total_entries() as u64 > bound {
            out.push(IndexViolation::SpaceBoundExceeded {
                entries: self.total_entries(),
                bound,
            });
        }
        out
    }
}

impl FrozenEsdIndex {
    /// Audits the flat layout: ascending `C`, monotone list offsets,
    /// canonical positively-scored entries, rank order within each list,
    /// nesting and score monotonicity across lists. Returns all violations
    /// found (empty = sound).
    pub fn validate(&self) -> Vec<IndexViolation> {
        let mut out = Vec::new();
        sizes_violations(
            &self.sizes,
            |position| IndexViolation::SizesNotAscending { position },
            |position| IndexViolation::ZeroThreshold { position },
            &mut out,
        );
        // Offsets: arity, start, monotone, terminal — reported through the
        // arity variant when the shape makes the lists unaddressable.
        let shape_ok = self.list_offsets.len() == self.sizes.len() + 1
            && self.list_offsets.first() == Some(&0)
            && self.list_offsets.windows(2).all(|w| w[0] <= w[1])
            && self.list_offsets.last() == Some(&self.entries.len());
        if !shape_ok {
            out.push(IndexViolation::ListArityMismatch {
                sizes: self.sizes.len(),
                lists: self.list_offsets.len().saturating_sub(1),
            });
            return out;
        }
        let mut maps: Vec<(u32, EntryMap)> = Vec::with_capacity(self.sizes.len());
        for (i, &c) in self.sizes.iter().enumerate() {
            let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
            let mut map = EntryMap::with_capacity(list.len());
            for (j, s) in list.iter().enumerate() {
                if s.edge.u >= s.edge.v {
                    // Located by treap-style slot: reuse ZeroScore shape via a
                    // dedicated variant would be clearer; report as NotNested
                    // is wrong — use WrongScore? Report as UnexpectedEntry.
                    out.push(IndexViolation::UnexpectedEntry {
                        threshold: c,
                        edge: s.edge,
                        score: s.score,
                    });
                    continue;
                }
                if s.score == 0 {
                    out.push(IndexViolation::ZeroScore {
                        threshold: c,
                        edge: s.edge,
                    });
                }
                if j > 0 {
                    let prev = list[j - 1];
                    let ranked =
                        prev.score > s.score || (prev.score == s.score && prev.edge < s.edge);
                    if !ranked {
                        out.push(IndexViolation::Treap {
                            threshold: c,
                            inner: TreapViolation::BstOrder {
                                node: (self.list_offsets[i] + j) as u32,
                            },
                        });
                    }
                }
                map.insert(s.edge, s.score);
            }
            maps.push((c, map));
        }
        nesting_violations(
            &maps,
            |threshold, edge| IndexViolation::NotNested { threshold, edge },
            |threshold, edge, score, lower_score| IndexViolation::ScoreNotMonotone {
                threshold,
                edge,
                score,
                lower_score,
            },
            &mut out,
        );
        out
    }

    /// [`FrozenEsdIndex::validate`] plus a full semantic audit against
    /// ground truth recomputed from `g`: exact `C`, exact list contents and
    /// scores, and the Theorem 3 space bound.
    pub fn validate_against(&self, g: &Graph) -> Vec<IndexViolation> {
        let mut out = self.validate();
        let comps = crate::index::build::components_by_bfs(g);
        let expected_sizes = crate::index::build::distinct_sizes(&comps);
        if expected_sizes != self.sizes {
            out.push(IndexViolation::DivergedSizes {
                expected: expected_sizes,
                actual: self.sizes.clone(),
            });
            return out;
        }
        for (i, &c) in self.sizes.iter().enumerate() {
            let mut expected = EntryMap::new();
            for (eid, e) in g.edges().iter().enumerate() {
                let score = comps.score_of(eid, c);
                if score > 0 {
                    expected.insert(*e, score);
                }
            }
            let list = &self.entries[self.list_offsets[i]..self.list_offsets[i + 1]];
            let actual: EntryMap = list.iter().map(|s| (s.edge, s.score)).collect();
            let diff = diff_entries(&expected, &actual);
            for (edge, score) in diff.missing {
                out.push(IndexViolation::MissingEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, score) in diff.unexpected {
                out.push(IndexViolation::UnexpectedEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, expected, actual) in diff.wrong {
                out.push(IndexViolation::WrongScore {
                    threshold: c,
                    edge,
                    expected,
                    actual,
                });
            }
        }
        let bound = esd_graph::metrics::sum_min_degree(g);
        if self.total_entries() as u64 > bound {
            out.push(IndexViolation::SpaceBoundExceeded {
                entries: self.total_entries(),
                bound,
            });
        }
        out
    }
}

// ---------------------------------------------------------------------------
// MaintainedIndex
// ---------------------------------------------------------------------------

/// One violated invariant of a [`MaintainedIndex`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MaintViolation {
    /// The underlying dynamic graph fails its own audit.
    Graph(GraphViolation),
    /// A forest is keyed by an edge absent from the graph.
    ForestForMissingEdge {
        /// The stray key.
        edge: Edge,
    },
    /// A forest with no members is stored (empty forests must be removed).
    EmptyForest {
        /// The edge owning the empty forest.
        edge: Edge,
    },
    /// An edge with a non-empty common neighbourhood has no forest.
    /// Only owned edges (per [`EdgeOwnership`](crate::maintain::EdgeOwnership))
    /// are required to be covered.
    MissingForest {
        /// The uncovered edge.
        edge: Edge,
    },
    /// A forest exists for an edge this index does not own.
    ForeignForest {
        /// The edge whose forest belongs to another ownership slice.
        edge: Edge,
    },
    /// A forest's member set differs from the edge's common neighbourhood.
    ForestMemberMismatch {
        /// The edge whose forest drifted.
        edge: Edge,
    },
    /// A parent pointer references an untracked vertex.
    ForestParentUntracked {
        /// The edge owning the forest.
        edge: Edge,
        /// The vertex with the stray pointer.
        vertex: VertexId,
        /// The untracked parent.
        parent: VertexId,
    },
    /// A parent chain does not terminate.
    ForestCycle {
        /// The edge owning the forest.
        edge: Edge,
        /// The vertex whose chain never reaches a root.
        vertex: VertexId,
    },
    /// A root's stored component size disagrees with the recomputed count.
    ForestRootSizeMismatch {
        /// The edge owning the forest.
        edge: Edge,
        /// The root vertex.
        root: VertexId,
        /// Stored size.
        stored: u32,
        /// Recomputed member count.
        actual: u32,
    },
    /// A forest's partition differs from the true ego-network connectivity
    /// (found only by [`MaintainedIndex::validate_deep`]).
    ForestPartitionDiverged {
        /// The edge whose forest merged or split the wrong components.
        edge: Edge,
    },
    /// A list's backing treap fails its own audit.
    Treap {
        /// The list's threshold `c`.
        threshold: u32,
        /// The underlying treap violation.
        inner: TreapViolation,
    },
    /// A refcount disagrees with the count recomputed from the forests.
    RefcountMismatch {
        /// The size `c`.
        threshold: u32,
        /// Stored refcount (0 when the key is missing).
        stored: usize,
        /// Recomputed refcount.
        actual: usize,
    },
    /// A list exists for a size with no refcount entry.
    ListWithoutRefcount {
        /// The orphaned list's threshold.
        threshold: u32,
    },
    /// A refcounted size has no list.
    RefcountWithoutList {
        /// The size missing its list.
        threshold: u32,
    },
    /// A forest-implied entry is absent from its list.
    MissingEntry {
        /// The list's threshold.
        threshold: u32,
        /// The absent edge.
        edge: Edge,
        /// Its forest-derived score.
        score: u32,
    },
    /// A stored entry has no forest-implied counterpart.
    UnexpectedEntry {
        /// The list's threshold.
        threshold: u32,
        /// The spurious edge.
        edge: Edge,
        /// Its stored score.
        score: u32,
    },
    /// An entry's stored score differs from the forest-derived score.
    WrongScore {
        /// The list's threshold.
        threshold: u32,
        /// The edge.
        edge: Edge,
        /// Forest-derived score.
        expected: u32,
        /// Stored score.
        actual: u32,
    },
}

impl std::fmt::Display for MaintViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Self::Graph(v) => write!(f, "graph: {v}"),
            Self::ForestForMissingEdge { edge } => {
                write!(f, "forest stored for non-edge {edge}")
            }
            Self::EmptyForest { edge } => write!(f, "empty forest stored for {edge}"),
            Self::MissingForest { edge } => {
                write!(f, "{edge} has common neighbours but no forest")
            }
            Self::ForeignForest { edge } => {
                write!(f, "{edge} has a forest but is owned by another shard")
            }
            Self::ForestMemberMismatch { edge } => {
                write!(f, "forest of {edge} does not cover N(uv)")
            }
            Self::ForestParentUntracked {
                edge,
                vertex,
                parent,
            } => {
                write!(f, "forest of {edge}: {vertex} points at untracked {parent}")
            }
            Self::ForestCycle { edge, vertex } => {
                write!(f, "forest of {edge}: {vertex} sits on a parent cycle")
            }
            Self::ForestRootSizeMismatch {
                edge,
                root,
                stored,
                actual,
            } => write!(
                f,
                "forest of {edge}: root {root} stores size {stored}, chains give {actual}"
            ),
            Self::ForestPartitionDiverged { edge } => {
                write!(
                    f,
                    "forest of {edge} diverges from the true ego-network partition"
                )
            }
            Self::Treap { threshold, inner } => write!(f, "H({threshold}): {inner}"),
            Self::RefcountMismatch {
                threshold,
                stored,
                actual,
            } => {
                write!(
                    f,
                    "refcount[{threshold}] is {stored}, forests give {actual}"
                )
            }
            Self::ListWithoutRefcount { threshold } => {
                write!(f, "list H({threshold}) has no refcount entry")
            }
            Self::RefcountWithoutList { threshold } => {
                write!(f, "refcounted size {threshold} has no list")
            }
            Self::MissingEntry {
                threshold,
                edge,
                score,
            } => {
                write!(f, "H({threshold}): missing {edge} (score {score})")
            }
            Self::UnexpectedEntry {
                threshold,
                edge,
                score,
            } => {
                write!(f, "H({threshold}): spurious {edge} (score {score})")
            }
            Self::WrongScore {
                threshold,
                edge,
                expected,
                actual,
            } => {
                write!(
                    f,
                    "H({threshold}): {edge} scores {actual}, forests give {expected}"
                )
            }
        }
    }
}

/// Read-only root lookup in an [`EdgeDsu`]; `None` when the chain leaves the
/// tracked set or cycles.
fn forest_root(forest: &EdgeDsu, w: VertexId) -> Option<VertexId> {
    let mut cur = w;
    for _ in 0..=forest.nodes.len() {
        let &(p, _) = forest.nodes.get(&cur)?;
        if p == cur {
            return Some(cur);
        }
        cur = p;
    }
    None
}

impl MaintainedIndex {
    /// Audits the internal consistency of the maintained state: graph
    /// soundness, forest well-formedness and coverage, refcounts, and exact
    /// agreement between the lists and the forest-derived scores. Returns
    /// all violations found (empty = sound).
    ///
    /// This does **not** verify that each forest's partition matches the
    /// true ego-network connectivity — that requires recomputation; see
    /// [`MaintainedIndex::validate_deep`].
    pub fn validate(&self) -> Vec<MaintViolation> {
        let mut out: Vec<MaintViolation> = self
            .g
            .validate()
            .into_iter()
            .map(MaintViolation::Graph)
            .collect();
        let n = self.g.num_vertices();

        // Forest well-formedness, collecting each forest's size multiset.
        let mut edge_sizes: Vec<(Edge, Vec<u32>)> = Vec::with_capacity(self.forests.len());
        let mut forest_keys: Vec<u64> = self.forests.keys().copied().collect();
        forest_keys.sort_unstable();
        for key in forest_keys {
            let forest = &self.forests[&key];
            let e = Edge::from_key(key);
            if forest.nodes.is_empty() {
                out.push(MaintViolation::EmptyForest { edge: e });
                continue;
            }
            let in_graph = (e.u as usize) < n && (e.v as usize) < n && self.g.has_edge(e.u, e.v);
            if !in_graph {
                out.push(MaintViolation::ForestForMissingEdge { edge: e });
                continue;
            }
            let members = self.g.common_neighbors(e.u, e.v);
            let mut tracked: Vec<VertexId> = forest.nodes.keys().copied().collect();
            tracked.sort_unstable();
            if tracked != members {
                out.push(MaintViolation::ForestMemberMismatch { edge: e });
            }
            let mut chains_ok = true;
            let mut vertices: Vec<VertexId> = forest.nodes.keys().copied().collect();
            vertices.sort_unstable();
            for &w in &vertices {
                let (p, _) = forest.nodes[&w];
                if !forest.nodes.contains_key(&p) {
                    out.push(MaintViolation::ForestParentUntracked {
                        edge: e,
                        vertex: w,
                        parent: p,
                    });
                    chains_ok = false;
                }
            }
            if chains_ok {
                let mut counts: HashMap<VertexId, u32> = HashMap::new();
                for &w in &vertices {
                    match forest_root(forest, w) {
                        Some(r) => *counts.entry(r).or_insert(0) += 1,
                        None => {
                            out.push(MaintViolation::ForestCycle { edge: e, vertex: w });
                            chains_ok = false;
                        }
                    }
                }
                if chains_ok {
                    for &w in &vertices {
                        let (p, stored) = forest.nodes[&w];
                        if p == w {
                            let actual = counts.get(&w).copied().unwrap_or(0);
                            if stored != actual {
                                out.push(MaintViolation::ForestRootSizeMismatch {
                                    edge: e,
                                    root: w,
                                    stored,
                                    actual,
                                });
                            }
                        }
                    }
                }
            }
            edge_sizes.push((e, forest.component_sizes()));
        }

        // Coverage: every *owned* edge with common neighbours owns a
        // forest, and no forest exists for a non-owned edge.
        for e in self.g.edges() {
            if self.ownership.owns_key(e.key())
                && !self.forests.contains_key(&e.key())
                && !self.g.common_neighbors(e.u, e.v).is_empty()
            {
                out.push(MaintViolation::MissingForest { edge: e });
            }
        }
        let mut foreign: Vec<u64> = self
            .forests
            .keys()
            .copied()
            .filter(|&k| !self.ownership.owns_key(k))
            .collect();
        foreign.sort_unstable();
        for key in foreign {
            out.push(MaintViolation::ForeignForest {
                edge: Edge::from_key(key),
            });
        }

        // Refcounts recomputed from the forests.
        let mut expected_ref: BTreeMap<u32, usize> = BTreeMap::new();
        for (_, sizes) in &edge_sizes {
            let mut distinct = sizes.clone();
            distinct.dedup();
            for s in distinct {
                *expected_ref.entry(s).or_insert(0) += 1;
            }
        }
        for (&c, &actual) in &expected_ref {
            let stored = self.refcounts.get(&c).copied().unwrap_or(0);
            if stored != actual {
                out.push(MaintViolation::RefcountMismatch {
                    threshold: c,
                    stored,
                    actual,
                });
            }
        }
        for (&c, &stored) in &self.refcounts {
            if !expected_ref.contains_key(&c) {
                out.push(MaintViolation::RefcountMismatch {
                    threshold: c,
                    stored,
                    actual: 0,
                });
            }
        }

        // Key agreement between lists and refcounts.
        for &c in self.lists.keys() {
            if !self.refcounts.contains_key(&c) {
                out.push(MaintViolation::ListWithoutRefcount { threshold: c });
            }
        }
        for &c in self.refcounts.keys() {
            if !self.lists.contains_key(&c) {
                out.push(MaintViolation::RefcountWithoutList { threshold: c });
            }
        }

        // List contents vs forest-derived scores, plus treap soundness.
        for (&c, list) in &self.lists {
            for v in list.validate() {
                out.push(MaintViolation::Treap {
                    threshold: c,
                    inner: v,
                });
            }
            let mut expected = EntryMap::new();
            for (e, sizes) in &edge_sizes {
                let score = crate::score::score_from_sizes(sizes, c);
                if score > 0 {
                    expected.insert(*e, score);
                }
            }
            let actual: EntryMap = list
                .iter_ranked()
                .into_iter()
                .map(|s| (s.edge, s.score))
                .collect();
            let diff = diff_entries(&expected, &actual);
            for (edge, score) in diff.missing {
                out.push(MaintViolation::MissingEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, score) in diff.unexpected {
                out.push(MaintViolation::UnexpectedEntry {
                    threshold: c,
                    edge,
                    score,
                });
            }
            for (edge, expected, actual) in diff.wrong {
                out.push(MaintViolation::WrongScore {
                    threshold: c,
                    edge,
                    expected,
                    actual,
                });
            }
        }
        out
    }

    /// [`MaintainedIndex::validate`] plus a ground-truth connectivity check:
    /// every forest's partition is compared against a freshly computed
    /// partition of its ego-network. Together the two passes are equivalent
    /// in strength to a full from-scratch rebuild comparison.
    pub fn validate_deep(&self) -> Vec<MaintViolation> {
        let mut out = self.validate();
        let n = self.g.num_vertices();
        let mut forest_keys: Vec<u64> = self.forests.keys().copied().collect();
        forest_keys.sort_unstable();
        for key in forest_keys {
            let forest = &self.forests[&key];
            let e = Edge::from_key(key);
            let in_graph = (e.u as usize) < n && (e.v as usize) < n && self.g.has_edge(e.u, e.v);
            if !in_graph {
                continue; // already reported by validate()
            }
            let members = self.g.common_neighbors(e.u, e.v);
            let mut tracked: Vec<VertexId> = forest.nodes.keys().copied().collect();
            tracked.sort_unstable();
            if tracked != members {
                continue; // already reported by validate()
            }
            let pos: HashMap<VertexId, usize> =
                members.iter().enumerate().map(|(i, &w)| (w, i)).collect();
            let mut truth = esd_dsu::SlotDsu::new(members.len());
            for (w1, w2) in ego_edges(&self.g, &members) {
                truth.union(pos[&w1], pos[&w2]);
            }
            // The two partitions must induce the same equivalence: roots map
            // 1:1 between the forest and the recomputed truth.
            let mut forest_to_truth: HashMap<VertexId, usize> = HashMap::new();
            let mut truth_to_forest: HashMap<usize, VertexId> = HashMap::new();
            let mut diverged = false;
            for &w in &members {
                let Some(fr) = forest_root(forest, w) else {
                    diverged = false; // cycle already reported by validate()
                    break;
                };
                let tr = truth.find(pos[&w]);
                if *forest_to_truth.entry(fr).or_insert(tr) != tr
                    || *truth_to_forest.entry(tr).or_insert(fr) != fr
                {
                    diverged = true;
                    break;
                }
            }
            if diverged {
                out.push(MaintViolation::ForestPartitionDiverged { edge: e });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fixtures::fig1;
    use crate::index::ostree::Node;
    use esd_graph::generators;

    fn key(score: u32, a: u32, b: u32) -> RankKey {
        RankKey {
            score,
            edge: Edge::new(a, b),
        }
    }

    fn sample_treap() -> ScoreTreap {
        let mut t = ScoreTreap::new();
        for i in 0..30u32 {
            t.insert(key(i % 5 + 1, i, i + 1));
        }
        t.remove(&key(3, 2, 3));
        t
    }

    #[test]
    fn clean_treap_has_no_violations() {
        assert_eq!(ScoreTreap::new().validate(), Vec::new());
        assert_eq!(sample_treap().validate(), Vec::new());
    }

    #[test]
    fn treap_detects_size_corruption() {
        let mut t = sample_treap();
        let root = t.root as usize;
        t.nodes[root].size += 1;
        let v = t.validate();
        assert!(
            v.iter().any(|x| matches!(
                x,
                TreapViolation::SubtreeSizeMismatch { node, .. } if *node as usize == root
            )),
            "got {v:?}"
        );
    }

    #[test]
    fn treap_detects_len_corruption() {
        let mut t = sample_treap();
        t.len += 2;
        let v = t.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, TreapViolation::LenMismatch { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn treap_detects_priority_and_heap_corruption() {
        let mut t = sample_treap();
        // Find a non-root reachable node and inflate its priority past its
        // parent's: both the heap check and the determinism check fire.
        let root = t.root;
        let child = {
            let r = &t.nodes[root as usize];
            if r.left != NIL {
                r.left
            } else {
                r.right
            }
        };
        t.nodes[child as usize].prio = u64::MAX;
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::HeapOrder {
                parent: root,
                child
            }),
            "got {v:?}"
        );
        assert!(
            v.contains(&TreapViolation::PriorityMismatch { node: child }),
            "got {v:?}"
        );
    }

    #[test]
    fn treap_detects_bst_corruption() {
        let mut t = sample_treap();
        let root = t.root as usize;
        t.nodes[root].key = key(u32::MAX, 100, 101); // best possible rank, mid-tree
        let v = t.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, TreapViolation::BstOrder { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn treap_detects_cycle_and_arena_faults() {
        let mut t = sample_treap();
        let root = t.root;
        t.nodes[root as usize].right = root; // self-cycle
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::NodeRevisited { node: root }),
            "got {v:?}"
        );

        let mut t = sample_treap();
        let root = t.root;
        t.nodes[root as usize].left = 9999;
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::ChildOutOfBounds {
                node: root,
                child: 9999
            }),
            "got {v:?}"
        );

        let mut t = sample_treap();
        t.root = 9999;
        assert_eq!(
            t.validate(),
            vec![TreapViolation::RootOutOfBounds { root: 9999 }]
        );
    }

    #[test]
    fn treap_detects_free_list_faults() {
        let mut t = sample_treap();
        t.free.push(t.root);
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::FreeSlotReachable { slot: t.root }),
            "got {v:?}"
        );

        let mut t = sample_treap();
        let freed = t.free[0];
        t.free.push(freed);
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::FreeSlotDuplicate { slot: freed }),
            "got {v:?}"
        );

        let mut t = sample_treap();
        t.free.clear(); // the removed node's slot is now orphaned
        let v = t.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, TreapViolation::SlotLeak { .. })),
            "got {v:?}"
        );

        let mut t = sample_treap();
        t.free.push(40000);
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::FreeSlotOutOfBounds { slot: 40000 }),
            "got {v:?}"
        );

        // Dangling node beyond the free list (leak without a removal).
        let mut t = sample_treap();
        t.nodes.push(Node {
            key: key(1, 200, 201),
            prio: 0,
            left: NIL,
            right: NIL,
            size: 1,
        });
        let v = t.validate();
        assert!(
            v.contains(&TreapViolation::SlotLeak {
                slot: (t.nodes.len() - 1) as u32
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn components_validate() {
        let (g, _) = fig1();
        let comps = EdgeComponents::by_bfs(&g);
        assert_eq!(comps.validate(), Vec::new());

        let mut bad = comps.clone();
        bad.offsets[1] = usize::MAX;
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, ComponentsViolation::OffsetsNotMonotone { .. })),
            "got {v:?}"
        );

        let mut bad = comps.clone();
        bad.sizes[0] = 0;
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, ComponentsViolation::ZeroSize { edge: 0, .. })),
            "got {v:?}"
        );

        // Find an edge with at least two components and swap to break order.
        let mut bad = comps.clone();
        let e = (0..bad.num_edges())
            .find(|&e| {
                let s = bad.sizes_of(e);
                s.len() >= 2 && s[0] != s[s.len() - 1]
            })
            .expect("fig1 has multi-component edges");
        let (lo, hi) = (bad.offsets[e], bad.offsets[e + 1] - 1);
        bad.sizes.swap(lo, hi);
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, ComponentsViolation::SizesNotSorted { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn index_validate_clean_and_against_graph() {
        let (g, _) = fig1();
        let index = EsdIndex::build_fast(&g);
        assert_eq!(index.validate(), Vec::new());
        assert_eq!(index.validate_against(&g), Vec::new());
        let frozen = index.freeze();
        assert_eq!(frozen.validate(), Vec::new());
        assert_eq!(frozen.validate_against(&g), Vec::new());

        for seed in 0..3 {
            let g = generators::clique_overlap(60, 50, 5, seed);
            let index = EsdIndex::build_fast(&g);
            assert_eq!(index.validate_against(&g), Vec::new());
            assert_eq!(index.freeze().validate_against(&g), Vec::new());
        }
    }

    #[test]
    fn index_detects_unsorted_sizes_and_arity() {
        let (g, _) = fig1();
        let mut index = EsdIndex::build_fast(&g);
        index.sizes.swap(0, 1);
        let v = index.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, IndexViolation::SizesNotAscending { .. })),
            "got {v:?}"
        );

        let mut index = EsdIndex::build_fast(&g);
        index.lists.pop();
        let v = index.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, IndexViolation::ListArityMismatch { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn index_detects_broken_nesting() {
        let (g, _) = fig1();
        let mut index = EsdIndex::build_fast(&g);
        // Remove one H(5) edge from every smaller list: H(5) ⊄ H(4).
        let victim = index.lists.last().unwrap().iter_ranked()[0];
        for (i, &c) in index.sizes.clone().iter().enumerate().rev().skip(1) {
            let score = (0..victim.score + 10)
                .find(|&s| {
                    index.lists[i].contains(&RankKey {
                        score: s,
                        edge: victim.edge,
                    })
                })
                .expect("edge present in smaller lists");
            index.lists[i].remove(&RankKey {
                score,
                edge: victim.edge,
            });
            let _ = c;
        }
        let v = index.validate();
        assert!(
            v.iter().any(|x| matches!(
                x,
                IndexViolation::NotNested { edge, .. } if *edge == victim.edge
            )),
            "got {v:?}"
        );
    }

    #[test]
    fn index_validate_against_detects_score_drift() {
        let (g, _) = fig1();
        let mut index = EsdIndex::build_fast(&g);
        // Bump one entry's score in the last list.
        let victim = index.lists.last().unwrap().iter_ranked()[0];
        let last = index.lists.last_mut().unwrap();
        last.remove(&RankKey {
            score: victim.score,
            edge: victim.edge,
        });
        last.insert(RankKey {
            score: victim.score + 1,
            edge: victim.edge,
        });
        // Even the structural pass notices: the bumped score now exceeds the
        // edge's score at the next smaller threshold.
        let v = index.validate();
        assert!(
            v.iter().any(|x| matches!(
                x,
                IndexViolation::ScoreNotMonotone { edge, .. } if *edge == victim.edge
            )),
            "got {v:?}"
        );
        let v = index.validate_against(&g);
        assert!(
            v.iter().any(|x| matches!(
                x,
                IndexViolation::WrongScore { edge, .. } if *edge == victim.edge
            )),
            "got {v:?}"
        );
    }

    #[test]
    fn frozen_detects_corruption() {
        let (g, _) = fig1();
        let frozen = FrozenEsdIndex::build(&g);

        let mut bad = frozen.clone();
        bad.entries.swap(0, 1); // rank order within H(min C) breaks
        let v = bad.validate();
        assert!(
            v.iter().any(|x| matches!(x, IndexViolation::Treap { .. })),
            "got {v:?}"
        );

        let mut bad = frozen.clone();
        bad.entries[0].score = 0;
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, IndexViolation::ZeroScore { .. })),
            "got {v:?}"
        );

        let mut bad = frozen.clone();
        bad.list_offsets[1] = bad.entries.len() + 7;
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, IndexViolation::ListArityMismatch { .. })),
            "got {v:?}"
        );

        let mut bad = frozen.clone();
        let last = *bad.list_offsets.last().unwrap();
        let prev = bad.list_offsets[bad.list_offsets.len() - 2];
        // Drop the last list's entries without shrinking C: contents diverge.
        bad.entries.truncate(prev);
        *bad.list_offsets.last_mut().unwrap() = prev;
        let _ = last;
        let v = bad.validate_against(&g);
        assert!(
            v.iter()
                .any(|x| matches!(x, IndexViolation::MissingEntry { .. })),
            "got {v:?}"
        );
    }

    #[test]
    fn maintained_validate_clean() {
        let (g, _) = fig1();
        let index = MaintainedIndex::new(&g);
        assert_eq!(index.validate(), Vec::new());
        assert_eq!(index.validate_deep(), Vec::new());
    }

    #[test]
    fn maintained_detects_refcount_corruption() {
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let true_count = index.refcounts[&4];
        *index.refcounts.get_mut(&4).unwrap() += 3;
        let v = index.validate();
        assert!(
            v.contains(&MaintViolation::RefcountMismatch {
                threshold: 4,
                stored: true_count + 3,
                actual: true_count
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn maintained_detects_list_key_divergence() {
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let treap = index.lists.remove(&4).unwrap();
        index.lists.insert(3, treap);
        let v = index.validate();
        assert!(
            v.contains(&MaintViolation::ListWithoutRefcount { threshold: 3 }),
            "got {v:?}"
        );
        assert!(
            v.contains(&MaintViolation::RefcountWithoutList { threshold: 4 }),
            "got {v:?}"
        );
    }

    #[test]
    fn maintained_detects_forest_faults() {
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let key = *index.forests.keys().next().unwrap();

        // Stray forest for a non-edge.
        let mut bad = index.clone();
        let forest = bad.forests[&key].clone();
        bad.forests.insert(Edge::new(0, 15).key(), forest);
        let v = bad.validate();
        assert!(
            v.iter()
                .any(|x| matches!(x, MaintViolation::ForestForMissingEdge { .. })
                    || matches!(x, MaintViolation::ForestMemberMismatch { .. })),
            "got {v:?}"
        );

        // Root size corruption.
        let forest = index.forests.get_mut(&key).unwrap();
        let root = {
            let mut vs: Vec<VertexId> = forest.nodes.keys().copied().collect();
            vs.sort_unstable();
            vs.into_iter()
                .find(|&w| forest.nodes[&w].0 == w)
                .expect("a root exists")
        };
        forest.nodes.get_mut(&root).unwrap().1 += 5;
        let v = index.validate();
        assert!(
            v.iter().any(|x| matches!(
                x,
                MaintViolation::ForestRootSizeMismatch { edge, .. } if edge.key() == key
            )),
            "got {v:?}"
        );
    }

    #[test]
    fn maintained_deep_detects_wrong_partition() {
        let (g, n) = fig1();
        let mut index = MaintainedIndex::new(&g);
        // (j, k)'s ego-network has components {h, i} and {u, v, p, q} in
        // Fig 1; merging them keeps every structural check locally sound at
        // the forest level except the partition itself.
        let key = Edge::new(n["j"], n["k"]).key();
        let forest = index.forests.get_mut(&key).unwrap();
        let mut roots: Vec<VertexId> = {
            let mut vs: Vec<VertexId> = forest.nodes.keys().copied().collect();
            vs.sort_unstable();
            vs.into_iter()
                .filter(|&w| forest.nodes[&w].0 == w)
                .collect()
        };
        assert_eq!(roots.len(), 2, "fig1 (j,k) has two components");
        let (a, b) = (roots.remove(0), roots.remove(0));
        let size_a = forest.nodes[&a].1;
        let size_b = forest.nodes[&b].1;
        forest.nodes.get_mut(&b).unwrap().0 = a;
        forest.nodes.get_mut(&a).unwrap().1 = size_a + size_b;
        // The shallow pass sees a self-consistent (but wrong) partition, so
        // it reports only the downstream list/refcount drift; the deep pass
        // pins the root cause.
        let v = index.validate_deep();
        assert!(
            v.contains(&MaintViolation::ForestPartitionDiverged {
                edge: Edge::new(n["j"], n["k"])
            }),
            "got {v:?}"
        );
    }

    #[test]
    fn maintained_detects_list_entry_drift() {
        let (g, _) = fig1();
        let mut index = MaintainedIndex::new(&g);
        let (&c, list) = index.lists.iter_mut().next().unwrap();
        let victim = list.iter_ranked()[0];
        list.remove(&RankKey {
            score: victim.score,
            edge: victim.edge,
        });
        let v = index.validate();
        assert!(
            v.contains(&MaintViolation::MissingEntry {
                threshold: c,
                edge: victim.edge,
                score: victim.score
            }),
            "got {v:?}"
        );
    }
}
