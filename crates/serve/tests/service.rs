//! Concurrency and end-to-end tests of the query service.
//!
//! Runs with `strict-invariants` armed (dev-dependency feature), so every
//! batch the writer applies re-validates the index before the snapshot is
//! published — the isolation tests below double as audit-under-concurrency
//! tests.

use esd_core::maintain::{GraphUpdate, MutationBatch};
use esd_core::{MaintainedIndex, ScoredEdge};
use esd_graph::{generators, Graph};
use esd_serve::{IdMap, QueryRequest, ServeError, Server, Service, ServiceConfig};
use rand::prelude::*;
use rand::rngs::StdRng;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const K: usize = 25;
const TAU: u32 = 2;

fn test_graph() -> Graph {
    generators::clique_overlap(250, 200, 5, 0xE5D)
}

/// A batch of random inserts+removes over the same vertex universe.
fn random_batch(n: u32, len: usize, seed: u64) -> Vec<GraphUpdate> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut batch = Vec::with_capacity(len);
    while batch.len() < len {
        let (a, b) = (rng.gen_range(0..n), rng.gen_range(0..n));
        if a == b {
            continue;
        }
        batch.push(if rng.gen_bool(0.7) {
            GraphUpdate::Insert(a, b)
        } else {
            GraphUpdate::Remove(a, b)
        });
    }
    batch
}

/// Concurrent readers during a writer batch must see only fully-published
/// snapshots: every response matches either the pre-batch or the
/// post-batch ground truth, never a mix.
#[test]
fn readers_see_only_published_snapshots() {
    let g = test_graph();
    let batch = random_batch(250, 1000, 7);

    // Ground truth before and after, computed on private copies.
    let before: Vec<ScoredEdge> = MaintainedIndex::new(&g).query(K, TAU);
    let after: Vec<ScoredEdge> = {
        let mut scratch = MaintainedIndex::new(&g);
        scratch.apply_batch(&batch);
        scratch.query(K, TAU)
    };
    assert_ne!(before, after, "the batch must change the top-k");

    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 4,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let writer_done = Arc::new(AtomicBool::new(false));
    // 4 readers + the writer: the barrier guarantees every reader completes
    // at least one query strictly before the batch starts.
    let barrier = Arc::new(std::sync::Barrier::new(5));

    let readers: Vec<_> = (0..4)
        .map(|_| {
            let handle = handle.clone();
            let done = Arc::clone(&writer_done);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut responses = vec![handle
                    .execute(QueryRequest::new(K, TAU))
                    .expect("query failed")];
                barrier.wait();
                while !done.load(Ordering::Relaxed) {
                    responses.push(
                        handle
                            .execute(QueryRequest::new(K, TAU))
                            .expect("query failed"),
                    );
                    std::thread::sleep(Duration::from_micros(100));
                }
                // One more after the writer finished: must be post-batch.
                responses.push(
                    handle
                        .execute(QueryRequest::new(K, TAU))
                        .expect("query failed"),
                );
                responses
            })
        })
        .collect();

    barrier.wait();
    let outcome = handle
        .submit(MutationBatch::from_raw(batch))
        .expect("batch apply failed");
    assert!(outcome.applied > 0);
    writer_done.store(true, Ordering::Relaxed);

    let mut total = 0usize;
    let mut saw_pre = false;
    let mut saw_post = false;
    for reader in readers {
        let responses = reader.join().unwrap();
        let last_epoch = responses.last().unwrap().epoch;
        assert_eq!(last_epoch, outcome.epoch, "final read is post-publication");
        for resp in responses {
            total += 1;
            if *resp.results == before {
                saw_pre = true;
                assert!(resp.epoch < outcome.epoch, "pre-batch data ⇒ old epoch");
            } else if *resp.results == after {
                saw_post = true;
                assert!(resp.epoch >= outcome.epoch, "post-batch data ⇒ new epoch");
            } else {
                panic!("response matches neither pre- nor post-batch ground truth");
            }
        }
    }
    assert!(saw_pre, "some reads should land before publication");
    assert!(saw_post, "final reads land after publication");
    assert!(total >= 8);
    service.shutdown();
}

/// Publication of a new snapshot invalidates the cache: the same `(k, τ)`
/// stops hitting and returns the updated answer.
#[test]
fn cache_is_invalidated_by_publication() {
    let g = test_graph();
    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();

    let first = handle.execute(QueryRequest::new(K, TAU)).unwrap();
    assert!(!first.cache_hit);
    let second = handle.execute(QueryRequest::new(K, TAU)).unwrap();
    assert!(second.cache_hit, "identical query against same epoch hits");
    assert_eq!(*first.results, *second.results);
    assert!(handle.metrics().cache_hits.get() >= 1);

    let batch = random_batch(250, 400, 11);
    let expected = {
        let mut scratch = MaintainedIndex::new(&g);
        scratch.apply_batch(&batch);
        scratch.query(K, TAU)
    };
    let outcome = handle.submit(MutationBatch::from_raw(batch)).unwrap();
    assert!(outcome.applied > 0);

    let third = handle.execute(QueryRequest::new(K, TAU)).unwrap();
    assert!(!third.cache_hit, "new epoch ⇒ cache miss");
    assert_eq!(third.epoch, outcome.epoch);
    assert_eq!(*third.results, expected, "post-update answer is fresh");
    service.shutdown();
}

/// An already-expired deadline yields `DeadlineExceeded` — promptly, not by
/// hanging — on both the query and the update path.
#[test]
fn expired_deadlines_error_instead_of_hanging() {
    let g = test_graph();
    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let past = Instant::now() - Duration::from_millis(1);

    let started = Instant::now();
    let q = handle.execute(QueryRequest::new(K, TAU).before(past));
    assert!(matches!(q, Err(ServeError::DeadlineExceeded)), "{q:?}");
    let u = handle.submit_before(
        MutationBatch::from_raw(vec![GraphUpdate::Insert(0, 249)]),
        Some(past),
    );
    assert!(matches!(u, Err(ServeError::DeadlineExceeded)), "{u:?}");
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "deadline errors must be prompt"
    );
    assert!(handle.metrics().deadline_exceeded.get() >= 2);

    // The service still works afterwards.
    assert!(handle.execute(QueryRequest::new(K, TAU)).is_ok());
    service.shutdown();
}

fn read_query_response(reader: &mut impl BufRead) -> Vec<String> {
    let mut lines = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "unexpected EOF");
        let done = line.starts_with("# ");
        lines.push(line.trim_end().to_string());
        if done {
            return lines;
        }
    }
}

/// Full TCP round trip: queries, updates, metrics, quit — two concurrent
/// connections sharing one engine and id map.
#[test]
fn tcp_server_round_trip() {
    let g = test_graph();
    let expected = MaintainedIndex::new(&g).query(5, TAU);
    let service = Service::start(&g, &ServiceConfig::default());
    let ids = Arc::new(IdMap::from_original((0..250).collect()));
    let server = Server::start("127.0.0.1:0", service.handle(), Arc::clone(&ids)).unwrap();
    let addr = server.local_addr();

    let mut conn = TcpStream::connect(addr).unwrap();
    let mut reader = BufReader::new(conn.try_clone().unwrap());

    // The server greets with the protocol banner.
    let mut banner = String::new();
    reader.read_line(&mut banner).unwrap();
    assert_eq!(banner, "# esd-protocol/2 shards=1\n");

    writeln!(conn, "? 5 {TAU}").unwrap();
    let lines = read_query_response(&mut reader);
    assert_eq!(lines.len(), expected.len() + 1);
    assert!(lines.last().unwrap().contains("result(s)"));
    let top = &expected[0];
    assert!(
        lines[0].contains(&format!("({}, {})", top.edge.u, top.edge.v)),
        "{lines:?}"
    );

    // A second connection updates; this connection sees the new epoch.
    {
        let mut other = TcpStream::connect(addr).unwrap();
        let mut other_reader = BufReader::new(other.try_clone().unwrap());
        let mut line = String::new();
        other_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("# esd-protocol/2"), "{line}");
        writeln!(other, "+ 0 249").unwrap();
        line.clear();
        other_reader.read_line(&mut line).unwrap();
        assert!(line.starts_with("+ (0, 249): ok"), "{line}");
        writeln!(other, "quit").unwrap();
        line.clear();
        other_reader.read_line(&mut line).unwrap();
        assert_eq!(line.trim(), "bye");
    }

    writeln!(conn, "? 5 {TAU}").unwrap();
    let lines = read_query_response(&mut reader);
    assert!(
        lines.last().unwrap().contains("epoch 1"),
        "update published a new epoch: {lines:?}"
    );

    // Malformed input errors without killing the connection.
    writeln!(conn, "what is this").unwrap();
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.starts_with("error: unrecognised"), "{line}");

    // Metrics block is framed.
    writeln!(conn, "metrics").unwrap();
    let mut saw = Vec::new();
    loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0);
        let done = line.starts_with("-- end metrics --");
        saw.push(line);
        if done {
            break;
        }
    }
    let metrics_text = saw.concat();
    assert!(metrics_text.contains("queries_served"), "{metrics_text}");
    assert!(metrics_text.contains("updates_applied"), "{metrics_text}");
    assert!(metrics_text.contains("query_p99_us"), "{metrics_text}");

    writeln!(conn, "quit").unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim(), "bye");

    server.stop();
    service.shutdown();
}

/// Sequential consistency across many small batches: interleaved queries
/// always equal a from-scratch index over the same prefix of updates.
#[test]
fn interleaved_updates_and_queries_agree_with_rebuild() {
    let g = generators::clique_overlap(80, 60, 5, 3);
    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 2,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let mut mirror = MaintainedIndex::new(&g);
    for round in 0..10 {
        let batch = random_batch(80, 20, 1000 + round);
        mirror.apply_batch(&batch);
        handle.submit(MutationBatch::from_raw(batch)).unwrap();
        let resp = handle.execute(QueryRequest::new(15, 1)).unwrap();
        assert_eq!(*resp.results, mirror.query(15, 1), "round {round}");
    }
    service.shutdown();
}

/// A query racing an epoch bump must never return a result stamped with
/// an epoch older than one its caller had already observed — monotonic
/// reads through the epoch-keyed result cache. The only sanctioned
/// exception is an explicitly `degraded` shed response, which advertises
/// its staleness.
#[test]
fn cache_never_serves_pre_publication_epochs() {
    let g = test_graph();
    let service = Service::start(
        &g,
        &ServiceConfig {
            workers: 2,
            queue_capacity: 256,
            cache_capacity: 512,
            ..ServiceConfig::default()
        },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4u64)
        .map(|r| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xCACE ^ r);
                let mut cache_hits = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = [5usize, 10, K][rng.gen_range(0..3)];
                    let tau = [1u32, TAU][rng.gen_range(0..2)];
                    // Observing the epoch FIRST is the point: any answer
                    // the service now gives must be at least this fresh.
                    let observed = handle.snapshot().epoch();
                    match handle.execute(QueryRequest::new(k, tau)) {
                        Ok(resp) => {
                            assert!(
                                resp.degraded || resp.epoch >= observed,
                                "non-degraded answer stamped epoch {} after \
                                 the reader already observed epoch {observed}",
                                resp.epoch,
                            );
                            if resp.cache_hit && !resp.degraded {
                                cache_hits += 1;
                            }
                        }
                        // Backpressure is fine; staleness is not.
                        Err(ServeError::QueueFull | ServeError::DeadlineExceeded) => {}
                        Err(e) => panic!("reader {r}: unexpected error {e}"),
                    }
                }
                cache_hits
            })
        })
        .collect();

    // The writer bumps the epoch as fast as strict-invariants validation
    // allows, maximising the publish/lookup races above.
    let mut last_epoch = 0;
    for round in 0..40 {
        let outcome = handle
            .submit(MutationBatch::from_raw(random_batch(250, 20, 2000 + round)))
            .unwrap();
        last_epoch = outcome.epoch;
    }
    stop.store(true, Ordering::Relaxed);
    let cache_hits: u64 = readers.into_iter().map(|t| t.join().unwrap()).sum();
    assert!(last_epoch >= 30, "most rounds must publish a new epoch");
    assert!(cache_hits > 0, "the cache path must actually be exercised");
    service.shutdown();
}

/// The sharded generalisation of
/// [`cache_never_serves_pre_publication_epochs`]: under churn racing the
/// scatter-gather read path, a non-degraded merged answer must be
/// componentwise at-least-as-fresh as any epoch **vector** its caller had
/// already observed — per-shard monotonic reads, not just monotonicity of
/// the composite scalar.
#[test]
fn sharded_reads_are_componentwise_monotonic() {
    use esd_serve::{EngineHandle, ShardConfig, ShardedService};

    let g = test_graph();
    let service = ShardedService::start(
        &g,
        &ShardConfig {
            shards: 2,
            per_shard: ServiceConfig {
                workers: 2,
                queue_capacity: 256,
                cache_capacity: 512,
                ..ServiceConfig::default()
            },
        },
    );
    let handle = service.handle();
    let stop = Arc::new(AtomicBool::new(false));

    let readers: Vec<_> = (0..4u64)
        .map(|r| {
            let handle = handle.clone();
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(0x5AD0 ^ r);
                let mut merged = 0u64;
                while !stop.load(Ordering::Relaxed) {
                    let k = [5usize, 10, K][rng.gen_range(0..3)];
                    let tau = [1u32, TAU][rng.gen_range(0..2)];
                    // Observing the vector FIRST is the point: any answer
                    // the fleet now gives must dominate it componentwise.
                    let observed = handle.epochs();
                    match handle.execute(QueryRequest::new(k, tau)) {
                        Ok(resp) => {
                            assert_eq!(resp.epochs.shards(), 2);
                            assert!(
                                resp.degraded || resp.epochs.componentwise_ge(&observed),
                                "non-degraded answer stamped {} after the \
                                 reader already observed {observed}",
                                resp.epochs,
                            );
                            merged += 1;
                        }
                        Err(ServeError::QueueFull | ServeError::DeadlineExceeded) => {}
                        Err(e) => panic!("reader {r}: unexpected error {e}"),
                    }
                }
                merged
            })
        })
        .collect();

    let mut last = None;
    for round in 0..40 {
        let outcome = handle
            .submit(MutationBatch::from_raw(random_batch(250, 20, 3000 + round)))
            .unwrap();
        last = Some(outcome.epochs);
    }
    stop.store(true, Ordering::Relaxed);
    let merged: u64 = readers.into_iter().map(|t| t.join().unwrap()).sum();
    let last = last.unwrap();
    assert_eq!(last.shards(), 2);
    assert!(last.sum() >= 60, "most rounds must publish on both shards");
    assert!(merged > 0, "the scatter-gather path must be exercised");
    assert!(
        handle.epochs().componentwise_ge(&last),
        "the published vector never regresses"
    );
    service.shutdown();
}
