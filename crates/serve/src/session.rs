//! One protocol session: the glue between a line source (stdin or a TCP
//! connection) and an [`EngineHandle`]. `esd stream` and every `esd
//! serve` connection run exactly this code — against one engine or a
//! sharded fleet — so the surfaces cannot drift apart.

use crate::protocol::{self, Request};
use crate::retry::RetryPolicy;
use crate::service::{EngineHandle, QueryRequest, ServiceHandle};
use crate::sync::Arc;
use crate::IdMap;
use esd_core::maintain::MutationBatch;
use esd_core::Family;
use std::cell::Cell;

/// What a handled line produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LineOutcome {
    /// Text to send back to the client (may span multiple lines).
    Respond(String),
    /// The client asked to end the session.
    Quit,
}

/// A protocol session bound to one engine handle and the shared id map.
/// Shard-transparent: the default `H` is the single-engine
/// [`ServiceHandle`]; a [`ShardedHandle`](crate::shard::ShardedHandle)
/// session behaves identically, with epoch vectors in its summaries.
#[derive(Debug, Clone)]
pub struct Session<H: EngineHandle = ServiceHandle> {
    handle: H,
    ids: Arc<IdMap>,
    retry: RetryPolicy,
    /// The query family `?` lines rank by, switched with the `family`
    /// command. Per-session state (each connection owns its `Session`), so
    /// one client switching families never affects another.
    family: Cell<Family>,
}

impl<H: EngineHandle> Session<H> {
    /// Creates a session over `handle` using the shared id mapping `ids`,
    /// with a modest default [`RetryPolicy`]: transient errors (a full
    /// queue, a contained fault) are retried with jittered backoff before
    /// the client ever sees an `error:` line.
    pub fn new(handle: H, ids: Arc<IdMap>) -> Self {
        Self {
            handle,
            ids,
            retry: RetryPolicy::new(0x5E55_u64),
            family: Cell::new(Family::Component),
        }
    }

    /// The family `?` queries currently rank by (sessions start in
    /// [`Family::Component`]).
    pub fn family(&self) -> Family {
        self.family.get()
    }

    /// Replaces the session's retry policy (builder style). Use
    /// [`RetryPolicy::none`] to surface every transient error immediately.
    #[must_use]
    pub fn with_retry_policy(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// The session's id map (shared across sessions of one server).
    pub fn ids(&self) -> &Arc<IdMap> {
        &self.ids
    }

    /// The underlying engine handle.
    pub fn handle(&self) -> &H {
        &self.handle
    }

    /// Handles one request line and produces the response text. Service
    /// errors (deadline exceeded, queue full) become `error:` lines, never
    /// panics or hangs.
    pub fn handle_line(&self, line: &str) -> LineOutcome {
        let request = match protocol::parse_line(line) {
            Ok(Some(r)) => r,
            Ok(None) => return LineOutcome::Respond(String::new()),
            Err(msg) => return LineOutcome::Respond(protocol::format_error(&msg)),
        };
        match request {
            Request::Quit => LineOutcome::Quit,
            Request::Hello => LineOutcome::Respond(protocol::hello_banner(self.handle.shards())),
            Request::Shards => LineOutcome::Respond(protocol::format_shards(
                self.handle.shards(),
                &self.handle.epochs(),
            )),
            Request::Metrics => LineOutcome::Respond(self.handle.metrics_text()),
            Request::Telemetry => {
                let mut json = esd_telemetry::snapshot().to_json().render_compact();
                json.push('\n');
                LineOutcome::Respond(json)
            }
            Request::Family(switch) => {
                if let Some(f) = switch {
                    self.family.set(f);
                }
                LineOutcome::Respond(protocol::format_family(self.family.get()))
            }
            Request::Query { k, tau } => {
                let request = QueryRequest::new(k, tau).with_family(self.family.get());
                match self.handle.execute_with_retry(request, &self.retry) {
                    Ok(resp) => LineOutcome::Respond(protocol::format_query(&resp, &self.ids)),
                    Err(e) => LineOutcome::Respond(protocol::format_error(&e.to_string())),
                }
            }
            Request::Insert(a, b) | Request::Remove(a, b) => {
                let insert = matches!(request, Request::Insert(..));
                let (da, db) = self.ids.dense_pair(a, b);
                let mut batch = MutationBatch::new();
                if insert {
                    batch.insert(da, db);
                } else {
                    batch.remove(da, db);
                }
                match self.handle.submit_with_retry(batch, &self.retry) {
                    Ok(outcome) => {
                        LineOutcome::Respond(protocol::format_update(insert, a, b, &outcome))
                    }
                    Err(e) => LineOutcome::Respond(protocol::format_error(&e.to_string())),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::{Service, ServiceConfig};
    use crate::shard::{ShardConfig, ShardedService};
    use esd_graph::Graph;

    // K4 plus a spare vertex: every edge scores 1 at τ ≤ 2.
    fn test_graph() -> Graph {
        Graph::from_edges(5, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)])
    }

    fn test_ids() -> Arc<IdMap> {
        Arc::new(IdMap::from_original(vec![100, 101, 102, 103, 104]))
    }

    fn session() -> (Service, Session) {
        let service = Service::start(
            &test_graph(),
            &ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            },
        );
        let session = Session::new(service.handle(), test_ids());
        (service, session)
    }

    #[test]
    fn full_session_flow() {
        let (_service, s) = session();
        // Query: 6 edges, all score 1 at τ=2.
        let LineOutcome::Respond(text) = s.handle_line("? 10 2") else {
            panic!("expected response");
        };
        assert!(text.contains("(100, 101)  score 1"), "{text}");
        assert!(text.contains("# 6 result(s)"), "{text}");
        // Remove an edge, then a no-op repeat.
        let LineOutcome::Respond(text) = s.handle_line("- 102 103") else {
            panic!()
        };
        assert!(text.starts_with("- (102, 103): ok"), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("- 102 103") else {
            panic!()
        };
        assert!(text.starts_with("- (102, 103): no-op"), "{text}");
        // Unseen original ids grow the map instead of erroring.
        let LineOutcome::Respond(text) = s.handle_line("+ 999 100") else {
            panic!()
        };
        assert!(text.starts_with("+ (999, 100): ok"), "{text}");
        // Protocol introspection.
        let LineOutcome::Respond(text) = s.handle_line("hello") else {
            panic!()
        };
        assert_eq!(text, "# esd-protocol/2 shards=1\n");
        let LineOutcome::Respond(text) = s.handle_line("shards") else {
            panic!()
        };
        assert!(text.starts_with("# shards=1 epochs="), "{text}");
        // Metrics and errors.
        let LineOutcome::Respond(text) = s.handle_line("metrics") else {
            panic!()
        };
        assert!(text.contains("queries_served"), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("telemetry") else {
            panic!()
        };
        assert!(text.starts_with('{') && text.ends_with("}\n"), "{text}");
        assert!(text.contains("\"esd-telemetry/v1\""), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("bogus line") else {
            panic!()
        };
        assert!(text.contains("unrecognised"), "{text}");
        assert_eq!(s.handle_line("quit"), LineOutcome::Quit);
        assert_eq!(s.handle_line(""), LineOutcome::Respond(String::new()));
    }

    #[test]
    fn family_command_switches_ranking_per_session() {
        let (_service, s) = session();
        // Sessions start in (and report) the component family, and a
        // component query summary carries no family annotation.
        let LineOutcome::Respond(text) = s.handle_line("family") else {
            panic!()
        };
        assert_eq!(text, "# family component\n");
        let LineOutcome::Respond(component) = s.handle_line("? 10 2") else {
            panic!()
        };
        assert!(!component.contains("family"), "{component}");
        // Switch to truss: queries now rank by the truss family and say so.
        let LineOutcome::Respond(text) = s.handle_line("family truss") else {
            panic!()
        };
        assert_eq!(text, "# family truss\n");
        let LineOutcome::Respond(text) = s.handle_line("? 10 2") else {
            panic!()
        };
        assert!(text.contains(", family truss)"), "{text}");
        // K4 ego networks are single edges — no triangles, so no truss
        // core reaches τ=2.
        assert!(text.contains("# 0 result(s)"), "{text}");
        // An unknown family errors and leaves the session family alone.
        let LineOutcome::Respond(text) = s.handle_line("family clique") else {
            panic!()
        };
        assert!(text.contains("unknown family"), "{text}");
        assert_eq!(s.family(), esd_core::Family::Truss);
        // Switching back restores the byte-identical component output.
        let LineOutcome::Respond(text) = s.handle_line("family component") else {
            panic!()
        };
        assert_eq!(text, "# family component\n");
        let LineOutcome::Respond(again) = s.handle_line("? 10 2") else {
            panic!()
        };
        // Result lines are byte-identical; the summary line may differ in
        // latency/cache provenance, but stays family-silent.
        let body = |t: &str| t.lines().filter(|l| !l.starts_with('#')).count();
        assert_eq!(
            again.lines().take(body(&again)).collect::<Vec<_>>(),
            component.lines().take(body(&component)).collect::<Vec<_>>(),
        );
        assert!(!again.contains("family"), "{again}");
    }

    #[test]
    fn self_loop_updates_are_rejected_not_noop() {
        let (_service, s) = session();
        let LineOutcome::Respond(text) = s.handle_line("+ 100 100") else {
            panic!()
        };
        assert!(text.starts_with("+ (100, 100): rejected"), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("- 104 104") else {
            panic!()
        };
        assert!(text.starts_with("- (104, 104): rejected"), "{text}");
    }

    #[test]
    fn sharded_session_speaks_the_same_protocol() {
        let service = ShardedService::start(
            &test_graph(),
            &ShardConfig {
                shards: 2,
                per_shard: ServiceConfig {
                    workers: 0,
                    ..ServiceConfig::default()
                },
            },
        );
        let s = Session::new(service.handle(), test_ids());
        let LineOutcome::Respond(text) = s.handle_line("hello") else {
            panic!()
        };
        assert_eq!(text, "# esd-protocol/2 shards=2\n");
        let LineOutcome::Respond(text) = s.handle_line("? 10 2") else {
            panic!()
        };
        assert!(text.contains("# 6 result(s)"), "{text}");
        assert!(text.contains("epoch [0, 0]"), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("+ 100 104") else {
            panic!()
        };
        assert!(text.starts_with("+ (100, 104): ok"), "{text}");
        assert!(text.contains("epoch [1, 1]"), "{text}");
        let LineOutcome::Respond(text) = s.handle_line("shards") else {
            panic!()
        };
        assert_eq!(text, "# shards=2 epochs=[1, 1]\n");
        let LineOutcome::Respond(text) = s.handle_line("metrics") else {
            panic!()
        };
        assert!(text.contains("-- shard 1 --"), "{text}");
        assert_eq!(s.handle_line("quit"), LineOutcome::Quit);
        service.shutdown();
    }
}
